//! The serving loop run by each analyzer rank under `Coupling::Serving`.
//!
//! One loop multiplexes, with non-blocking (`EAGAIN`-aware) reads
//! throughout:
//!
//! * the instrumentation streams mapped onto this rank, drained into the
//!   shared blackboard engine exactly as under direct coupling;
//! * one duplex serve stream per mapped client, carrying framed
//!   [`Request`]s in and [`Response`]s out, with per-tenant admission
//!   control ([`crate::quota`]) at the request boundary;
//! * with `ServeConfig::fan_out` set, the serve fan-out tree: the rank
//!   whose tree role is *root* frames each published shard delta once and
//!   replicates it down the tree ([`FanoutNode`]), interior ranks forward
//!   blocks verbatim, and *frontier* ranks keep a bounded per-shard ring
//!   of the pre-framed records from which their subscribers are served
//!   without re-encoding.
//!
//! Subscriptions use credit-based flow control: each subscriber starts
//! with `ServeConfig::subscriber_credits` credits, every update costs
//! one, every ack returns one. A stalled consumer therefore costs the
//! server *nothing* — no queue grows on its behalf; the store's ring
//! advances and when the consumer acks again it either continues down
//! the retained delta chain or, having fallen off the ring, receives a
//! typed snapshot **resync** (counted in [`ServeStats::resyncs`]). With a
//! sharded store every subscription runs one such chain *per shard*;
//! openers and resyncs are always full per-shard snapshots served from
//! the shared store, so the tree only ever carries deltas.

use crate::proto::{
    FanoutRecord, NotFoundReason, QueryKind, Request, Response, SERVE_FANOUT_STREAM_ID,
    SERVE_STREAM_ID,
};
use crate::quota::TenantBook;
use crate::store::ShardedStore;
use crate::{ServeConfig, ServeError};
use bytes::{BufMut, BytesMut};
use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::{decode_partials, encode_profile, encode_topology, encode_waitstats};
use opmr_analysis::AnalysisEngine;
use opmr_events::frame::{try_frame, FrameBuf};
use opmr_reduce::{FanoutNode, Tree};
use opmr_vmpi::{DuplexStream, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError};
use std::collections::VecDeque;

// Serving-loop metrics: per-subscriber credit level at each scheduling
// slice, publish-to-deliver lag of every update, and the counters mirrored
// from [`ServeStats`] that the self-monitor streams back into the engine.
mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct ServeMetrics {
        pub queries: Arc<Counter>,
        pub deltas_sent: Arc<Counter>,
        pub snapshots_sent: Arc<Counter>,
        pub resyncs: Arc<Counter>,
        pub quota_rejections: Arc<Counter>,
        pub quota_throttles: Arc<Counter>,
        pub fanout_deliveries: Arc<Counter>,
        pub credits: Arc<Histogram>,
        pub deliver_lag: Arc<Histogram>,
    }

    pub(super) fn m() -> &'static ServeMetrics {
        static M: OnceLock<ServeMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            ServeMetrics {
                queries: r.counter("serve_queries_total"),
                deltas_sent: r.counter("serve_deltas_sent_total"),
                snapshots_sent: r.counter("serve_snapshots_sent_total"),
                resyncs: r.counter("serve_resyncs_total"),
                quota_rejections: r.counter("serve_quota_rejections_total"),
                quota_throttles: r.counter("serve_quota_throttles_total"),
                fanout_deliveries: r.counter("serve_fanout_deliveries_total"),
                credits: r.histogram("serve_subscriber_credits"),
                deliver_lag: r.histogram("serve_publish_to_deliver_lag_ns"),
            }
        })
    }
}

/// Per-rank serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Clients mapped onto this rank.
    pub clients: u64,
    /// Point queries answered (including not-found answers).
    pub queries: u64,
    /// Subscriptions opened.
    pub subscribes: u64,
    /// Full snapshots sent (subscription openers and resyncs).
    pub snapshots_sent: u64,
    /// Incremental deltas sent.
    pub deltas_sent: u64,
    /// Slow-consumer degradations: a subscriber fell off the delta ring
    /// and was resynced with a full snapshot instead of a backlog.
    pub resyncs: u64,
    /// Flow-control acks received.
    pub acks: u64,
    /// Requests that failed to parse.
    pub bad_requests: u64,
    /// Clients whose stream died without a goodbye.
    pub clients_lost: u64,
    /// Requests refused under a tenant quota (typed on the wire).
    pub quota_rejections: u64,
    /// Subscription updates delayed by a tenant's delta-byte budget.
    pub quota_throttles: u64,
    /// Fan-out records this rank published into the tree (root only).
    pub fanout_records: u64,
}

struct Subscription {
    /// Last version this subscriber holds per shard (0 = nothing sent).
    synced_to: Vec<u64>,
    credits: u32,
}

struct ClientConn {
    stream: Option<DuplexStream>,
    fb: FrameBuf,
    /// Tenant name from the client's `Hello` ("" until/unless one arrives).
    tenant: String,
    sub: Option<Subscription>,
    /// Consecutive scheduling slices with no traffic either way; drives
    /// the server-side keepalive (see [`pump_client`]).
    idle: u32,
    done: bool,
}

impl ClientConn {
    /// Closes our direction and drains the client's (it closes right
    /// after its goodbye, so this does not block meaningfully). Releases
    /// the tenant's subscription slot.
    fn finish(&mut self, book: &mut TenantBook, stats: &mut ServeStats, lost: bool) {
        if self.sub.take().is_some() {
            book.state(&self.tenant).release_subscription();
        }
        if let Some(stream) = self.stream.take() {
            if stream.close().is_err() || lost {
                stats.clients_lost += 1;
            }
        }
        self.done = true;
    }
}

/// The frontier's view of the fan-out tree inside [`pump_client`]: the
/// per-shard rings of pre-framed delta records, plus whether the tree is
/// already drained (a missing record then resyncs instead of waiting).
struct TreeView<'a> {
    rings: &'a [VecDeque<FanoutRecord>],
    drained: bool,
}

/// Bounds how many blocks each source is drained per loop iteration, so
/// one chatty stream cannot starve the others.
const DRAIN_BURST: usize = 64;

/// Consecutive idle scheduling slices before the server sends a
/// [`Response::Ping`] keepalive to a connected client. The serve protocol
/// is ping-pong under credit flow control, so when the one outstanding
/// message on an edge is held back by a transport-fault reorder (flushed
/// only by the *next* message on that edge), neither side would ever send
/// again; the keepalive is small enough to pass the fault layer unfaulted
/// and flushes the hold.
const KEEPALIVE_IDLE: u32 = 8192;

/// Runs one analyzer rank's serving loop until every instrumentation
/// stream closed, the final snapshot is published, the fan-out tree (if
/// any) drained and every client said goodbye.
pub fn run_server(
    v: &Vmpi,
    engine: &AnalysisEngine,
    store: &ShardedStore,
    app_peers: &[usize],
    client_peers: &[usize],
    app_stream: StreamConfig,
    cfg: &ServeConfig,
) -> Result<ServeStats, ServeError> {
    let n_shards = store.shards();
    let mut stats = ServeStats {
        clients: client_peers.len() as u64,
        ..ServeStats::default()
    };
    let mut book = TenantBook::new(cfg.quota, cfg.tenant_quotas.clone());
    let mut app_rx = if app_peers.is_empty() {
        None
    } else {
        Some(ReadStream::open_from(v, app_peers.to_vec(), app_stream, 0)?)
    };
    // The fan-out tree spans the whole serving partition; a single-rank
    // partition degenerates to root == frontier with no streams.
    let mut fan = match cfg.fan_out {
        Some(f) => Some(FanoutNode::open(
            v,
            &Tree::new(f, v.my_partition().size),
            cfg.stream,
            SERVE_FANOUT_STREAM_ID,
        )?),
        None => None,
    };
    let mut fan_closed = false;
    let mut fanned: Vec<u64> = vec![0; n_shards];
    let mut rings: Vec<VecDeque<FanoutRecord>> = (0..n_shards).map(|_| VecDeque::new()).collect();
    let mut clients: Vec<ClientConn> = client_peers
        .iter()
        .map(|&world| {
            Ok(ClientConn {
                stream: Some(DuplexStream::open(
                    v,
                    vec![world],
                    cfg.stream,
                    SERVE_STREAM_ID,
                )?),
                fb: FrameBuf::new(),
                tenant: String::new(),
                sub: None,
                idle: 0,
                done: false,
            })
        })
        .collect::<Result<_, VmpiError>>()?;

    let mut writer_done_reported = false;
    loop {
        let mut progressed = false;

        // 1. Instrumentation plane: drain into the engine.
        if let Some(rx) = app_rx.as_mut() {
            for _ in 0..DRAIN_BURST {
                match rx.read(ReadMode::NonBlocking) {
                    Ok(Some(block)) => {
                        engine.post_block(block.data);
                        progressed = true;
                    }
                    Ok(None) => {
                        app_rx = None;
                        progressed = true;
                        break;
                    }
                    Err(VmpiError::Again) => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if app_rx.is_none() && !writer_done_reported {
            writer_done_reported = true;
            if store.mark_writer_done() {
                // Last serving rank: all streams everywhere are closed, so
                // no more posts are coming — drain to quiescence and
                // publish the final version (always a fresh version, so
                // caught-up subscribers still learn the run is over).
                engine.blackboard().drain();
                store.publish_final(engine.snapshot_partials())?;
            }
            progressed = true;
        }

        // 2. Fan-out tree: the root turns fresh shard versions into
        // records, everyone else pumps the parent; frontiers fill their
        // per-shard rings.
        if let Some(f) = fan.as_mut() {
            if f.is_root() {
                progressed |=
                    pump_fanout_root(f, store, &mut fanned, &mut rings, cfg.ring, &mut stats)?;
                if !fan_closed && store.finished() && root_caught_up(store, &fanned) {
                    f.close()?;
                    fan_closed = true;
                    progressed = true;
                }
            } else {
                let mut raw = Vec::new();
                progressed |= f.pump(&mut raw)?;
                for payload in &raw {
                    push_ring(&mut rings, FanoutRecord::decode(payload)?, cfg.ring);
                }
                if f.parent_eof() && !fan_closed {
                    f.close()?;
                    fan_closed = true;
                    progressed = true;
                }
            }
        }

        // 3. Serve plane: requests in, responses + subscription pumps out.
        let tree_mode = fan.is_some();
        for client in clients.iter_mut().filter(|c| !c.done) {
            let view = tree_mode.then_some(TreeView {
                rings: &rings,
                drained: fan_closed,
            });
            match pump_client(client, store, view, &mut book, cfg, &mut stats) {
                Ok(p) => progressed |= p,
                Err(ServeError::Vmpi(VmpiError::PeerLost { .. })) => {
                    client.finish(&mut book, &mut stats, true);
                    progressed = true;
                }
                Err(e) => return Err(e),
            }
        }

        let fan_done = fan.is_none() || fan_closed;
        if app_rx.is_none() && writer_done_reported && fan_done && clients.iter().all(|c| c.done) {
            break;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    Ok(stats)
}

/// Root role of the fan-out tree: walks each shard's ring from the last
/// version fanned to the shard's current one, frames each retained delta
/// **once** and replicates the record down the tree. Versions without a
/// delta (the first, or an encode-overflow degrade) publish no record —
/// frontier subscribers cross them via a store resync. In a single-rank
/// tree the root is also the frontier and feeds its own rings directly.
fn pump_fanout_root(
    fan: &mut FanoutNode,
    store: &ShardedStore,
    fanned: &mut [u64],
    rings: &mut [VecDeque<FanoutRecord>],
    ring_cap: usize,
    stats: &mut ServeStats,
) -> Result<bool, ServeError> {
    let n_shards = store.shards();
    let mut progressed = false;
    for (s, fanned_to) in fanned.iter_mut().enumerate() {
        let shard = store.shard(s);
        let current = shard.current().map_or(0, |e| e.version);
        while *fanned_to < current {
            let next = *fanned_to + 1;
            let Some(entry) = shard.get(next) else {
                // The version aged out of the shard ring before this loop
                // got to it; skip to the ring front — subscribers that
                // needed it resync from the shared store.
                let (front, _) = shard.version_span();
                if front == 0 {
                    break;
                }
                *fanned_to = front - 1;
                continue;
            };
            if let Some(payload) = entry.delta.clone() {
                let rsp = Response::Delta {
                    shard: s as u16,
                    shards: n_shards as u16,
                    version: entry.version,
                    publish_ns: entry.publish_ns,
                    finished: entry.is_final,
                    payload,
                };
                let record = FanoutRecord {
                    shard: s as u16,
                    version: entry.version,
                    publish_ns: entry.publish_ns,
                    is_final: entry.is_final,
                    framed_rsp: try_frame(&rsp.encode())?,
                };
                fan.publish(&try_frame(&record.encode())?)?;
                stats.fanout_records += 1;
                if fan.is_frontier() {
                    push_ring(rings, record, ring_cap);
                }
            }
            *fanned_to = entry.version;
            progressed = true;
        }
    }
    Ok(progressed)
}

/// True once the root has fanned every shard up to its current version.
fn root_caught_up(store: &ShardedStore, fanned: &[u64]) -> bool {
    fanned
        .iter()
        .enumerate()
        .all(|(s, &v)| v >= store.shard(s).current().map_or(0, |e| e.version))
}

/// Appends a record to its shard's bounded frontier ring. A subscriber
/// slower than the ring is resynced from the store, exactly like one that
/// fell off the store's own delta ring.
fn push_ring(rings: &mut [VecDeque<FanoutRecord>], record: FanoutRecord, cap: usize) {
    let Some(ring) = rings.get_mut(record.shard as usize) else {
        return; // Wire data: an out-of-range shard id is dropped, not indexed.
    };
    ring.push_back(record);
    while ring.len() > cap.max(1) {
        ring.pop_front();
    }
}

/// What the subscription pump decided to send for one shard step.
enum ShardUpdate {
    /// A pre-framed fan-out record: written to the subscriber verbatim.
    TreeDelta(FanoutRecord),
    /// A store-retained delta (unicast mode).
    StoreDelta(std::sync::Arc<crate::store::SnapshotEntry>),
    /// A full per-shard snapshot: the opener, or a resync when `bool`.
    Snapshot(std::sync::Arc<crate::store::SnapshotEntry>, bool),
    /// Nothing deliverable yet (record still in flight down the tree).
    Wait,
}

/// Picks the next update for shard `s` of one subscriber, preferring the
/// frontier ring's pre-framed record in tree mode and the store's delta
/// chain in unicast mode, degrading to a snapshot resync when the needed
/// version is out of reach either way.
fn next_shard_update(
    store: &ShardedStore,
    tree: Option<&TreeView<'_>>,
    s: usize,
    synced_to: u64,
) -> ShardUpdate {
    let shard = store.shard(s);
    let Some(cur) = shard.current() else {
        return ShardUpdate::Wait;
    };
    if synced_to >= cur.version {
        return ShardUpdate::Wait;
    }
    if synced_to == 0 {
        return ShardUpdate::Snapshot(cur, false);
    }
    let next = synced_to + 1;
    match tree {
        Some(view) => {
            let ring = &view.rings[s];
            if let Some(record) = ring.iter().find(|r| r.version == next) {
                return ShardUpdate::TreeDelta(record.clone());
            }
            // Not in the ring. If the store still holds the version *with*
            // a delta, the record exists and is in flight down the tree —
            // unless the ring already moved past it (bounded eviction) or
            // the tree drained; then it is never coming and we resync.
            let evicted_from_ring = ring.front().is_some_and(|r| r.version > next);
            match shard.get(next) {
                Some(e) if e.delta.is_some() && !evicted_from_ring && !view.drained => {
                    ShardUpdate::Wait
                }
                _ => ShardUpdate::Snapshot(cur, true),
            }
        }
        None => match shard.get(next).filter(|e| e.delta.is_some()) {
            Some(e) => ShardUpdate::StoreDelta(e),
            // First update, or the chain left the ring: full snapshot (a
            // *resync* because the subscriber had state).
            None => ShardUpdate::Snapshot(cur, true),
        },
    }
}

/// One scheduling slice for one client: read requests, answer them under
/// the tenant's quota, pump the subscription's per-shard chains within
/// its credit budget. Returns whether anything happened.
fn pump_client(
    client: &mut ClientConn,
    store: &ShardedStore,
    tree: Option<TreeView<'_>>,
    book: &mut TenantBook,
    cfg: &ServeConfig,
    stats: &mut ServeStats,
) -> Result<bool, ServeError> {
    let n_shards = store.shards();
    let mut progressed = false;
    let mut bye = false;
    let mut lost = false;
    {
        let Some(stream) = client.stream.as_mut() else {
            return Ok(false);
        };
        let mut eof = false;
        for _ in 0..DRAIN_BURST {
            match stream.read(ReadMode::NonBlocking) {
                Ok(Some(block)) => {
                    client.fb.push(&block.data);
                    progressed = true;
                }
                Ok(None) => {
                    eof = true;
                    break;
                }
                Err(VmpiError::Again) => break,
                Err(e) => return Err(e.into()),
            }
        }

        let mut wrote = false;
        loop {
            let payload = match client.fb.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => {
                    // Corrupt framing: nothing later in this client's byte
                    // stream can be trusted, so drop the connection.
                    stats.bad_requests += 1;
                    lost = true;
                    bye = true;
                    break;
                }
            };
            progressed = true;
            match Request::decode(&payload) {
                Ok(Request::Bye) => {
                    bye = true;
                    break;
                }
                Ok(Request::Hello { tenant }) => {
                    client.tenant = tenant;
                }
                Ok(Request::Subscribe) => {
                    if client.sub.take().is_some() {
                        // Re-subscribe replaces the old chain (and slot).
                        book.state(&client.tenant).release_subscription();
                    }
                    match book.state(&client.tenant).try_subscribe() {
                        Ok(()) => {
                            stats.subscribes += 1;
                            client.sub = Some(Subscription {
                                synced_to: vec![0; n_shards],
                                credits: cfg.subscriber_credits.max(1),
                            });
                        }
                        Err(kind) => {
                            // Subscriptions have no request id: req_id 0.
                            stats.quota_rejections += 1;
                            obs::m().quota_rejections.inc();
                            send(stream, &Response::QuotaExceeded { req_id: 0, kind })?;
                            wrote = true;
                        }
                    }
                }
                Ok(Request::Ack { .. }) => {
                    stats.acks += 1;
                    if let Some(sub) = client.sub.as_mut() {
                        sub.credits = (sub.credits + 1).min(cfg.subscriber_credits.max(1));
                    }
                }
                Ok(Request::Ping) => {
                    // Client keepalive: its delivery already flushed any
                    // reorder-held envelope on the client→server edge.
                    // Answer with a pong so the server→client edge gets
                    // flushed too — that is where a held subscription
                    // update sits when the client starves under one
                    // credit.
                    send(stream, &Response::Ping)?;
                    wrote = true;
                }
                Ok(Request::VersionInfo { req_id }) => {
                    if let Err(kind) = book.state(&client.tenant).try_query(crate::mono_ns()) {
                        stats.quota_rejections += 1;
                        obs::m().quota_rejections.inc();
                        send(stream, &Response::QuotaExceeded { req_id, kind })?;
                        wrote = true;
                        continue;
                    }
                    stats.queries += 1;
                    obs::m().queries.inc();
                    send(stream, &version_info(store, req_id))?;
                    wrote = true;
                }
                Ok(Request::Query {
                    req_id,
                    kind,
                    app_id,
                    version,
                    rank_lo,
                    rank_hi,
                }) => {
                    if let Err(kind) = book.state(&client.tenant).try_query(crate::mono_ns()) {
                        stats.quota_rejections += 1;
                        obs::m().quota_rejections.inc();
                        send(stream, &Response::QuotaExceeded { req_id, kind })?;
                        wrote = true;
                        continue;
                    }
                    stats.queries += 1;
                    obs::m().queries.inc();
                    send(
                        stream,
                        &answer_query(store, req_id, kind, app_id, version, rank_lo, rank_hi),
                    )?;
                    wrote = true;
                }
                Err(_) => {
                    stats.bad_requests += 1;
                    send(
                        stream,
                        &Response::NotFound {
                            req_id: 0,
                            reason: NotFoundReason::BadRequest,
                        },
                    )?;
                    wrote = true;
                }
            }
        }
        // Only an EOF *without* a parsed goodbye means the client vanished
        // (the goodbye frame and the close often land in the same burst).
        if eof && !bye {
            lost = true;
            bye = true;
        }

        // Subscription pump, gated on credits (slow-consumer policy) and
        // the tenant's delta-byte budget (throttle, never a rejection).
        if let Some(sub) = client.sub.as_mut() {
            obs::m().credits.record(sub.credits as u64);
            'shards: for s in 0..n_shards {
                while sub.credits > 0 && !bye {
                    let update = next_shard_update(store, tree.as_ref(), s, sub.synced_to[s]);
                    let cost = match &update {
                        ShardUpdate::TreeDelta(r) => r.framed_rsp.len(),
                        ShardUpdate::StoreDelta(e) => e.delta.as_ref().map_or(0, |d| d.len()),
                        ShardUpdate::Snapshot(e, _) => e.encoded.len(),
                        ShardUpdate::Wait => break,
                    };
                    if book
                        .state(&client.tenant)
                        .try_delta_bytes(cost as u64, crate::mono_ns())
                        .is_err()
                    {
                        stats.quota_throttles += 1;
                        obs::m().quota_throttles.inc();
                        break 'shards;
                    }
                    let now = crate::mono_ns();
                    match update {
                        ShardUpdate::TreeDelta(record) => {
                            stats.deltas_sent += 1;
                            obs::m().deltas_sent.inc();
                            obs::m().fanout_deliveries.inc();
                            obs::m()
                                .deliver_lag
                                .record(now.saturating_sub(record.publish_ns));
                            sub.synced_to[s] = record.version;
                            // Framed once at the tree root: write verbatim.
                            stream.write(&record.framed_rsp)?;
                        }
                        ShardUpdate::StoreDelta(entry) => {
                            stats.deltas_sent += 1;
                            obs::m().deltas_sent.inc();
                            obs::m()
                                .deliver_lag
                                .record(now.saturating_sub(entry.publish_ns));
                            sub.synced_to[s] = entry.version;
                            let payload = entry.delta.clone().unwrap_or_default();
                            send(
                                stream,
                                &Response::Delta {
                                    shard: s as u16,
                                    shards: n_shards as u16,
                                    version: entry.version,
                                    publish_ns: entry.publish_ns,
                                    finished: entry.is_final,
                                    payload,
                                },
                            )?;
                        }
                        ShardUpdate::Snapshot(entry, resync) => {
                            stats.snapshots_sent += 1;
                            obs::m().snapshots_sent.inc();
                            if resync {
                                stats.resyncs += 1;
                                obs::m().resyncs.inc();
                            }
                            obs::m()
                                .deliver_lag
                                .record(now.saturating_sub(entry.publish_ns));
                            sub.synced_to[s] = entry.version;
                            send(
                                stream,
                                &Response::Snapshot {
                                    shard: s as u16,
                                    shards: n_shards as u16,
                                    version: entry.version,
                                    publish_ns: entry.publish_ns,
                                    resync,
                                    finished: entry.is_final,
                                    payload: entry.encoded.clone(),
                                },
                            )?;
                        }
                        ShardUpdate::Wait => break,
                    }
                    sub.credits -= 1;
                    wrote = true;
                    progressed = true;
                }
            }
        }

        if progressed || wrote {
            client.idle = 0;
        } else {
            client.idle += 1;
            if client.idle >= KEEPALIVE_IDLE && !bye {
                client.idle = 0;
                send(stream, &Response::Ping)?;
                wrote = true;
            }
        }
        if wrote {
            stream.flush()?;
        }
    }
    if bye {
        client.finish(book, stats, lost);
        progressed = true;
    }
    Ok(progressed)
}

fn send(stream: &mut DuplexStream, rsp: &Response) -> Result<(), ServeError> {
    stream.write(&try_frame(&rsp.encode())?)?;
    Ok(())
}

/// Aggregates the store's per-shard version vector into one answer:
/// `current` is the max over shards, `oldest` the min over non-empty
/// shards, `apps` the total, `finished` only when every shard finished.
fn version_info(store: &ShardedStore, req_id: u32) -> Response {
    let mut current = 0u64;
    let mut oldest = 0u64;
    let mut apps = 0u16;
    for s in 0..store.shards() {
        let shard = store.shard(s);
        let (o, c) = shard.version_span();
        current = current.max(c);
        if o > 0 {
            oldest = if oldest == 0 { o } else { oldest.min(o) };
        }
        apps = apps.saturating_add(shard.current().map_or(0, |e| e.apps));
    }
    Response::VersionInfo {
        req_id,
        current,
        oldest,
        apps,
        finished: store.finished(),
    }
}

fn answer_query(
    store: &ShardedStore,
    req_id: u32,
    kind: QueryKind,
    app_id: u16,
    version: u64,
    rank_lo: u32,
    rank_hi: u32,
) -> Response {
    // Versions are per shard; the app id names the shard to look in.
    let shard = store.shard(store.shard_of_app(app_id));
    let not_found = |reason| Response::NotFound { req_id, reason };
    let entry = if version == 0 {
        match shard.current() {
            Some(e) => e,
            None => return not_found(NotFoundReason::NoSnapshot),
        }
    } else {
        match shard.get(version) {
            Some(e) => e,
            None => return not_found(NotFoundReason::VersionGone),
        }
    };
    let parts = match decode_partials(&entry.encoded) {
        Ok(p) => p,
        Err(_) => return not_found(NotFoundReason::BadRequest),
    };
    let Some(app) = parts.into_iter().find(|a| a.app_id == app_id) else {
        return not_found(NotFoundReason::UnknownApp);
    };
    let in_range = |rank: u32| rank >= rank_lo && rank < rank_hi;
    let mut payload = BytesMut::new();
    match kind {
        QueryKind::Profile => {
            encode_profile(&filter_profile(&app.profile, in_range), &mut payload);
        }
        QueryKind::Topology => {
            encode_topology(&filter_topology(&app.topology, in_range), &mut payload);
        }
        QueryKind::Waitstate => match app.waitstate.as_ref() {
            Some(w) => {
                payload.put_u8(1);
                encode_waitstats(&filter_waitstats(w, in_range), &mut payload);
            }
            None => payload.put_u8(0),
        },
        QueryKind::Metrics => match app.metrics.as_ref() {
            Some(m) => {
                payload.put_u8(1);
                m.filter_ranks(in_range).encode_into(&mut payload);
            }
            None => payload.put_u8(0),
        },
        QueryKind::Density => {
            let lo = rank_lo.min(app.profile.ranks());
            let hi = rank_hi.min(app.profile.ranks());
            payload.put_u32_le(lo);
            payload.put_u32_le(hi.saturating_sub(lo));
            for rank in lo..hi {
                let events: u64 = app
                    .profile
                    .kinds()
                    .iter()
                    .filter_map(|&k| app.profile.rank_kind(rank, k))
                    .map(|s| s.hits)
                    .sum();
                payload.put_u64_le(events);
            }
        }
    }
    Response::QueryResult {
        req_id,
        kind,
        version: entry.version,
        payload: payload.freeze(),
    }
}

fn filter_profile(p: &MpiProfile, in_range: impl Fn(u32) -> bool) -> MpiProfile {
    let mut out = MpiProfile::new();
    for kind in p.kinds() {
        for rank in (0..p.ranks()).filter(|&r| in_range(r)) {
            if let Some(s) = p.rank_kind(rank, kind) {
                out.absorb_stats(rank, kind, s.hits, s.time_ns, s.bytes, s.min_ns, s.max_ns);
            }
        }
    }
    out.absorb_span(p.span_ns());
    out
}

/// Keeps edges whose *source* rank is in range (the "what does this rank
/// slice send" view).
fn filter_topology(t: &Topology, in_range: impl Fn(u32) -> bool) -> Topology {
    let mut out = Topology::new();
    for ((s, d), w) in t.sorted_edges() {
        if in_range(s) {
            out.add_weighted(s, d, w.hits, w.bytes, w.time_ns);
        }
    }
    out
}

/// Keeps per-rank attributions whose rank is in range and dangling halves
/// touching the range; the scalar totals stay global.
fn filter_waitstats(w: &WaitStats, in_range: impl Fn(u32) -> bool) -> WaitStats {
    let keep = |m: &std::collections::HashMap<u32, u64>| {
        m.iter()
            .filter(|(&r, _)| in_range(r))
            .map(|(&r, &v)| (r, v))
            .collect()
    };
    WaitStats {
        matched: w.matched,
        unmatched: w.unmatched,
        total_late_sender_ns: w.total_late_sender_ns,
        total_late_receiver_ns: w.total_late_receiver_ns,
        late_sender_by_victim: keep(&w.late_sender_by_victim),
        late_sender_by_culprit: keep(&w.late_sender_by_culprit),
        late_receiver_by_victim: keep(&w.late_receiver_by_victim),
        pending_sends: w
            .pending_sends
            .iter()
            .filter(|&&(s, d, _)| in_range(s) || in_range(d))
            .copied()
            .collect(),
        pending_recvs: w
            .pending_recvs
            .iter()
            .filter(|&&(s, d, _)| in_range(s) || in_range(d))
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use opmr_analysis::wire::AppPartial;
    use opmr_events::EventKind;

    fn partials_with(app_id: u16, hits_per_rank: &[u64]) -> AppPartial {
        let mut profile = MpiProfile::new();
        let mut topology = Topology::new();
        for (rank, &hits) in hits_per_rank.iter().enumerate() {
            profile.absorb_stats(
                rank as u32,
                EventKind::Send,
                hits,
                hits * 5,
                hits * 64,
                5,
                5,
            );
            topology.add_weighted(
                rank as u32,
                ((rank + 1) % hits_per_rank.len()) as u32,
                hits,
                0,
                0,
            );
        }
        AppPartial {
            app_id,
            packs: 1,
            wire_bytes: 10,
            decode_errors: 0,
            profile,
            topology,
            waitstate: None,
            metrics: Some({
                let mut m = opmr_metrics::MetricsSeries::new(1000);
                for rank in 0..hits_per_rank.len() as u32 {
                    m.add(&opmr_events::Event::basic(
                        EventKind::Send,
                        rank,
                        rank as u64 * 100,
                        50,
                    ));
                }
                m
            }),
        }
    }

    fn store_with(hits_per_rank: &[u64]) -> ShardedStore {
        let store = ShardedStore::new(1, 4, 1);
        store
            .publish(vec![partials_with(2, hits_per_rank)])
            .unwrap();
        store
    }

    #[test]
    fn queries_filter_by_rank_range() {
        let store = store_with(&[10, 20, 30, 40]);
        let rsp = answer_query(&store, 1, QueryKind::Density, 2, 0, 1, 3);
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let mut view: &[u8] = &payload;
        use bytes::Buf;
        assert_eq!(view.get_u32_le(), 1);
        assert_eq!(view.get_u32_le(), 2);
        assert_eq!(view.get_u64_le(), 20);
        assert_eq!(view.get_u64_le(), 30);

        let rsp = answer_query(
            &store,
            2,
            QueryKind::Profile,
            2,
            0,
            2,
            crate::proto::ALL_RANKS,
        );
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let p = opmr_analysis::wire::decode_profile(&mut &payload[..]).unwrap();
        assert_eq!(p.events(), 70);
    }

    #[test]
    fn metrics_query_filters_by_rank_range() {
        let store = store_with(&[10, 20, 30, 40]);
        let rsp = answer_query(&store, 3, QueryKind::Metrics, 2, 0, 1, 3);
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let mut view: &[u8] = &payload;
        use bytes::Buf;
        assert_eq!(view.get_u8(), 1, "series present");
        let m = opmr_metrics::MetricsSeries::decode(&mut view).unwrap();
        assert_eq!(m.window_ns(), 1000);
        let ranks: Vec<u32> = m.cells().map(|(_, r, _)| r).collect();
        assert_eq!(ranks, vec![1, 2], "only ranks in [1, 3) survive");
    }

    #[test]
    fn missing_things_are_typed() {
        let empty = ShardedStore::new(1, 2, 1);
        assert_eq!(
            answer_query(&empty, 1, QueryKind::Profile, 0, 0, 0, u32::MAX),
            Response::NotFound {
                req_id: 1,
                reason: NotFoundReason::NoSnapshot
            }
        );
        let store = store_with(&[1, 2]);
        assert_eq!(
            answer_query(&store, 2, QueryKind::Profile, 0, 0, 0, u32::MAX),
            Response::NotFound {
                req_id: 2,
                reason: NotFoundReason::UnknownApp
            }
        );
        assert_eq!(
            answer_query(&store, 3, QueryKind::Profile, 2, 99, 0, u32::MAX),
            Response::NotFound {
                req_id: 3,
                reason: NotFoundReason::VersionGone
            }
        );
    }

    #[test]
    fn queries_route_to_the_apps_shard() {
        // Apps 0 and 1 land in different shards with independent version
        // sequences; a query for app 1 must read shard 1's ring.
        let store = ShardedStore::new(2, 4, 1);
        store
            .publish(vec![
                partials_with(0, &[1, 1]),
                partials_with(1, &[10, 20, 30]),
            ])
            .unwrap();
        let rsp = answer_query(&store, 7, QueryKind::Density, 1, 0, 0, ALL_RANKS_TEST);
        let Response::QueryResult {
            version, payload, ..
        } = rsp
        else {
            panic!("expected result");
        };
        assert_eq!(version, 1);
        let mut view: &[u8] = &payload;
        use bytes::Buf;
        assert_eq!(view.get_u32_le(), 0);
        assert_eq!(view.get_u32_le(), 3);
        // An app the shard never held is typed as unknown, not a shard
        // routing error.
        assert_eq!(
            answer_query(&store, 8, QueryKind::Profile, 3, 0, 0, ALL_RANKS_TEST),
            Response::NotFound {
                req_id: 8,
                reason: NotFoundReason::UnknownApp
            }
        );
    }

    const ALL_RANKS_TEST: u32 = crate::proto::ALL_RANKS;

    #[test]
    fn version_info_aggregates_the_shard_vector() {
        let store = ShardedStore::new(2, 4, 1);
        store
            .publish(vec![partials_with(0, &[1]), partials_with(1, &[2])])
            .unwrap();
        // Advance only shard 1 (app 1 changes, app 0 is byte-identical).
        store
            .publish(vec![partials_with(0, &[1]), partials_with(1, &[3])])
            .unwrap();
        let Response::VersionInfo {
            current,
            oldest,
            apps,
            finished,
            ..
        } = version_info(&store, 9)
        else {
            panic!("expected version info");
        };
        assert_eq!(current, 2, "max over shards");
        assert_eq!(oldest, 1, "min over non-empty shards");
        assert_eq!(apps, 2, "total across shards");
        assert!(!finished);
    }

    #[test]
    fn frontier_ring_is_bounded_and_gaps_resync() {
        let store = ShardedStore::new(1, 8, 1);
        for i in 1..=6u64 {
            store.publish(vec![partials_with(0, &[i])]).unwrap();
        }
        let mut rings: Vec<VecDeque<FanoutRecord>> = vec![VecDeque::new()];
        for v in 2..=6u64 {
            let e = store.get(v).unwrap();
            push_ring(
                &mut rings,
                FanoutRecord {
                    shard: 0,
                    version: v,
                    publish_ns: e.publish_ns,
                    is_final: false,
                    framed_rsp: Bytes::from_static(b"framed"),
                },
                2,
            );
        }
        assert_eq!(rings[0].len(), 2, "ring bounded to cap");
        let view = TreeView {
            rings: &rings,
            drained: false,
        };
        // Synced to 4: version 5 is still in the ring → tree delta.
        assert!(matches!(
            next_shard_update(&store, Some(&view), 0, 4),
            ShardUpdate::TreeDelta(r) if r.version == 5
        ));
        // Synced to 1: version 2 fell off the frontier ring → resync.
        assert!(matches!(
            next_shard_update(&store, Some(&view), 0, 1),
            ShardUpdate::Snapshot(e, true) if e.version == 6
        ));
        // Synced to current: nothing to send.
        assert!(matches!(
            next_shard_update(&store, Some(&view), 0, 6),
            ShardUpdate::Wait
        ));
        // A record the root has not delivered yet (store has the delta,
        // ring does not) waits — unless the tree already drained.
        let empty_rings: Vec<VecDeque<FanoutRecord>> = vec![VecDeque::new()];
        let waiting = TreeView {
            rings: &empty_rings,
            drained: false,
        };
        assert!(matches!(
            next_shard_update(&store, Some(&waiting), 0, 4),
            ShardUpdate::Wait
        ));
        let drained = TreeView {
            rings: &empty_rings,
            drained: true,
        };
        assert!(matches!(
            next_shard_update(&store, Some(&drained), 0, 4),
            ShardUpdate::Snapshot(_, true)
        ));
    }
}
