//! Edge-case tests for `map_partitions_directed` (Figure 8's pivot with a
//! caller-fixed master side): single-rank partitions on either end, a
//! fanout policy wider than the leaf count, masters that legitimately end
//! up with empty peer lists, and the unknown-partition error path.
//!
//! Note the launcher requires every partition to have at least one rank,
//! so a literally empty slave *partition* cannot exist; the degenerate
//! shape the protocol must survive is a master *rank* to which the policy
//! assigns no slaves — its peer list stays empty while its collective
//! participation still completes.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions_directed;
use opmr_vmpi::{Map, MapPolicy, Vmpi, VmpiError};
use std::sync::{Arc, Mutex};

type PeerLists = Vec<(usize, Vec<usize>)>;
type PeersByRank = Arc<Mutex<PeerLists>>;

/// Runs one slave partition of `slaves` ranks and one master partition of
/// `masters` ranks (master side fixed, pids 0/1), mapping with `policy`.
/// Returns (slave peer lists, master peer lists) keyed by world rank.
fn run_directed(slaves: usize, masters: usize, policy: MapPolicy) -> (PeerLists, PeerLists) {
    let slave_out: PeersByRank = Arc::new(Mutex::new(Vec::new()));
    let master_out: PeersByRank = Arc::new(Mutex::new(Vec::new()));

    let s_out = Arc::clone(&slave_out);
    let s_policy = policy.clone();
    let m_out = Arc::clone(&master_out);
    Launcher::new()
        .partition("slave", slaves, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 1, 1, s_policy.clone(), &mut map).unwrap();
            s_out
                .lock()
                .unwrap()
                .push((v.mpi().world_rank(), map.peers().to_vec()));
        })
        .partition("master", masters, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 0, 1, policy.clone(), &mut map).unwrap();
            m_out
                .lock()
                .unwrap()
                .push((v.mpi().world_rank(), map.peers().to_vec()));
        })
        .run()
        .unwrap();

    let mut s = Arc::try_unwrap(slave_out).unwrap().into_inner().unwrap();
    let mut m = Arc::try_unwrap(master_out).unwrap().into_inner().unwrap();
    s.sort_by_key(|e| e.0);
    m.sort_by_key(|e| e.0);
    (s, m)
}

#[test]
fn single_rank_partitions_map_both_ways() {
    // 1 slave ↔ 1 master: the smallest legal shape. The lone slave gets
    // the lone master and vice versa.
    let (slaves, masters) = run_directed(1, 1, MapPolicy::RoundRobin);
    assert_eq!(slaves, vec![(0, vec![1])]);
    assert_eq!(masters, vec![(1, vec![0])]);

    // 1 slave against a wide master side: exactly one master rank adopts
    // it, every other master's peer list stays empty.
    let (slaves, masters) = run_directed(1, 4, MapPolicy::RoundRobin);
    assert_eq!(slaves, vec![(0, vec![1])], "slave 0 -> master-local 0");
    let adopted: Vec<_> = masters.iter().filter(|(_, p)| !p.is_empty()).collect();
    assert_eq!(adopted, vec![&(1, vec![0])]);
}

#[test]
fn masters_beyond_the_slave_count_get_empty_peer_lists() {
    // 2 slaves over 5 masters round-robin: masters 2..5 legitimately end
    // up with nothing mapped to them, yet the collective completes and
    // their maps are empty rather than stale.
    let (slaves, masters) = run_directed(2, 5, MapPolicy::RoundRobin);
    assert_eq!(slaves.len(), 2);
    for (i, (world, peers)) in slaves.iter().enumerate() {
        assert_eq!(*world, i);
        assert_eq!(peers, &vec![2 + i], "slave {i} -> master-local {i}");
    }
    let nonempty: Vec<_> = masters
        .iter()
        .filter_map(|(w, p)| (!p.is_empty()).then_some(*w))
        .collect();
    assert_eq!(nonempty, vec![2, 3], "exactly the first two masters adopt");
    for (world, peers) in &masters {
        if *world >= 4 {
            assert!(peers.is_empty(), "master {world} adopted unexpectedly");
        }
    }
}

#[test]
fn fanout_wider_than_leaf_count_clamps_to_one_master() {
    // A tree-frontier policy computed for a fanout larger than the actual
    // leaf count: every leaf index divides to frontier node 0. The mapping
    // must concentrate all slaves on one master instead of wrapping or
    // overflowing.
    let fanout = 16; // leaf count is 3
    let policy = MapPolicy::Custom(Arc::new(move |leaf| leaf / fanout));
    let (slaves, masters) = run_directed(3, 2, policy);
    for (_, peers) in &slaves {
        assert_eq!(peers, &vec![3], "all leaves attach to master-local 0");
    }
    assert_eq!(masters[0].1, vec![0, 1, 2], "master 0 adopted every leaf");
    assert!(masters[1].1.is_empty(), "master 1 must stay leaf-less");
}

#[test]
fn unknown_partition_is_a_typed_error() {
    let hit = Arc::new(Mutex::new(0usize));
    let hit2 = Arc::clone(&hit);
    Launcher::new()
        .partition("only", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            // Partition #7 does not exist; an empty partition cannot be
            // expressed at all (the launcher asserts size > 0), so this is
            // the shape "map a missing/empty side" degenerates to.
            match map_partitions_directed(&v, 7, 7, MapPolicy::RoundRobin, &mut map) {
                Err(VmpiError::UnknownPartition(_)) => *hit2.lock().unwrap() += 1,
                other => panic!("expected UnknownPartition, got {other:?}"),
            }
            // Self-mapping is rejected before any protocol traffic too.
            match map_partitions_directed(&v, 0, 0, MapPolicy::RoundRobin, &mut map) {
                Err(VmpiError::SelfMapping) => {}
                other => panic!("expected SelfMapping, got {other:?}"),
            }
            assert!(map.is_empty(), "failed mappings must not grow the map");
        })
        .run()
        .unwrap();
    assert_eq!(*hit.lock().unwrap(), 2);
}

#[test]
fn truncated_pivot_registration_is_a_typed_error() {
    // Satellite regression for the pivot decode path: a hostile slave rank
    // speaks the real mapping protocol but sends a 3-byte registration
    // instead of one u64. The pivot must surface MalformedPivotReply (with
    // the observed length) rather than panicking on the short buffer.
    use opmr_runtime::Context;

    let hit = Arc::new(Mutex::new(None));
    let hit2 = Arc::clone(&hit);
    Launcher::new()
        .partition("slave", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let master = v.partition(1).unwrap().clone();
            // Recompute the protocol's reserved tag (master pid 1, slave
            // pid 0) and hit the pivot with a truncated registration.
            let tag = 0x0400_0000 | (1 << 12);
            v.mpi()
                .send_ctx(
                    Context::Stream,
                    &v.comm_universe(),
                    master.root_world_rank(),
                    tag,
                    vec![0u8; 3],
                )
                .unwrap();
        })
        .partition("master", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            let got = map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map);
            assert!(map.is_empty(), "failed mapping must not grow the map");
            *hit2.lock().unwrap() = Some(got);
        })
        .run()
        .unwrap();
    let got = hit.lock().unwrap().take();
    match got {
        Some(Err(VmpiError::MalformedPivotReply { len: 3, .. })) => {}
        other => panic!("expected MalformedPivotReply {{ len: 3 }}, got {other:?}"),
    }
}

#[test]
fn out_of_partition_registration_is_a_protocol_violation() {
    // Same hostile setup, but the registration is a well-formed u64 naming
    // a world rank outside the slave partition: the pivot must reject it
    // as a protocol violation instead of assigning a bogus peer.
    use opmr_runtime::Context;

    let hit = Arc::new(Mutex::new(None));
    let hit2 = Arc::clone(&hit);
    Launcher::new()
        .partition("slave", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let master = v.partition(1).unwrap().clone();
            let tag = 0x0400_0000 | (1 << 12);
            v.mpi()
                .send_ctx(
                    Context::Stream,
                    &v.comm_universe(),
                    master.root_world_rank(),
                    tag,
                    opmr_runtime::pod::bytes_of(&999u64),
                )
                .unwrap();
        })
        .partition("master", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            let got = map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map);
            assert!(map.is_empty());
            *hit2.lock().unwrap() = Some(got);
        })
        .run()
        .unwrap();
    let outcome = hit.lock().unwrap().take();
    match outcome {
        Some(Err(VmpiError::ProtocolViolation { got, .. })) => {
            assert!(got.contains("999"), "violation names the bogus rank: {got}");
        }
        other => panic!("expected ProtocolViolation, got {other:?}"),
    }
}
