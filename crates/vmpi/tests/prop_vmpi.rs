//! Property tests for the coupling layer: mapping validity for arbitrary
//! partition shapes and stream integrity for arbitrary traffic shapes.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{Balance, Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, WriteStream};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

type PeerLists = Vec<(usize, Vec<usize>)>;

fn run_map(writers: usize, analyzers: usize, policy: MapPolicy) -> (PeerLists, PeerLists) {
    let w_out = Arc::new(Mutex::new(Vec::new()));
    let a_out = Arc::new(Mutex::new(Vec::new()));
    let (w2, a2) = (Arc::clone(&w_out), Arc::clone(&a_out));
    let (p1, p2) = (policy.clone(), policy);
    Launcher::new()
        .partition("w", writers, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 1, p1.clone(), &mut map).unwrap();
            w2.lock()
                .unwrap()
                .push((v.mpi().world_rank(), map.peers().to_vec()));
        })
        .partition("a", analyzers, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, p2.clone(), &mut map).unwrap();
            a2.lock()
                .unwrap()
                .push((v.mpi().world_rank(), map.peers().to_vec()));
        })
        .run()
        .unwrap();
    let w = w_out.lock().unwrap().clone();
    let a = a_out.lock().unwrap().clone();
    (w, a)
}

fn arb_policy() -> impl Strategy<Value = MapPolicy> {
    prop_oneof![
        Just(MapPolicy::RoundRobin),
        Just(MapPolicy::Fixed),
        any::<u64>().prop_map(|seed| MapPolicy::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any partition sizes and policy: every process of both sides is
    /// mapped, the views agree, and the master/slave split follows size.
    #[test]
    fn mapping_is_total_and_consistent(
        writers in 1usize..10,
        analyzers in 1usize..10,
        policy in arb_policy(),
    ) {
        let (w, a) = run_map(writers, analyzers, policy);
        prop_assert_eq!(w.len(), writers);
        prop_assert_eq!(a.len(), analyzers);
        // The larger side (the slave) has exactly one peer per process;
        // the smaller side's peer lists partition the slave processes.
        let (slave, master) = if (writers, 0) < (analyzers, 1) {
            (&a, &w)
        } else {
            (&w, &a)
        };
        for (_, peers) in slave {
            prop_assert_eq!(peers.len(), 1);
        }
        let mut all: Vec<usize> = master.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        all.sort_unstable();
        let mut expect: Vec<usize> = slave.iter().map(|(r, _)| *r).collect();
        expect.sort_unstable();
        prop_assert_eq!(all, expect, "master lists cover each slave exactly once");
        // Cross-consistency.
        for (rank, peers) in slave {
            let peer = peers[0];
            let (_, back) = master.iter().find(|(r, _)| r == &peer).expect("peer exists");
            prop_assert!(back.contains(rank));
        }
    }

    /// Streams deliver every byte exactly once, in per-writer order, for
    /// arbitrary block sizes, window depths and write-chunk patterns.
    #[test]
    fn stream_integrity_arbitrary_shapes(
        block_pow in 6u32..14,            // 64 B .. 8 KiB blocks
        n_async in 1usize..5,
        chunks in proptest::collection::vec(1usize..3000, 1..12),
        writers in 1usize..4,
    ) {
        let block = 1usize << block_pow;
        let cfg = StreamConfig::new(block, n_async, Balance::RoundRobin);
        let totals: Vec<usize> = (0..writers)
            .map(|w| chunks.iter().map(|c| c + w).sum())
            .collect();
        let expect: HashMap<usize, usize> =
            totals.iter().enumerate().map(|(w, t)| (w, *t)).collect();
        let got = Arc::new(Mutex::new(HashMap::<usize, usize>::new()));
        let got2 = Arc::clone(&got);
        let chunks2 = chunks.clone();
        Launcher::new()
            .partition("w", writers, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let me = v.rank();
                let mut st =
                    WriteStream::open_to(&v, vec![writers], cfg, 3).unwrap();
                for &c in &chunks2 {
                    st.write(&vec![me as u8; c + me]).unwrap();
                }
                st.close().unwrap();
            })
            .partition("r", 1, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let sources: Vec<usize> = (0..writers).collect();
                let mut st = ReadStream::open_from(&v, sources, cfg, 3).unwrap();
                while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                    assert!(b.data.iter().all(|&x| x as usize == b.source));
                    *got2.lock().unwrap().entry(b.source).or_insert(0) += b.data.len();
                }
            })
            .run()
            .unwrap();
        let got = Arc::try_unwrap(got).unwrap().into_inner().unwrap();
        prop_assert_eq!(got, expect);
    }
}
