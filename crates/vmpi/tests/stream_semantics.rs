//! End-to-end VMPI stream tests: the writer/reader coupling of the paper's
//! Figures 11 and 12, at thread scale.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{
    Balance, Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn small_cfg(block: usize) -> StreamConfig {
    StreamConfig::new(block, 3, Balance::RoundRobin)
}

/// The paper's Figure 11/12 pair: writers stream blocks, the analyzer drains
/// them with non-blocking reads until all streams close.
fn run_coupling(
    writers: usize,
    readers: usize,
    bytes_per_writer: usize,
    block: usize,
) -> HashMap<usize, u64> {
    let received = Arc::new(Mutex::new(HashMap::<usize, u64>::new()));
    let recv2 = Arc::clone(&received);
    Launcher::new()
        .partition("app", writers, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let analyzer = v.partition_by_name("Analyzer").expect("analyzer exists");
            let mut map = Map::new();
            map_partitions(&v, analyzer.id, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = WriteStream::open_map(&v, &map, small_cfg(block), 1).unwrap();
            let chunk = vec![v.rank() as u8; 1000];
            let mut left = bytes_per_writer;
            while left > 0 {
                let n = left.min(chunk.len());
                st.write(&chunk[..n]).unwrap();
                left -= n;
            }
            st.close().unwrap();
        })
        .partition("Analyzer", readers, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            for pid in 0..v.partition_count() {
                if pid != v.partition_id() {
                    map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map).unwrap();
                }
            }
            if map.is_empty() {
                return; // reader without assigned writers
            }
            let mut st = ReadStream::open_map(&v, &map, small_cfg(block), 1).unwrap();
            loop {
                match st.read(ReadMode::NonBlocking) {
                    Ok(Some(b)) => {
                        let mut g = recv2.lock().unwrap();
                        *g.entry(b.source).or_insert(0) += b.data.len() as u64;
                        // Content check: all bytes carry the writer's rank.
                        assert!(b.data.iter().all(|&x| x as usize == b.source));
                    }
                    Ok(None) => break,
                    Err(VmpiError::Again) => std::thread::yield_now(),
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        })
        .run()
        .unwrap();
    Arc::try_unwrap(received).unwrap().into_inner().unwrap()
}

#[test]
fn one_to_one_delivers_every_byte() {
    let got = run_coupling(1, 1, 50_000, 4096);
    assert_eq!(got.len(), 1);
    assert_eq!(got[&0], 50_000);
}

#[test]
fn many_to_one_fan_in() {
    let got = run_coupling(6, 1, 20_000, 2048);
    assert_eq!(got.len(), 6);
    for w in 0..6 {
        assert_eq!(got[&w], 20_000, "writer {w}");
    }
}

#[test]
fn many_to_many_ratio_three() {
    let got = run_coupling(6, 2, 30_000, 1024);
    assert_eq!(got.len(), 6);
    assert!(got.values().all(|&v| v == 30_000));
}

#[test]
fn unaligned_sizes_partial_blocks() {
    // 7777 is not a multiple of the 512-byte block: the trailing partial
    // block must arrive via flush-on-close.
    let got = run_coupling(3, 1, 7_777, 512);
    assert!(got.values().all(|&v| v == 7_777));
}

#[test]
fn blocking_read_mode() {
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], small_cfg(256), 7).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
            st.write(&[9u8; 1000]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], small_cfg(256), 7).unwrap();
            let mut total = 0;
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                total += b.data.len();
            }
            assert_eq!(total, 1000);
            assert!(st.all_closed());
        })
        .run()
        .unwrap();
}

#[test]
fn nonblocking_read_reports_eagain_before_data() {
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            // Wait for the go signal before writing anything.
            let u = v.comm_universe();
            v.mpi()
                .recv(
                    &u,
                    opmr_runtime::Src::Rank(1),
                    opmr_runtime::TagSel::Tag(99),
                )
                .unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], small_cfg(128), 2).unwrap();
            st.write(&[1u8; 128]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], small_cfg(128), 2).unwrap();
            // Nothing written yet: must be EAGAIN, not a hang.
            assert!(matches!(
                st.read(ReadMode::NonBlocking),
                Err(VmpiError::Again)
            ));
            let u = v.comm_universe();
            v.mpi().send(&u, 0, 99, bytes::Bytes::new()).unwrap();
            let mut total = 0;
            loop {
                match st.read(ReadMode::NonBlocking) {
                    Ok(Some(b)) => total += b.data.len(),
                    Ok(None) => break,
                    Err(VmpiError::Again) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
            assert_eq!(total, 128);
        })
        .run()
        .unwrap();
}

#[test]
fn per_writer_byte_order_is_preserved() {
    // Each writer emits a strictly increasing counter; the reader checks
    // per-writer monotonicity even with interleaved arrivals.
    Launcher::new()
        .partition("w", 3, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![3], small_cfg(64), 3).unwrap();
            for i in 0..500u32 {
                st.write(&i.to_le_bytes()).unwrap();
            }
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0, 1, 2], small_cfg(64), 3).unwrap();
            let mut next: HashMap<usize, u32> = HashMap::new();
            let mut leftover: HashMap<usize, Vec<u8>> = HashMap::new();
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                let buf = leftover.entry(b.source).or_default();
                buf.extend_from_slice(&b.data);
                while buf.len() >= 4 {
                    let v = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
                    buf.drain(..4);
                    let expect = next.entry(b.source).or_insert(0);
                    assert_eq!(v, *expect, "writer {} out of order", b.source);
                    *expect += 1;
                }
            }
            assert_eq!(next.len(), 3);
            assert!(next.values().all(|&n| n == 500));
        })
        .run()
        .unwrap();
}

#[test]
fn write_after_close_rejected() {
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], small_cfg(64), 4).unwrap();
            st.write(b"x").unwrap();
            st.flush().unwrap();
            // close() consumes; test double-close via drop path instead:
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], small_cfg(64), 4).unwrap();
            let mut total = 0;
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                total += b.data.len();
            }
            assert_eq!(total, 1);
        })
        .run()
        .unwrap();
}

#[test]
fn drop_closes_stream() {
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], small_cfg(64), 5).unwrap();
            st.write(&[7u8; 100]).unwrap();
            drop(st); // implicit close: reader must still terminate
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], small_cfg(64), 5).unwrap();
            let mut total = 0;
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                total += b.data.len();
            }
            assert_eq!(total, 100);
        })
        .run()
        .unwrap();
}

#[test]
fn multi_endpoint_writer_balances_blocks() {
    // One writer, three readers, round-robin balancing: block counts per
    // reader differ by at most one.
    let counts = Arc::new(Mutex::new(vec![0u64; 3]));
    let c2 = Arc::clone(&counts);
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(
                &v,
                vec![1, 2, 3],
                StreamConfig::new(128, 3, Balance::RoundRobin),
                6,
            )
            .unwrap();
            assert_eq!(st.endpoint_count(), 3);
            st.write(&vec![5u8; 128 * 9]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 3, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st =
                ReadStream::open_from(&v, vec![0], StreamConfig::new(128, 3, Balance::None), 6)
                    .unwrap();
            let mut blocks = 0;
            while let Some(_b) = st.read(ReadMode::Blocking).unwrap() {
                blocks += 1;
            }
            c2.lock().unwrap()[v.rank()] = blocks;
        })
        .run()
        .unwrap();
    let counts = counts.lock().unwrap();
    assert_eq!(counts.iter().sum::<u64>(), 9);
    assert!(
        counts.iter().all(|&c| c == 3),
        "round robin split: {counts:?}"
    );
}

#[test]
fn random_balance_covers_endpoints() {
    let counts = Arc::new(Mutex::new(vec![0u64; 2]));
    let c2 = Arc::clone(&counts);
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(
                &v,
                vec![1, 2],
                StreamConfig::new(64, 3, Balance::Random { seed: 7 }),
                8,
            )
            .unwrap();
            st.write(&vec![1u8; 64 * 40]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st =
                ReadStream::open_from(&v, vec![0], StreamConfig::new(64, 3, Balance::None), 8)
                    .unwrap();
            let mut blocks = 0;
            while let Some(_b) = st.read(ReadMode::Blocking).unwrap() {
                blocks += 1;
            }
            c2.lock().unwrap()[v.rank()] = blocks;
        })
        .run()
        .unwrap();
    let counts = counts.lock().unwrap();
    assert_eq!(counts.iter().sum::<u64>(), 40);
    assert!(
        counts.iter().all(|&c| c > 0),
        "both endpoints used: {counts:?}"
    );
}

#[test]
fn eof_only_after_all_writers_close() {
    // One writer closes immediately, the other holds the stream open until
    // released: the reader must keep reporting EAGAIN (never EOF) while any
    // writer remains open.
    Launcher::new()
        .partition("w", 2, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![2], small_cfg(64), 11).unwrap();
            st.write(&[v.rank() as u8; 64]).unwrap();
            if v.rank() == 0 {
                st.close().unwrap();
            } else {
                // Hold until the reader confirms it saw a non-EOF lull.
                let u = v.comm_universe();
                v.mpi()
                    .recv(
                        &u,
                        opmr_runtime::Src::Rank(2),
                        opmr_runtime::TagSel::Tag(77),
                    )
                    .unwrap();
                st.close().unwrap();
            }
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0, 1], small_cfg(64), 11).unwrap();
            // Drain both data blocks and writer 0's close.
            let mut got = 0;
            while got < 2 {
                match st.read(ReadMode::NonBlocking) {
                    Ok(Some(_)) => got += 1,
                    Ok(None) => panic!("EOF before all writers closed"),
                    Err(VmpiError::Again) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
            // All data consumed, writer 1 still open: must be Again, not EOF.
            for _ in 0..100 {
                match st.read(ReadMode::NonBlocking) {
                    Err(VmpiError::Again) => {}
                    Ok(None) => panic!("EOF while a writer is still open"),
                    Ok(Some(_)) => panic!("no data should remain"),
                    Err(e) => panic!("{e}"),
                }
            }
            assert!(!st.all_closed());
            // Release writer 1, then EOF must arrive.
            let u = v.comm_universe();
            v.mpi().send(&u, 1, 77, bytes::Bytes::new()).unwrap();
            match st.read(ReadMode::Blocking) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("no data should remain"),
                Err(e) => panic!("{e}"),
            }
            assert!(st.all_closed());
        })
        .run()
        .unwrap();
}

#[test]
fn balance_none_pins_first_endpoint() {
    // Balance::None sends every block to the first endpoint; the others
    // see only the close marker.
    let counts = Arc::new(Mutex::new(vec![0u64; 3]));
    let c2 = Arc::clone(&counts);
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(
                &v,
                vec![1, 2, 3],
                StreamConfig::new(128, 3, Balance::None),
                12,
            )
            .unwrap();
            st.write(&vec![4u8; 128 * 9]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 3, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st =
                ReadStream::open_from(&v, vec![0], StreamConfig::new(128, 3, Balance::None), 12)
                    .unwrap();
            let mut blocks = 0;
            while let Some(_b) = st.read(ReadMode::Blocking).unwrap() {
                blocks += 1;
            }
            c2.lock().unwrap()[v.rank()] = blocks;
        })
        .run()
        .unwrap();
    let counts = counts.lock().unwrap();
    assert_eq!(&*counts, &[9, 0, 0], "None policy pins endpoint 0");
}

#[test]
fn backpressure_bounds_inflight_blocks() {
    // Writer floods a slow reader with rendezvous-sized blocks; the bounded
    // async window must prevent unbounded buffering (we can only observe
    // that the transfer completes and all data arrives intact).
    Launcher::new()
        .eager_limit(512)
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st =
                WriteStream::open_to(&v, vec![1], StreamConfig::new(4096, 2, Balance::None), 9)
                    .unwrap();
            st.write(&vec![3u8; 4096 * 50]).unwrap();
            assert_eq!(st.bytes_written(), 4096 * 50);
            assert_eq!(st.blocks_sent(), 50);
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st =
                ReadStream::open_from(&v, vec![0], StreamConfig::new(4096, 2, Balance::None), 9)
                    .unwrap();
            let mut total = 0u64;
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                total += b.data.len() as u64;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            assert_eq!(total, 4096 * 50);
            assert_eq!(st.blocks_read(), 50);
        })
        .run()
        .unwrap();
}

#[test]
fn duplex_stream_both_directions() {
    // Two partitions exchange data in both directions over one duplex
    // stream (the paper's "multi- or uni-directional" streams).
    Launcher::new()
        .partition("left", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut dx = opmr_vmpi::DuplexStream::open(&v, vec![1], small_cfg(256), 10).unwrap();
            dx.write(&[1u8; 500]).unwrap();
            dx.flush().unwrap();
            // Read everything the peer sends, then close.
            let mut got = 0;
            while got < 300 {
                if let Some(b) = dx.read(ReadMode::Blocking).unwrap() {
                    assert!(b.data.iter().all(|&x| x == 2));
                    got += b.data.len();
                }
            }
            let rest = dx.close().unwrap();
            assert!(rest.iter().all(|b| b.data.iter().all(|&x| x == 2)));
            assert_eq!(got + rest.iter().map(|b| b.data.len()).sum::<usize>(), 300);
        })
        .partition("right", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut dx = opmr_vmpi::DuplexStream::open(&v, vec![0], small_cfg(256), 10).unwrap();
            dx.write(&[2u8; 300]).unwrap();
            dx.flush().unwrap();
            let mut got = 0;
            while got < 500 {
                if let Some(b) = dx.read(ReadMode::Blocking).unwrap() {
                    assert!(b.data.iter().all(|&x| x == 1));
                    got += b.data.len();
                }
            }
            let rest = dx.close().unwrap();
            assert_eq!(got + rest.iter().map(|b| b.data.len()).sum::<usize>(), 500);
        })
        .run()
        .unwrap();
}

#[test]
fn partition_lookup_by_cmdline() {
    Launcher::new()
        .partition_with_cmdline("appA", "./bt.C.64", 2, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            assert_eq!(v.partition_by_cmdline("./bt.C.64").unwrap().name, "appA");
            assert!(v.partition_by_cmdline("./missing").is_none());
        })
        .run()
        .unwrap();
}

#[test]
fn zero_length_write_before_close_is_a_noop() {
    // Close-protocol edge case: an empty write must neither emit a block
    // nor corrupt the close handshake. The reader sees exactly the real
    // payload bytes, then a clean end of stream.
    let received = Arc::new(Mutex::new(0u64));
    let recv2 = Arc::clone(&received);
    Launcher::new()
        .partition("app", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let analyzer = v.partition_by_name("Analyzer").unwrap().id;
            let mut map = Map::new();
            map_partitions(&v, analyzer, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = WriteStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            st.write(&[]).unwrap();
            st.write(&[7u8; 100]).unwrap();
            st.write(&[]).unwrap();
            st.close().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                *recv2.lock().unwrap() += b.data.len() as u64;
            }
            // A second read after end-of-stream stays Ok(None), not a panic.
            assert!(st.read(ReadMode::Blocking).unwrap().is_none());
        })
        .run()
        .unwrap();
    assert_eq!(*received.lock().unwrap(), 100);
}

#[test]
fn double_flush_on_empty_buffer_is_idempotent() {
    // Flushing with nothing buffered (twice, before and after traffic)
    // must not emit phantom blocks or trip the close protocol.
    let received = Arc::new(Mutex::new(0u64));
    let recv2 = Arc::clone(&received);
    Launcher::new()
        .partition("app", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let analyzer = v.partition_by_name("Analyzer").unwrap().id;
            let mut map = Map::new();
            map_partitions(&v, analyzer, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = WriteStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            st.flush().unwrap();
            st.flush().unwrap();
            st.write(&[3u8; 64]).unwrap();
            st.flush().unwrap();
            st.flush().unwrap();
            st.close().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            let mut blocks = 0;
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                *recv2.lock().unwrap() += b.data.len() as u64;
                blocks += 1;
            }
            assert_eq!(blocks, 1, "empty flushes must not emit blocks");
        })
        .run()
        .unwrap();
    assert_eq!(*received.lock().unwrap(), 64);
}

#[test]
fn read_after_writers_aborted_is_peer_lost_not_a_panic() {
    // The close-protocol contrast pair: writers that *abort* leave the
    // reader with a typed PeerLost error, while writers that *close*
    // (previous tests) end in Ok(None). Neither path may panic.
    let outcome = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&outcome);
    Launcher::new()
        .partition("app", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let analyzer = v.partition_by_name("Analyzer").unwrap().id;
            let mut map = Map::new();
            map_partitions(&v, analyzer, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = WriteStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            st.write(&[9u8; 32]).unwrap();
            st.abort(); // deliberate: no close handshake
        })
        .partition("Analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, small_cfg(256), 1).unwrap();
            let got = loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(_)) => continue,
                    other => break other,
                }
            };
            *out2.lock().unwrap() = Some(got);
        })
        .run()
        .unwrap();
    let got = outcome.lock().unwrap().take();
    match got {
        Some(Err(VmpiError::PeerLost { .. })) => {}
        other => panic!("expected PeerLost after abort, got {other:?}"),
    }
}
