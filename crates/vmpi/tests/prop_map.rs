//! Property tests for the Map pivot protocol (Figures 7/8/10): for
//! *arbitrary* partition shapes and every assignment policy, the
//! associations produced by `map_partitions` are
//!
//! * **total** — every slave process is assigned a master peer,
//! * **collision-free** — no slave appears in two masters' peer lists,
//! * **additive** — mapping several partitions in sequence concatenates
//!   per-partition segments without disturbing earlier entries
//!   (the Figure-10 multi-instrumentation pattern).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{Map, MapPolicy, Vmpi};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Per-rank observation: world rank plus the map's peer list *snapshots*
/// taken after each successive mapping (so segment growth is visible).
type Snapshots = Vec<(usize, Vec<Vec<usize>>)>;

/// Launches `app_sizes.len()` application partitions plus one analyzer
/// partition of `analyzers` ranks. Every app maps to the analyzer; the
/// analyzer maps every app in partition order, snapshotting its map after
/// each step. Returns (per-app observations, analyzer observations).
fn run_additive(
    app_sizes: &[usize],
    analyzers: usize,
    policy: MapPolicy,
) -> (Vec<Snapshots>, Snapshots) {
    let apps: Vec<Arc<Mutex<Snapshots>>> = app_sizes
        .iter()
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let analyzer_out = Arc::new(Mutex::new(Snapshots::new()));
    let analyzer_pid = app_sizes.len();

    let mut launcher = Launcher::new();
    for (pid, &size) in app_sizes.iter().enumerate() {
        let out = Arc::clone(&apps[pid]);
        let policy = policy.clone();
        launcher = launcher.partition(&format!("app{pid}"), size, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, analyzer_pid, policy.clone(), &mut map).unwrap();
            out.lock()
                .unwrap()
                .push((v.mpi().world_rank(), vec![map.peers().to_vec()]));
        });
    }
    let a2 = Arc::clone(&analyzer_out);
    let policy2 = policy.clone();
    launcher = launcher.partition("Analyzer", analyzers, move |mpi| {
        let v = Vmpi::new(mpi).unwrap();
        let mut map = Map::new();
        let mut snaps = Vec::new();
        for pid in 0..analyzer_pid {
            map_partitions(&v, pid, policy2.clone(), &mut map).unwrap();
            snaps.push(map.peers().to_vec());
        }
        a2.lock().unwrap().push((v.mpi().world_rank(), snaps));
    });
    launcher.run().unwrap();

    let mut app_obs: Vec<Snapshots> = apps
        .iter()
        .map(|m| {
            let mut v = m.lock().unwrap().clone();
            v.sort_by_key(|e| e.0);
            v
        })
        .collect();
    app_obs.iter_mut().for_each(|v| v.sort_by_key(|e| e.0));
    let mut a = analyzer_out.lock().unwrap().clone();
    a.sort_by_key(|e| e.0);
    (app_obs, a)
}

fn arb_policy() -> impl Strategy<Value = MapPolicy> {
    prop_oneof![
        Just(MapPolicy::RoundRobin),
        Just(MapPolicy::Fixed),
        any::<u64>().prop_map(|seed| MapPolicy::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full Figure-10 shape: arbitrary app partition sizes, analyzer
    /// size and policy. Checks totality, collision-freedom and additivity
    /// of the analyzer's accumulated map.
    #[test]
    fn pivot_associations_are_total_collision_free_and_additive(
        app_sizes in proptest::collection::vec(1usize..6, 1..4),
        analyzers in 1usize..5,
        policy in arb_policy(),
    ) {
        let (apps, analyzer) = run_additive(&app_sizes, analyzers, policy);
        prop_assert_eq!(analyzer.len(), analyzers);

        // Additivity: every analyzer rank's snapshots are prefixes of one
        // another — later mappings never disturb earlier segments.
        for (_, snaps) in &analyzer {
            for k in 1..snaps.len() {
                prop_assert_eq!(
                    &snaps[k][..snaps[k - 1].len()],
                    &snaps[k - 1][..],
                    "mapping #{} rewrote an earlier segment", k
                );
            }
        }

        // Per app partition: the pair (app, analyzer) is total and
        // collision-free, in whichever direction the size rule mastered.
        let mut analyzer_prev: Vec<usize> = vec![0; analyzers];
        for (pid, app) in apps.iter().enumerate() {
            prop_assert_eq!(app.len(), app_sizes[pid]);
            let app_ranks: Vec<usize> = app.iter().map(|(r, _)| *r).collect();
            // The analyzer's segment for this mapping, per analyzer rank.
            let segments: Vec<(usize, Vec<usize>)> = analyzer
                .iter()
                .enumerate()
                .map(|(i, (r, snaps))| {
                    let seg = snaps[pid][analyzer_prev[i]..].to_vec();
                    (*r, seg)
                })
                .collect();
            for (i, (_, snaps)) in analyzer.iter().enumerate() {
                analyzer_prev[i] = snaps[pid].len();
            }

            // The protocol's rule: the smaller partition masters, ties
            // break toward the lower partition id — and app pids are
            // always lower than the analyzer's.
            let app_is_master = app_sizes[pid] <= analyzers;
            let app_lists: Vec<(usize, Vec<usize>)> = app
                .iter()
                .map(|(r, snaps)| (*r, snaps[0].clone()))
                .collect();
            let (slave_ranks, master_lists, slave_lists) = if app_is_master {
                let analyzer_ranks: Vec<usize> = segments.iter().map(|(r, _)| *r).collect();
                (analyzer_ranks, app_lists, segments.clone())
            } else {
                (app_ranks.clone(), segments.clone(), app_lists)
            };

            // Each slave holds exactly one master peer, and that master's
            // list names the slave back (cross-consistency).
            for (rank, peers) in &slave_lists {
                prop_assert_eq!(peers.len(), 1, "slave {} needs exactly one master", rank);
                let (_, back) = master_lists
                    .iter()
                    .find(|(r, _)| r == &peers[0])
                    .expect("assigned master exists");
                prop_assert!(
                    back.contains(rank),
                    "master {} must list slave {} back", peers[0], rank
                );
            }
            // Totality + collision-freedom: the union of master lists is
            // exactly the slave rank set, each appearing once.
            let mut union: Vec<usize> = master_lists
                .iter()
                .flat_map(|(_, l)| l.iter().copied())
                .collect();
            union.sort_unstable();
            let mut expect = slave_ranks.clone();
            expect.sort_unstable();
            prop_assert_eq!(union, expect, "partition {} association not a bijection onto slaves", pid);
        }
    }

    /// Policy shapes at the pivot: round-robin spreads within one slot,
    /// fixed clamps the overflow onto the last master, and a seeded random
    /// policy reproduces the same multiset of assignments.
    #[test]
    fn policy_shapes_hold_for_arbitrary_sizes(
        writers in 2usize..12,
        analyzers in 1usize..6,
    ) {
        // Analyzer must master (be strictly smaller) for the per-policy
        // shape checks below; lift the writer count when needed (the
        // vendored proptest shim has no prop_assume).
        let writers = writers.max(analyzers + 1);
        let (_, rr) = run_additive(&[writers], analyzers, MapPolicy::RoundRobin);
        let mut lens: Vec<usize> = rr.iter().map(|(_, s)| s[0].len()).collect();
        lens.sort_unstable();
        prop_assert!(lens[lens.len() - 1] - lens[0] <= 1, "round robin within 1: {:?}", lens);

        let (_, fx) = run_additive(&[writers], analyzers, MapPolicy::Fixed);
        // Fixed: masters 0..m-1 get one each, the last absorbs the rest.
        for (i, (_, s)) in fx.iter().enumerate() {
            let expect = if i + 1 < analyzers { 1 } else { writers - (analyzers - 1) };
            prop_assert_eq!(s[0].len(), expect, "fixed policy shape at master {}", i);
        }

        let (_, r1) = run_additive(&[writers], analyzers, MapPolicy::Random { seed: 99 });
        let (_, r2) = run_additive(&[writers], analyzers, MapPolicy::Random { seed: 99 });
        let shape = |o: &Snapshots| {
            let mut v: Vec<usize> = o.iter().map(|(_, s)| s[0].len()).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(shape(&r1), shape(&r2), "seeded random load shape is stable");
    }
}
