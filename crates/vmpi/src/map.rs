//! VMPI Map: partition-to-partition process mapping via the pivot protocol.
//!
//! The paper (Figure 7): when mapping two partitions, the larger becomes the
//! *slave* and the smaller the *master*. Every slave process sends its
//! global rank to the master partition's root (the *pivot*); the pivot
//! assigns each incoming rank a master-local rank according to a policy and
//! returns the association both ways. The pivot also serves as the
//! synchronization point ending the mapping. Maps are *additive*: a
//! partition may successively append mappings to several other partitions —
//! the mechanism multi-instrumentation is built on (Figure 10).

use crate::virt::Vmpi;
use crate::{Result, VmpiError};
use opmr_runtime::{Context, Src, TagSel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Assignment policy applied by the pivot (Figure 8).
#[derive(Clone)]
pub enum MapPolicy {
    /// Slave `i` → master `i % master_size`.
    RoundRobin,
    /// Slave `i` → uniformly random master rank (seeded, reproducible).
    Random { seed: u64 },
    /// Slave `i` → master `min(i, master_size - 1)` (identity while sizes
    /// allow, clamping beyond — the "fixed" topology of Figure 8c).
    Fixed,
    /// User-defined: takes the slave index, returns a master-local rank.
    Custom(Arc<dyn Fn(usize) -> usize + Send + Sync>),
}

impl std::fmt::Debug for MapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapPolicy::RoundRobin => write!(f, "RoundRobin"),
            MapPolicy::Random { seed } => write!(f, "Random{{seed:{seed}}}"),
            MapPolicy::Fixed => write!(f, "Fixed"),
            MapPolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl MapPolicy {
    /// Computes the master-local rank for slave index `i`.
    ///
    /// A random policy whose RNG is missing (an internal inconsistency,
    /// not a caller mistake) degrades to round-robin and counts the event
    /// in `vmpi_map_rng_fallbacks_total` instead of aborting the pivot. A
    /// custom policy returning an out-of-range rank is the caller's bug
    /// and surfaces as [`VmpiError::InvalidAssignment`].
    fn assign(&self, i: usize, master_size: usize, rng: &mut Option<StdRng>) -> Result<usize> {
        match self {
            MapPolicy::RoundRobin => Ok(i % master_size),
            MapPolicy::Random { .. } => match rng.as_mut() {
                Some(rng) => Ok(rng.gen_range(0..master_size)),
                None => {
                    obs::m().rng_fallbacks.inc();
                    Ok(i % master_size)
                }
            },
            MapPolicy::Fixed => Ok(i.min(master_size.saturating_sub(1))),
            MapPolicy::Custom(f) => {
                let m = f(i);
                if m >= master_size {
                    return Err(VmpiError::InvalidAssignment {
                        index: m,
                        master_size,
                    });
                }
                Ok(m)
            }
        }
    }
}

// Map-plane error accounting: every typed failure on the pivot protocol is
// also counted process-wide so a live session surfaces hostile or corrupt
// peers in its metrics snapshot.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct MapMetrics {
        pub rng_fallbacks: Arc<Counter>,
        pub malformed_replies: Arc<Counter>,
        pub protocol_violations: Arc<Counter>,
    }

    pub(super) fn m() -> &'static MapMetrics {
        static M: OnceLock<MapMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            MapMetrics {
                rng_fallbacks: r.counter("vmpi_map_rng_fallbacks_total"),
                malformed_replies: r.counter("vmpi_map_malformed_pivot_total"),
                protocol_violations: r.counter("vmpi_map_protocol_violations_total"),
            }
        })
    }
}

/// A process's accumulated peer set (`VMPI_Map`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Map {
    peers: Vec<usize>,
}

impl Map {
    /// An empty map (`VMPI_Map_clear`).
    pub fn new() -> Map {
        Map::default()
    }

    /// Clears all accumulated entries.
    pub fn clear(&mut self) {
        self.peers.clear();
    }

    /// World ranks of the mapped remote processes, in mapping order.
    pub fn peers(&self) -> &[usize] {
        &self.peers
    }

    /// Number of mapped peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no peer has been mapped yet.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Appends a peer (used by the protocol and by tests building fixtures).
    pub fn push(&mut self, world_rank: usize) {
        self.peers.push(world_rank);
    }
}

/// Tag space reserved for mapping traffic in the [`Context::Stream`] plane.
fn map_tag(master_pid: usize, slave_pid: usize) -> i32 {
    0x0400_0000 | ((master_pid as i32) << 12) | slave_pid as i32
}

/// Maps the caller's partition to `target_pid`, appending the resulting peer
/// set to `map` (`VMPI_Map_partitions`).
///
/// Must be called collectively by every rank of *both* partitions with the
/// same policy. Returns after the pivot has distributed all associations.
pub fn map_partitions(
    vmpi: &Vmpi,
    target_pid: usize,
    policy: MapPolicy,
    map: &mut Map,
) -> Result<()> {
    let my_pid = vmpi.partition_id();
    if target_pid == my_pid {
        return Err(VmpiError::SelfMapping);
    }
    let target = vmpi
        .partition(target_pid)
        .ok_or_else(|| VmpiError::UnknownPartition(format!("#{target_pid}")))?
        .clone();
    let mine = vmpi
        .partition(my_pid)
        .ok_or(VmpiError::PartitionInconsistent {
            world_rank: vmpi.mpi().world_rank(),
            partition: my_pid,
        })?
        .clone();

    // Smaller partition is the master; ties break toward the lower id so
    // both sides agree without communicating.
    let master_pid = if (mine.size, my_pid) < (target.size, target_pid) {
        my_pid
    } else {
        target_pid
    };
    map_partitions_directed(vmpi, target_pid, master_pid, policy, map)
}

/// Like [`map_partitions`], but the caller fixes which of the two
/// partitions acts as the master (the side whose ranks accumulate peer
/// lists and whose root is the pivot), overriding the size-based choice.
///
/// Reduction overlays need this: the tree partition must master the
/// mapping so its frontier nodes adopt the instrumented leaves, even when
/// an application partition is smaller than the tree partition. Must be
/// called collectively by every rank of both partitions with the same
/// `master_pid` and policy.
pub fn map_partitions_directed(
    vmpi: &Vmpi,
    target_pid: usize,
    master_pid: usize,
    policy: MapPolicy,
    map: &mut Map,
) -> Result<()> {
    let my_pid = vmpi.partition_id();
    if target_pid == my_pid {
        return Err(VmpiError::SelfMapping);
    }
    if master_pid != my_pid && master_pid != target_pid {
        return Err(VmpiError::UnknownPartition(format!(
            "master #{master_pid} is not part of the mapping"
        )));
    }
    let target = vmpi
        .partition(target_pid)
        .ok_or_else(|| VmpiError::UnknownPartition(format!("#{target_pid}")))?
        .clone();
    let mine = vmpi
        .partition(my_pid)
        .ok_or(VmpiError::PartitionInconsistent {
            world_rank: vmpi.mpi().world_rank(),
            partition: my_pid,
        })?
        .clone();

    let i_am_master = master_pid == my_pid;
    let (master, slave) = if i_am_master {
        (mine.clone(), target.clone())
    } else {
        (target.clone(), mine.clone())
    };
    let tag = map_tag(master.id, slave.id);
    let universe = vmpi.comm_universe();
    let mpi = vmpi.mpi();
    let pivot = master.root_world_rank();

    if !i_am_master {
        // Slave side: publish our global rank to the pivot, receive our
        // assigned master peer back.
        mpi.send_ctx(
            Context::Stream,
            &universe,
            pivot,
            tag,
            opmr_runtime::pod::bytes_of(&(mpi.world_rank() as u64)),
        )?;
        let (_st, data) = mpi.recv_ctx(
            Context::Stream,
            &universe,
            Src::Rank(pivot),
            TagSel::Tag(tag),
        )?;
        let peer = opmr_runtime::pod::from_bytes::<u64>(&data).ok_or_else(|| {
            obs::m().malformed_replies.inc();
            VmpiError::MalformedPivotReply {
                what: "pivot reply of exactly one u64",
                len: data.len(),
            }
        })?;
        let peer = peer as usize;
        if !master.world_ranks().contains(&peer) {
            obs::m().protocol_violations.inc();
            return Err(VmpiError::ProtocolViolation {
                expected: "assigned master world rank inside the master partition",
                got: format!("rank {peer}"),
            });
        }
        map.push(peer);
        return Ok(());
    }

    // Master side.
    if mpi.world_rank() == pivot {
        let mut rng = match &policy {
            MapPolicy::Random { seed } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        // Per-master-local peer lists; the pivot is master-local 0.
        let mut assigned: Vec<Vec<u64>> = vec![Vec::new(); master.size];
        for i in 0..slave.size {
            let (_st, data) =
                mpi.recv_ctx(Context::Stream, &universe, Src::Any, TagSel::Tag(tag))?;
            let slave_world = opmr_runtime::pod::from_bytes::<u64>(&data).ok_or_else(|| {
                obs::m().malformed_replies.inc();
                VmpiError::MalformedPivotReply {
                    what: "slave registration of exactly one u64",
                    len: data.len(),
                }
            })?;
            if !slave.world_ranks().contains(&(slave_world as usize)) {
                obs::m().protocol_violations.inc();
                return Err(VmpiError::ProtocolViolation {
                    expected: "slave world rank inside the slave partition",
                    got: format!("rank {slave_world}"),
                });
            }
            let master_local = policy.assign(i, master.size, &mut rng)?;
            let master_world = master.first_world_rank + master_local;
            assigned[master_local].push(slave_world);
            // Reply to the slave with its assigned master rank.
            mpi.send_ctx(
                Context::Stream,
                &universe,
                slave_world as usize,
                tag,
                opmr_runtime::pod::bytes_of(&(master_world as u64)),
            )?;
        }
        // Distribute peer lists to the master partition (the "end of
        // mapping" broadcast of the pivot), self included for uniformity.
        for (master_local, list) in assigned.iter().enumerate() {
            let dst = master.first_world_rank + master_local;
            mpi.send_ctx(
                Context::Stream,
                &universe,
                dst,
                tag,
                opmr_runtime::pod::bytes_of_slice(list),
            )?;
        }
    }
    // Every master rank (pivot included) receives its peer list.
    let (_st, data) = mpi.recv_ctx(
        Context::Stream,
        &universe,
        Src::Rank(pivot),
        TagSel::Tag(tag),
    )?;
    let peers = opmr_runtime::pod::vec_from_bytes::<u64>(&data).ok_or_else(|| {
        obs::m().malformed_replies.inc();
        VmpiError::MalformedPivotReply {
            what: "peer list of whole u64s",
            len: data.len(),
        }
    })?;
    for p in peers {
        map.push(p as usize);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_runtime::Launcher;
    use std::sync::{Arc as StdArc, Mutex};

    type RankMaps = Vec<(usize, Map)>;

    /// Runs a writer/analyzer pair and returns (writer maps, analyzer maps)
    /// keyed by world rank.
    fn run_mapping(writers: usize, analyzers: usize, policy: MapPolicy) -> (RankMaps, RankMaps) {
        let w_maps = StdArc::new(Mutex::new(Vec::new()));
        let a_maps = StdArc::new(Mutex::new(Vec::new()));
        let (w2, a2) = (StdArc::clone(&w_maps), StdArc::clone(&a_maps));
        let (p1, p2) = (policy.clone(), policy);
        Launcher::new()
            .partition("writers", writers, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let target = v.partition_by_name("Analyzer").unwrap().id;
                let mut map = Map::new();
                map_partitions(&v, target, p1.clone(), &mut map).unwrap();
                w2.lock().unwrap().push((v.mpi().world_rank(), map));
            })
            .partition("Analyzer", analyzers, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let mut map = Map::new();
                map_partitions(&v, 0, p2.clone(), &mut map).unwrap();
                a2.lock().unwrap().push((v.mpi().world_rank(), map));
            })
            .run()
            .unwrap();
        let mut w = w_maps.lock().unwrap().clone();
        let mut a = a_maps.lock().unwrap().clone();
        w.sort_by_key(|e| e.0);
        a.sort_by_key(|e| e.0);
        (w, a)
    }

    /// Mapping validity (the paper's requirement): each process is
    /// associated with at least one process of the remote partition, and
    /// the two sides' views are mutually consistent.
    fn assert_consistent(writers: &[(usize, Map)], analyzers: &[(usize, Map)]) {
        for (wr, map) in writers {
            assert_eq!(map.len(), 1, "each slave gets exactly one master peer");
            let master = map.peers()[0];
            let (_, amap) = analyzers
                .iter()
                .find(|(ar, _)| *ar == master)
                .expect("peer exists in analyzer partition");
            assert!(
                amap.peers().contains(wr),
                "analyzer {master} must list writer {wr}"
            );
        }
        let total: usize = analyzers.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, writers.len(), "every writer appears exactly once");
    }

    #[test]
    fn round_robin_balances_evenly() {
        let (w, a) = run_mapping(8, 4, MapPolicy::RoundRobin);
        assert_consistent(&w, &a);
        for (_, m) in &a {
            assert_eq!(m.len(), 2, "8 writers over 4 analyzers = 2 each");
        }
    }

    #[test]
    fn round_robin_uneven_sizes() {
        let (w, a) = run_mapping(7, 3, MapPolicy::RoundRobin);
        assert_consistent(&w, &a);
        let mut lens: Vec<usize> = a.iter().map(|(_, m)| m.len()).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 2, 3]);
    }

    #[test]
    fn fixed_policy_clamps() {
        let (w, a) = run_mapping(5, 3, MapPolicy::Fixed);
        assert_consistent(&w, &a);
        // Masters 0 and 1 get one writer, master 2 absorbs the overflow.
        let last = a.last().unwrap();
        assert_eq!(last.1.len(), 3);
    }

    #[test]
    fn random_policy_is_valid_and_seeded() {
        let (w1, a1) = run_mapping(12, 4, MapPolicy::Random { seed: 42 });
        assert_consistent(&w1, &a1);
        let (w2, _a2) = run_mapping(12, 4, MapPolicy::Random { seed: 42 });
        // Same seed → same pairing. Slave arrival order at the pivot can
        // vary between runs, so compare the multiset of assignments.
        let mut p1: Vec<_> = w1.iter().map(|(r, m)| (*r, m.peers()[0])).collect();
        let mut p2: Vec<_> = w2.iter().map(|(r, m)| (*r, m.peers()[0])).collect();
        p1.sort_unstable();
        p2.sort_unstable();
        let d1: Vec<usize> = p1.iter().map(|x| x.1).collect();
        let d2: Vec<usize> = p2.iter().map(|x| x.1).collect();
        let mut s1 = d1.clone();
        let mut s2 = d2.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        assert_eq!(s1, s2, "seeded random assignment multiset is stable");
    }

    #[test]
    fn custom_policy_reverses() {
        let (w, a) = run_mapping(4, 4, MapPolicy::Custom(Arc::new(|i| 3 - i)));
        assert_consistent(&w, &a);
    }

    #[test]
    fn smaller_partition_is_master_even_when_caller_is_larger() {
        // Analyzer (2) masters the writers (6) regardless of which side's
        // id is lower.
        let (w, a) = run_mapping(6, 2, MapPolicy::RoundRobin);
        assert_consistent(&w, &a);
        for (_, m) in &a {
            assert_eq!(m.len(), 3);
        }
        for (_, m) in &w {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn additive_multi_partition_mapping() {
        // Figure 10: the analyzer maps N application partitions into one
        // additive map.
        let a_map = StdArc::new(Mutex::new(Map::new()));
        let a2 = StdArc::clone(&a_map);
        Launcher::new()
            .partition("app0", 3, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let an = v.partition_by_name("Analyzer").unwrap().id;
                let mut map = Map::new();
                map_partitions(&v, an, MapPolicy::RoundRobin, &mut map).unwrap();
                assert_eq!(map.len(), 1);
            })
            .partition("app1", 4, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let an = v.partition_by_name("Analyzer").unwrap().id;
                let mut map = Map::new();
                map_partitions(&v, an, MapPolicy::RoundRobin, &mut map).unwrap();
                assert_eq!(map.len(), 1);
            })
            .partition("Analyzer", 2, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let mut map = Map::new();
                for pid in 0..v.partition_count() {
                    if pid != v.partition_id() {
                        map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map).unwrap();
                    }
                }
                if v.rank() == 0 {
                    *a2.lock().unwrap() = map;
                }
            })
            .run()
            .unwrap();
        // Analyzer rank 0 sees writers from both apps: ceil shares of 3 + 4.
        let m = a_map.lock().unwrap();
        assert_eq!(m.len(), 2 + 2);
    }

    #[test]
    fn directed_mapping_masters_the_larger_partition() {
        // The size rule would master the 2-rank writers; the directed call
        // masters the 5-rank "tree" partition instead, so its ranks get
        // peer lists even though they outnumber the slaves.
        let t_maps = StdArc::new(Mutex::new(Vec::new()));
        let t2 = StdArc::clone(&t_maps);
        Launcher::new()
            .partition("w", 2, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let tree = v.partition_by_name("tree").unwrap().id;
                let mut map = Map::new();
                map_partitions_directed(&v, tree, tree, MapPolicy::RoundRobin, &mut map).unwrap();
                assert_eq!(map.len(), 1, "each writer gets one tree peer");
            })
            .partition("tree", 5, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let mut map = Map::new();
                map_partitions_directed(&v, 0, v.partition_id(), MapPolicy::RoundRobin, &mut map)
                    .unwrap();
                t2.lock().unwrap().push((v.rank(), map));
            })
            .run()
            .unwrap();
        let mut t = t_maps.lock().unwrap().clone();
        t.sort_by_key(|e| e.0);
        // Round-robin over arrival order: exactly ranks 0 and 1 adopt one
        // writer each; ranks 2..4 stay empty.
        let lens: Vec<usize> = t.iter().map(|(_, m)| m.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 2);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[1], 1);
        assert_eq!(&lens[2..], &[0, 0, 0]);
    }

    #[test]
    fn directed_mapping_rejects_foreign_master() {
        Launcher::new()
            .partition("a", 1, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let mut map = Map::new();
                assert!(matches!(
                    map_partitions_directed(&v, 1, 7, MapPolicy::RoundRobin, &mut map),
                    Err(VmpiError::UnknownPartition(_))
                ));
            })
            .partition("b", 1, |_mpi| {})
            .run()
            .unwrap();
    }

    #[test]
    fn random_policy_without_rng_falls_back_to_round_robin() {
        // An unseeded RNG is an internal inconsistency: the pivot keeps
        // assigning (round-robin) and counts the fallback instead of
        // panicking.
        let before = opmr_obs::registry()
            .counter("vmpi_map_rng_fallbacks_total")
            .get();
        let mut rng = None;
        for i in 0..6 {
            assert_eq!(
                MapPolicy::Random { seed: 7 }
                    .assign(i, 3, &mut rng)
                    .unwrap(),
                i % 3
            );
        }
        let after = opmr_obs::registry()
            .counter("vmpi_map_rng_fallbacks_total")
            .get();
        assert_eq!(after - before, 6);
    }

    #[test]
    fn custom_policy_out_of_range_is_typed() {
        let mut rng = None;
        let p = MapPolicy::Custom(Arc::new(|_| 99));
        assert!(matches!(
            p.assign(0, 4, &mut rng),
            Err(VmpiError::InvalidAssignment {
                index: 99,
                master_size: 4
            })
        ));
    }

    #[test]
    fn self_mapping_rejected() {
        Launcher::new()
            .partition("solo", 2, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let mut map = Map::new();
                assert_eq!(
                    map_partitions(&v, v.partition_id(), MapPolicy::RoundRobin, &mut map),
                    Err(VmpiError::SelfMapping)
                );
            })
            .partition("other", 1, |_mpi| {})
            .run()
            .unwrap();
    }
}
