//! # opmr-vmpi — MPI virtualization, partition mapping and data streams
//!
//! This crate reproduces the paper's online-coupling toolkit (Section III-A):
//!
//! * [`virt::Vmpi`] — **virtualization**: each program transparently runs in
//!   its own partition communicator (its virtual `MPI_COMM_WORLD`) while the
//!   real world communicator stays reachable as `MPI_COMM_UNIVERSE`.
//!   Partition descriptions can be queried by name from any rank.
//! * [`map::Map`] — **VMPI Map**: process-to-process mapping between two
//!   partitions via the pivot protocol of Figure 7 (slave ranks send their
//!   global rank to the master root, which assigns matches by policy and
//!   returns associations both ways). Round-robin, random, fixed and
//!   user-defined policies; maps are additive across several partitions.
//! * [`stream::{WriteStream, ReadStream}`] — **VMPI Streams**: persistent
//!   asynchronous block channels with UNIX-pipe-like semantics, `NA`
//!   receive buffers per incoming stream, `NA` shared output buffers,
//!   non-blocking reads (`EAGAIN`), per-endpoint load-balancing policies and
//!   a close protocol under which a read returns end-of-stream only after
//!   every writer has closed.
//!
//! Together these three components implement the coupling of Figures 10-12:
//! N instrumented partitions stream event blocks into one analyzer
//! partition without any file-system involvement.

pub mod map;
pub mod stream;
pub mod virt;

pub use map::{Map, MapPolicy};
pub use opmr_events::{Compression, PackEncoding};
pub use stream::{Balance, Block, DuplexStream, ReadMode, ReadStream, StreamConfig, WriteStream};
pub use virt::Vmpi;

/// Errors produced by the coupling layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmpiError {
    /// Underlying runtime failure.
    Runtime(opmr_runtime::RtError),
    /// Referenced partition does not exist.
    UnknownPartition(String),
    /// A mapping was requested against the caller's own partition.
    SelfMapping,
    /// Stream operated on after close.
    StreamClosed,
    /// Non-blocking read found no data (the paper's `EAGAIN`).
    Again,
    /// A blocking stream operation exceeded its deadline or retry budget
    /// (see `StreamConfig::read_timeout` / `StreamConfig::max_retries`).
    Timeout,
    /// A writer exited mid-stream without closing; its remaining data is
    /// unrecoverable but the stream stays readable for surviving writers.
    PeerLost { rank: usize },
    /// The partition table is inconsistent: a rank is not a member of the
    /// partition it claims to belong to. Rejected at [`Vmpi`] construction.
    PartitionInconsistent { world_rank: usize, partition: usize },
    /// The map pivot protocol received a payload it cannot decode
    /// (truncated, oversized or otherwise malformed).
    MalformedPivotReply { what: &'static str, len: usize },
    /// A mapping policy produced a master index outside the master
    /// partition.
    InvalidAssignment { index: usize, master_size: usize },
    /// A stream or map was configured in a way that can never work
    /// (e.g. a write stream with zero endpoints).
    InvalidConfig(&'static str),
    /// A peer violated the stream protocol (bad framing, unexpected
    /// payload shape, ...).
    ProtocolViolation { expected: &'static str, got: String },
}

impl From<opmr_runtime::RtError> for VmpiError {
    fn from(e: opmr_runtime::RtError) -> Self {
        VmpiError::Runtime(e)
    }
}

impl std::fmt::Display for VmpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmpiError::Runtime(e) => write!(f, "runtime error: {e}"),
            VmpiError::UnknownPartition(name) => write!(f, "unknown partition {name:?}"),
            VmpiError::SelfMapping => write!(f, "cannot map a partition onto itself"),
            VmpiError::StreamClosed => write!(f, "stream already closed"),
            VmpiError::Again => write!(f, "no data available (EAGAIN)"),
            VmpiError::Timeout => write!(f, "stream operation timed out"),
            VmpiError::PeerLost { rank } => {
                write!(f, "stream writer (world rank {rank}) died without closing")
            }
            VmpiError::PartitionInconsistent {
                world_rank,
                partition,
            } => {
                write!(
                    f,
                    "inconsistent partition table: world rank {world_rank} \
                     is not a member of its own partition {partition}"
                )
            }
            VmpiError::MalformedPivotReply { what, len } => {
                write!(
                    f,
                    "malformed pivot message: expected {what}, got {len} bytes"
                )
            }
            VmpiError::InvalidAssignment { index, master_size } => {
                write!(
                    f,
                    "mapping policy produced master index {index} outside \
                     master partition of size {master_size}"
                )
            }
            VmpiError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            VmpiError::ProtocolViolation { expected, got } => {
                write!(
                    f,
                    "stream protocol violation: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for VmpiError {}

/// Result alias for the coupling layer.
pub type Result<T> = std::result::Result<T, VmpiError>;
