//! MPI virtualization.
//!
//! The paper replaces every reference to `MPI_COMM_WORLD` inside an
//! instrumented program by a partition sub-communicator, by intercepting all
//! MPI calls through the PMPI interface. Here the interception point is the
//! [`Vmpi`] handle itself: programs written against it see their partition
//! as the world ([`Vmpi::comm_world`]) while the real world remains
//! available as [`Vmpi::comm_universe`] for inter-application traffic.

use crate::{Result, VmpiError};
use opmr_runtime::{Comm, Mpi, PartitionInfo};

/// A virtualized per-rank MPI handle.
#[derive(Clone)]
pub struct Vmpi {
    mpi: Mpi,
    /// The partition sub-communicator standing in for `MPI_COMM_WORLD`.
    world: Comm,
    /// The real world communicator (`MPI_COMM_UNIVERSE`).
    universe: Comm,
}

impl Vmpi {
    /// Virtualizes a raw runtime handle: derives the partition communicator
    /// deterministically from the partition table (no communication needed).
    ///
    /// An inconsistent partition table — the caller's world rank missing
    /// from its own partition — is rejected here with
    /// [`VmpiError::PartitionInconsistent`] rather than surfacing as a
    /// failure at first lookup.
    pub fn new(mpi: Mpi) -> Result<Self> {
        let part = mpi.my_partition().clone();
        let inconsistent = VmpiError::PartitionInconsistent {
            world_rank: mpi.world_rank(),
            partition: part.id,
        };
        if !part.world_ranks().contains(&mpi.world_rank()) {
            return Err(inconsistent);
        }
        let members: Vec<usize> = part.world_ranks().collect();
        let world = mpi
            .comm_from_world_ranks(members, 0x7A91_0000 + part.id as u64)
            .map_err(|_| inconsistent)?;
        let universe = mpi.world();
        Ok(Vmpi {
            mpi,
            world,
            universe,
        })
    }

    /// The virtual `MPI_COMM_WORLD`: this program's partition.
    pub fn comm_world(&self) -> Comm {
        self.world.clone()
    }

    /// The real world communicator (`MPI_COMM_UNIVERSE`).
    pub fn comm_universe(&self) -> Comm {
        self.universe.clone()
    }

    /// Rank within the virtual world.
    pub fn rank(&self) -> usize {
        self.world.local_rank()
    }

    /// Size of the virtual world.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// Underlying runtime handle (the "PMPI" escape hatch).
    pub fn mpi(&self) -> &Mpi {
        &self.mpi
    }

    /// Number of partitions in the job (`VMPI_Get_partition_count`).
    pub fn partition_count(&self) -> usize {
        self.mpi.partitions().len()
    }

    /// This rank's partition id (`VMPI_Get_partition_id`).
    pub fn partition_id(&self) -> usize {
        self.mpi.my_partition().id
    }

    /// Partition description by id.
    pub fn partition(&self, id: usize) -> Option<&PartitionInfo> {
        self.mpi.partitions().get(id)
    }

    /// This rank's partition description.
    pub fn my_partition(&self) -> &PartitionInfo {
        self.mpi.my_partition()
    }

    /// Partition description by name (`VMPI_Get_desc_by_name`).
    pub fn partition_by_name(&self, name: &str) -> Option<&PartitionInfo> {
        self.mpi.universe().partition_by_name(name)
    }

    /// Partition description by command line (the paper's alternative
    /// grouping key: "grouped in partitions either by names or command
    /// lines").
    pub fn partition_by_cmdline(&self, cmdline: &str) -> Option<&PartitionInfo> {
        self.mpi.partitions().iter().find(|p| p.cmdline == cmdline)
    }

    /// All partition descriptions.
    pub fn partitions(&self) -> &[PartitionInfo] {
        self.mpi.partitions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_runtime::{Launcher, Src, TagSel};

    #[test]
    fn virtual_world_is_the_partition() {
        Launcher::new()
            .partition("a", 3, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                assert_eq!(v.size(), 3);
                assert_eq!(v.rank(), v.mpi().world_rank());
                assert_eq!(v.comm_universe().size(), 5);
                assert_ne!(v.comm_world().id(), v.comm_universe().id());
            })
            .partition("b", 2, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                assert_eq!(v.size(), 2);
                assert_eq!(v.rank(), v.mpi().world_rank() - 3);
                assert_eq!(v.partition_id(), 1);
                assert_eq!(v.partition_count(), 2);
                assert_eq!(v.partition_by_name("a").unwrap().size, 3);
                assert!(v.partition_by_name("zz").is_none());
            })
            .run()
            .unwrap();
    }

    #[test]
    fn partition_worlds_are_isolated() {
        // Same local ranks and tags in two partitions: traffic must not mix.
        Launcher::new()
            .partition("left", 2, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let w = v.comm_world();
                if v.rank() == 0 {
                    v.mpi().send_t(&w, 1, 0, &[111u8]).unwrap();
                } else {
                    let (_s, got) = v.mpi().recv_t::<u8>(&w, Src::Any, TagSel::Any).unwrap();
                    assert_eq!(got, vec![111]);
                }
            })
            .partition("right", 2, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let w = v.comm_world();
                if v.rank() == 0 {
                    v.mpi().send_t(&w, 1, 0, &[222u8]).unwrap();
                } else {
                    let (_s, got) = v.mpi().recv_t::<u8>(&w, Src::Any, TagSel::Any).unwrap();
                    assert_eq!(got, vec![222]);
                }
            })
            .run()
            .unwrap();
    }

    #[test]
    fn same_partition_ranks_agree_on_world_comm_id() {
        use std::sync::{Arc, Mutex};
        let ids = Arc::new(Mutex::new(Vec::new()));
        let ids2 = Arc::clone(&ids);
        Launcher::new()
            .partition("p", 4, move |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                ids2.lock().unwrap().push(v.comm_world().id());
            })
            .run()
            .unwrap();
        let ids = ids.lock().unwrap();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&i| i == ids[0]));
    }

    #[test]
    fn collectives_work_inside_virtual_world() {
        Launcher::new()
            .partition("compute", 4, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let w = v.comm_world();
                let sum = v
                    .mpi()
                    .allreduce_t(&w, &[v.rank() as u64], opmr_runtime::collectives::ops::sum)
                    .unwrap();
                assert_eq!(sum, vec![6]);
            })
            .partition("other", 3, |mpi| {
                let v = Vmpi::new(mpi).unwrap();
                let w = v.comm_world();
                let sum = v
                    .mpi()
                    .allreduce_t(&w, &[v.rank() as u64], opmr_runtime::collectives::ops::sum)
                    .unwrap();
                assert_eq!(sum, vec![3]);
            })
            .run()
            .unwrap();
    }
}
