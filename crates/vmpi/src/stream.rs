//! VMPI Streams: persistent asynchronous block channels (Figure 9).
//!
//! Semantics follow the paper:
//!
//! * a stream moves fixed-size **blocks** (≈1 MB for instrumentation use);
//! * the **write endpoint** owns `NA` shared output buffers: writing is
//!   non-blocking until all asynchronous buffers are full, which preserves
//!   an adaptation window between producer and consumer and then exerts real
//!   back-pressure;
//! * the **read endpoint** keeps `NA` pre-posted receive buffers *per
//!   incoming stream*, so any arriving block finds a buffer waiting (no
//!   unexpected messages on the hot path);
//! * streams created from a [`crate::Map`] connect a process to all its
//!   mapped peers; block distribution across multiple endpoints follows a
//!   load-balancing policy (**none / random / round-robin**), independently
//!   configurable at each end;
//! * non-blocking reads return [`VmpiError::Again`] (the paper's `EAGAIN`);
//! * writers close with a FIN frame; a read returns `None` (EOF) only
//!   after **all** remote writers have closed.
//!
//! # Transport-fault recovery
//!
//! Every message carries a small frame header `[seq: u64][flags: u8]` with
//! a per-(writer, endpoint) sequence number. The reader reassembles frames
//! in sequence order: duplicates (replays) are discarded, out-of-order
//! frames are stashed until the gap fills, and the FIN frame takes the
//! sequence slot after the last data frame so EOF can never overtake data.
//! Writers resend blocks the transport reports dropped
//! ([`opmr_runtime::RtError::Dropped`], injected by a
//! [`opmr_runtime::FaultPlan`]) with bounded linear backoff, failing with
//! [`VmpiError::Timeout`] when the retry budget is exhausted. A reader
//! whose writer exits without closing observes the rank-liveness flag and
//! surfaces [`VmpiError::PeerLost`] instead of hanging; the remaining
//! writers stay readable.

use crate::map::Map;
use crate::virt::Vmpi;
use crate::{Result, VmpiError};
use bytes::{Bytes, BytesMut};
use opmr_events::{compress, Compression, Lz4Encoder, PackEncoding};
use opmr_runtime::{Comm, Context, Mpi, Request, RtError, Src, TagSel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Load-balancing policy across a stream's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Always use the first endpoint.
    None,
    /// Uniform random endpoint per block (seeded, reproducible).
    Random { seed: u64 },
    /// Rotate endpoints per block.
    RoundRobin,
}

/// Stream configuration (`VMPI_Stream_init` arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Block size in bytes (the paper uses ≈1 MB for instrumentation).
    pub block_size: usize,
    /// Number of asynchronous buffers per endpoint (`NA`, 3 in the paper).
    pub n_async: usize,
    /// Endpoint load-balancing policy.
    pub balance: Balance,
    /// Blocking reads fail with [`VmpiError::Timeout`] after this long
    /// without producing a block (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Resend attempts when the transport drops a block before giving up
    /// with [`VmpiError::Timeout`].
    pub max_retries: u32,
    /// Base of the linear backoff between resend attempts (attempt `k`
    /// sleeps `k * retry_backoff`).
    pub retry_backoff: Duration,
    /// Per-block compression applied before framing. Each data frame
    /// carries its own compression flag, so readers decode compressed and
    /// plain blocks alike regardless of their local setting — the config
    /// only decides what this end *sends* (legacy peers therefore keep
    /// working: `None` emits bitwise-identical frames to before).
    pub compression: Compression,
    /// Event-pack layout recorders feeding this stream use. Carried here —
    /// not a stream concern per se — so every layer that opens a stream
    /// (instrumented apps, TBON nodes, the serve plane) agrees on the
    /// encoding through the one config that already reaches all of them.
    /// Packs are self-describing (the header carries the version), so any
    /// reader decodes either layout regardless of this setting.
    pub pack_encoding: PackEncoding,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            block_size: 1 << 20,
            n_async: 3,
            balance: Balance::RoundRobin,
            read_timeout: None,
            max_retries: 8,
            retry_backoff: Duration::from_micros(200),
            compression: Compression::None,
            pack_encoding: PackEncoding::Fixed,
        }
    }
}

impl StreamConfig {
    /// Convenience constructor.
    pub fn new(block_size: usize, n_async: usize, balance: Balance) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(n_async > 0, "need at least one async buffer");
        StreamConfig {
            block_size,
            n_async,
            balance,
            ..StreamConfig::default()
        }
    }

    /// Sets a deadline for blocking reads.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Overrides the resend budget and backoff base.
    pub fn with_retries(mut self, max_retries: u32, backoff: Duration) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = backoff;
        self
    }

    /// Selects the per-block compression codec for this end's writes.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Selects the event-pack layout recorders feeding this stream use.
    pub fn with_pack_encoding(mut self, encoding: PackEncoding) -> Self {
        self.pack_encoding = encoding;
        self
    }
}

/// Read behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Block until a block arrives or every writer closed.
    Blocking,
    /// Return [`VmpiError::Again`] when nothing is ready.
    NonBlocking,
}

/// One received block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// World rank of the writer that produced the block.
    pub source: usize,
    /// Block payload (full or trailing partial block).
    pub data: Bytes,
}

fn stream_tag(stream_id: u16) -> i32 {
    0x0500_0000 | stream_id as i32
}

/// The tag range carrying stream frames — hand this to
/// [`opmr_runtime::FaultPlan::with_only_tags`] to aim fault injection at
/// stream traffic while leaving handshake protocols alone.
pub fn data_tag_range() -> std::ops::RangeInclusive<i32> {
    stream_tag(0)..=stream_tag(u16::MAX)
}

// ---------------------------------------------------------------------
// Self-monitoring: process-wide stream metrics. Handles are resolved once
// through the registry mutex and cached here, so steady-state accounting
// is a single relaxed fetch_add per site.
// ---------------------------------------------------------------------

mod obs {
    use opmr_obs::{registry, Counter, Gauge, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct StreamMetrics {
        pub write_bytes: Arc<Counter>,
        pub blocks_sent: Arc<Counter>,
        pub retransmits: Arc<Counter>,
        pub backpressure_waits: Arc<Counter>,
        pub closes: Arc<Counter>,
        pub fins_sent: Arc<Counter>,
        pub aborts: Arc<Counter>,
        pub reads: Arc<Counter>,
        pub eagain: Arc<Counter>,
        pub read_bytes: Arc<Counter>,
        pub blocks_read: Arc<Counter>,
        pub dups_dropped: Arc<Counter>,
        pub sources_eof: Arc<Counter>,
        pub peers_lost: Arc<Counter>,
        pub rng_fallbacks: Arc<Counter>,
        pub protocol_violations: Arc<Counter>,
        pub bytes_logical: Arc<Counter>,
        pub bytes_on_wire: Arc<Counter>,
        pub blocks_compressed: Arc<Counter>,
        pub compress_skipped: Arc<Counter>,
        pub decompress_failures: Arc<Counter>,
        pub open_writers: Arc<Gauge>,
        pub blocks_in_flight: Arc<Gauge>,
        pub occupancy: Arc<Histogram>,
        pub compress_ns: Arc<Histogram>,
        pub decompress_ns: Arc<Histogram>,
    }

    pub(super) fn m() -> &'static StreamMetrics {
        static M: OnceLock<StreamMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            StreamMetrics {
                write_bytes: r.counter("vmpi_stream_write_bytes_total"),
                blocks_sent: r.counter("vmpi_stream_blocks_sent_total"),
                retransmits: r.counter("vmpi_stream_retransmits_total"),
                backpressure_waits: r.counter("vmpi_stream_backpressure_waits_total"),
                closes: r.counter("vmpi_stream_closes_total"),
                fins_sent: r.counter("vmpi_stream_fins_sent_total"),
                aborts: r.counter("vmpi_stream_aborts_total"),
                reads: r.counter("vmpi_stream_reads_total"),
                eagain: r.counter("vmpi_stream_eagain_total"),
                read_bytes: r.counter("vmpi_stream_read_bytes_total"),
                blocks_read: r.counter("vmpi_stream_blocks_read_total"),
                dups_dropped: r.counter("vmpi_stream_dups_dropped_total"),
                sources_eof: r.counter("vmpi_stream_sources_eof_total"),
                peers_lost: r.counter("vmpi_stream_peers_lost_total"),
                rng_fallbacks: r.counter("vmpi_stream_rng_fallbacks_total"),
                protocol_violations: r.counter("vmpi_stream_protocol_violations_total"),
                bytes_logical: r.counter("vmpi_stream_bytes_logical_total"),
                bytes_on_wire: r.counter("vmpi_stream_bytes_on_wire_total"),
                blocks_compressed: r.counter("vmpi_stream_blocks_compressed_total"),
                compress_skipped: r.counter("vmpi_stream_compress_skipped_total"),
                decompress_failures: r.counter("vmpi_stream_decompress_failures_total"),
                open_writers: r.gauge("vmpi_stream_open_writers"),
                blocks_in_flight: r.gauge("vmpi_stream_blocks_in_flight"),
                occupancy: r.histogram("vmpi_stream_buffer_occupancy"),
                compress_ns: r.histogram("vmpi_stream_compress_ns"),
                decompress_ns: r.histogram("vmpi_stream_decompress_ns"),
            }
        })
    }
}

// ---------------------------------------------------------------------
// Frame header: [seq: u64 LE][flags: u8], then the block payload.
// ---------------------------------------------------------------------

const FRAME_HDR: usize = 9;
const FLAG_DATA: u8 = 0;
const FLAG_FIN: u8 = 1;
/// Flag bit: the frame body is an LZ4-class compressed block. Carried
/// per frame, so a reader needs no out-of-band negotiation to decode.
const FLAG_LZ4: u8 = 2;
/// Blocks below this size skip compression outright (header overhead
/// would eat the savings).
const MIN_COMPRESS_LEN: usize = 64;

fn frame(seq: u64, flags: u8, body: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(FRAME_HDR + body.len());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&[flags]);
    b.extend_from_slice(body);
    b.freeze()
}

/// Decodes a stream frame. `Ok(None)` is the legacy zero-length EOF
/// marker; a non-empty payload shorter than the header is a hostile or
/// corrupt block and surfaces as a typed protocol violation rather than
/// being silently mistaken for EOF.
fn unframe(data: &Bytes) -> Result<Option<(u64, u8, Bytes)>> {
    if data.is_empty() {
        return Ok(None);
    }
    let truncated = || VmpiError::ProtocolViolation {
        expected: "stream frame header of 9 bytes",
        got: format!("{} bytes", data.len()),
    };
    let (seq_bytes, rest) = data.split_first_chunk::<8>().ok_or_else(truncated)?;
    let (&flags, _) = rest.split_first().ok_or_else(truncated)?;
    Ok(Some((
        u64::from_le_bytes(*seq_bytes),
        flags,
        data.slice(FRAME_HDR..),
    )))
}

struct EndpointChooser {
    n: usize,
    next: usize,
    rng: Option<StdRng>,
    balance: Balance,
}

impl EndpointChooser {
    fn new(n: usize, balance: Balance) -> Self {
        let rng = match balance {
            Balance::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        EndpointChooser {
            n,
            next: 0,
            rng,
            balance,
        }
    }

    fn pick(&mut self) -> usize {
        match self.balance {
            Balance::None => 0,
            Balance::RoundRobin => {
                let i = self.next;
                self.next = (self.next + 1) % self.n;
                i
            }
            // A random balance whose RNG is missing degrades to
            // round-robin (counted) instead of aborting the stream.
            Balance::Random { .. } => match self.rng.as_mut() {
                Some(rng) => rng.gen_range(0..self.n),
                None => {
                    obs::m().rng_fallbacks.inc();
                    let i = self.next;
                    self.next = (self.next + 1) % self.n;
                    i
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// Write endpoint.
// ---------------------------------------------------------------------

/// The writing end of a VMPI stream.
pub struct WriteStream {
    mpi: Mpi,
    universe: Comm,
    endpoints: Vec<usize>,
    cfg: StreamConfig,
    tag: i32,
    chooser: EndpointChooser,
    /// The block being filled. Cleared (not reallocated) after each send,
    /// so steady-state writes reuse one buffer; returned to the global
    /// pool on close.
    current: BytesMut,
    /// Reusable compressor state (present when `cfg.compression` says so).
    enc: Option<Lz4Encoder>,
    /// Next frame sequence number, per endpoint index.
    next_seq: Vec<u64>,
    /// Blocks in flight; bounded by `cfg.n_async` (the shared output
    /// buffers of Figure 9).
    in_flight: VecDeque<Request>,
    closed: bool,
    bytes_written: u64,
    bytes_on_wire: u64,
    blocks_sent: u64,
    retransmits: u64,
}

impl WriteStream {
    /// Opens a write stream to all peers of `map` (`VMPI_Stream_open_map`
    /// with mode `"w"`).
    pub fn open_map(vmpi: &Vmpi, map: &Map, cfg: StreamConfig, stream_id: u16) -> Result<Self> {
        Self::open_to(vmpi, map.peers().to_vec(), cfg, stream_id)
    }

    /// Opens a write stream to an explicit list of world ranks.
    pub fn open_to(
        vmpi: &Vmpi,
        endpoints: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> Result<Self> {
        if endpoints.is_empty() {
            return Err(VmpiError::InvalidConfig("write stream needs >= 1 endpoint"));
        }
        obs::m().open_writers.inc();
        Ok(WriteStream {
            mpi: vmpi.mpi().clone(),
            universe: vmpi.comm_universe(),
            chooser: EndpointChooser::new(endpoints.len(), cfg.balance),
            next_seq: vec![0; endpoints.len()],
            endpoints,
            tag: stream_tag(stream_id),
            current: opmr_events::global_pool().get(cfg.block_size),
            enc: match cfg.compression {
                Compression::Lz4 => Some(Lz4Encoder::new()),
                Compression::None => None,
            },
            cfg,
            in_flight: VecDeque::new(),
            closed: false,
            bytes_written: 0,
            bytes_on_wire: 0,
            blocks_sent: 0,
            retransmits: 0,
        })
    }

    /// Appends bytes to the stream, sending full blocks as they fill
    /// (`VMPI_Stream_write`). Non-blocking until all async buffers are full.
    pub fn write(&mut self, mut data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(VmpiError::StreamClosed);
        }
        self.bytes_written += data.len() as u64;
        obs::m().write_bytes.add(data.len() as u64);
        while !data.is_empty() {
            let room = self.cfg.block_size - self.current.len();
            let take = room.min(data.len());
            self.current.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.current.len() == self.cfg.block_size {
                self.send_current()?;
            }
        }
        Ok(())
    }

    /// Sends the current partial block, if any.
    pub fn flush(&mut self) -> Result<()> {
        if self.closed {
            return Err(VmpiError::StreamClosed);
        }
        if !self.current.is_empty() {
            self.send_current()?;
        }
        Ok(())
    }

    fn send_current(&mut self) -> Result<()> {
        let logical = self.current.len();
        let m = obs::m();
        m.bytes_logical.add(logical as u64);
        // Compress into the frame body when the codec says so and it
        // actually helps; the per-frame flag tells the reader which
        // shape arrived, so an incompressible block falls back to the
        // plain layout with zero coordination.
        let (body, flags) = match self.enc.as_mut() {
            Some(enc) if logical >= MIN_COMPRESS_LEN => {
                let t0 = Instant::now();
                let mut out = BytesMut::with_capacity(compress::max_compressed_len(logical));
                enc.compress(&self.current, &mut out);
                m.compress_ns.record(t0.elapsed().as_nanos() as u64);
                if out.len() < logical {
                    m.blocks_compressed.inc();
                    (out.freeze(), FLAG_DATA | FLAG_LZ4)
                } else {
                    m.compress_skipped.inc();
                    (Bytes::copy_from_slice(&self.current), FLAG_DATA)
                }
            }
            _ => (Bytes::copy_from_slice(&self.current), FLAG_DATA),
        };
        self.current.clear();
        self.bytes_on_wire += body.len() as u64;
        m.bytes_on_wire.add(body.len() as u64);
        self.push_block(body, flags)
    }

    /// Resends on injected drops with linear backoff, up to the configured
    /// retry budget.
    fn isend_retrying(&mut self, ep: usize, payload: Bytes) -> Result<Request> {
        let mut attempt = 0u32;
        loop {
            match self.mpi.isend_ctx(
                Context::Stream,
                &self.universe,
                ep,
                self.tag,
                payload.clone(),
            ) {
                Ok(req) => return Ok(req),
                Err(RtError::Dropped { .. }) if attempt < self.cfg.max_retries => {
                    attempt += 1;
                    self.retransmits += 1;
                    obs::m().retransmits.inc();
                    std::thread::sleep(self.cfg.retry_backoff.saturating_mul(attempt));
                }
                Err(RtError::Dropped { .. }) => return Err(VmpiError::Timeout),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn push_block(&mut self, block: Bytes, flags: u8) -> Result<()> {
        // Occupancy of the async buffer window as the producer sees it at
        // each block boundary (0..=n_async).
        obs::m().occupancy.record(self.in_flight.len() as u64);
        // Reclaim completed buffers first, then block on the oldest if the
        // window is exhausted (back-pressure point).
        loop {
            let ready = match self.in_flight.front_mut() {
                Some(front) => front.is_complete(),
                None => false,
            };
            if !ready {
                break;
            }
            if let Some(req) = self.in_flight.pop_front() {
                req.wait()?;
                obs::m().blocks_in_flight.dec();
            }
        }
        while let Some(req) = (self.in_flight.len() >= self.cfg.n_async)
            .then(|| self.in_flight.pop_front())
            .flatten()
        {
            obs::m().backpressure_waits.inc();
            req.wait()?;
            obs::m().blocks_in_flight.dec();
        }
        let epi = self.chooser.pick();
        let seq = self.next_seq[epi];
        let payload = frame(seq, flags, &block);
        let req = self.isend_retrying(self.endpoints[epi], payload)?;
        self.next_seq[epi] = seq + 1;
        self.in_flight.push_back(req);
        self.blocks_sent += 1;
        let m = obs::m();
        m.blocks_in_flight.inc();
        m.blocks_sent.inc();
        Ok(())
    }

    /// Flushes, signals EOF to every endpoint and drains the send window
    /// (`VMPI_Stream_close`).
    pub fn close(mut self) -> Result<()> {
        self.close_inner()
    }

    fn close_inner(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        if !self.current.is_empty() {
            self.send_current()?;
        }
        // Mark closed before the FIN fan-out: if it fails part-way the
        // stream is poisoned rather than half-closable again from `Drop`.
        self.closed = true;
        obs::m().closes.inc();
        obs::m().open_writers.dec();
        for epi in 0..self.endpoints.len() {
            // The FIN frame takes the sequence slot after the last data
            // frame, so a reassembling reader can never see EOF overtake
            // data, no matter how the transport reorders frames.
            let fin = frame(self.next_seq[epi], FLAG_FIN, &[]);
            self.next_seq[epi] += 1;
            let ep = self.endpoints[epi];
            let mut attempt = 0u32;
            loop {
                match self
                    .mpi
                    .send_ctx(Context::Stream, &self.universe, ep, self.tag, fin.clone())
                {
                    Ok(()) => {
                        obs::m().fins_sent.inc();
                        break;
                    }
                    Err(RtError::Dropped { .. }) if attempt < self.cfg.max_retries => {
                        attempt += 1;
                        self.retransmits += 1;
                        obs::m().retransmits.inc();
                        std::thread::sleep(self.cfg.retry_backoff.saturating_mul(attempt));
                    }
                    Err(RtError::Dropped { .. }) => return Err(VmpiError::Timeout),
                    Err(e) => return Err(e.into()),
                }
            }
        }
        for req in self.in_flight.drain(..) {
            obs::m().blocks_in_flight.dec();
            req.wait()?;
        }
        opmr_events::global_pool().put(std::mem::take(&mut self.current));
        Ok(())
    }

    /// Terminates the stream *without* signalling EOF — the model of a
    /// writer crashing mid-stream. In-flight blocks may or may not arrive;
    /// readers observe the missing close once this rank exits and surface
    /// [`VmpiError::PeerLost`] instead of hanging.
    pub fn abort(mut self) {
        self.closed = true;
        opmr_events::global_pool().put(std::mem::take(&mut self.current));
        let m = obs::m();
        m.aborts.inc();
        m.open_writers.dec();
        m.blocks_in_flight.add(-(self.in_flight.len() as i64));
        // Dropping the requests abandons their completion handles; any
        // rendezvous blocks still parked are consumed (and de-duplicated)
        // by the reader or reclaimed at job teardown.
        self.in_flight.clear();
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Full/partial blocks sent so far.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }

    /// Block payload bytes actually shipped (after compression); compare
    /// with [`WriteStream::bytes_written`] for the on-wire ratio.
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_on_wire
    }

    /// Resend attempts caused by injected transport drops.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Number of remote endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }
}

impl Drop for WriteStream {
    fn drop(&mut self) {
        // Best-effort close so readers are never left waiting; errors are
        // ignored because the universe may already be shutting down.
        let _ = self.close_inner();
    }
}

// ---------------------------------------------------------------------
// Bidirectional streams.
// ---------------------------------------------------------------------

/// A bidirectional stream: the paper notes VMPI streams "can be either
/// multi- or uni-directional". A duplex endpoint pairs a write stream and
/// a read stream over two distinct stream ids derived from `stream_id`,
/// so both directions coexist without tag collisions.
pub struct DuplexStream {
    tx: WriteStream,
    rx: ReadStream,
}

impl DuplexStream {
    /// Opens both directions against the same peer set.
    pub fn open(
        vmpi: &Vmpi,
        peers: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> crate::Result<DuplexStream> {
        // Directions are disambiguated by parity: lower world rank writes
        // on 2k / reads on 2k+1; its peers do the opposite. The peer set
        // must lie entirely on one side (true for partition-to-partition
        // couplings, where rank ranges are contiguous).
        let me = vmpi.mpi().world_rank();
        if !(peers.iter().all(|&p| p > me) || peers.iter().all(|&p| p < me)) {
            return Err(VmpiError::InvalidConfig(
                "duplex peers must all be in a remote partition",
            ));
        }
        let (tx_id, rx_id) = if peers.iter().all(|&p| p > me) {
            (2 * stream_id, 2 * stream_id + 1)
        } else {
            (2 * stream_id + 1, 2 * stream_id)
        };
        Ok(DuplexStream {
            tx: WriteStream::open_to(vmpi, peers.clone(), cfg, tx_id)?,
            rx: ReadStream::open_from(vmpi, peers, cfg, rx_id)?,
        })
    }

    /// Writes on the outbound direction.
    pub fn write(&mut self, data: &[u8]) -> crate::Result<()> {
        self.tx.write(data)
    }

    /// Flushes the outbound partial block.
    pub fn flush(&mut self) -> crate::Result<()> {
        self.tx.flush()
    }

    /// Reads from the inbound direction.
    pub fn read(&mut self, mode: ReadMode) -> crate::Result<Option<Block>> {
        self.rx.read(mode)
    }

    /// Closes the outbound direction and drains the inbound one.
    pub fn close(mut self) -> crate::Result<Vec<Block>> {
        self.tx.close()?;
        let mut rest = Vec::new();
        while let Some(b) = self.rx.read(ReadMode::Blocking)? {
            rest.push(b);
        }
        Ok(rest)
    }

    /// Accessors for the two halves.
    pub fn halves(&mut self) -> (&mut WriteStream, &mut ReadStream) {
        (&mut self.tx, &mut self.rx)
    }
}

// ---------------------------------------------------------------------
// Read endpoint.
// ---------------------------------------------------------------------

struct SourceState {
    world: usize,
    /// Pre-posted receives, completed in FIFO order (NA per source).
    reqs: VecDeque<Request>,
    eof: bool,
    /// Next frame sequence expected from this writer.
    next_seq: u64,
    /// Frames that arrived ahead of a gap, keyed by sequence number.
    stash: BTreeMap<u64, (u8, Bytes)>,
}

/// The reading end of a VMPI stream.
pub struct ReadStream {
    mpi: Mpi,
    universe: Comm,
    sources: Vec<SourceState>,
    cfg: StreamConfig,
    tag: i32,
    chooser: EndpointChooser,
    bytes_read: u64,
    blocks_read: u64,
    dups_dropped: u64,
}

impl ReadStream {
    /// Opens a read stream from all peers of `map` (`VMPI_Stream_open_map`
    /// with mode `"r"`).
    pub fn open_map(vmpi: &Vmpi, map: &Map, cfg: StreamConfig, stream_id: u16) -> Result<Self> {
        Self::open_from(vmpi, map.peers().to_vec(), cfg, stream_id)
    }

    /// Opens a read stream from an explicit list of world ranks.
    pub fn open_from(
        vmpi: &Vmpi,
        sources: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> Result<Self> {
        if sources.is_empty() {
            return Err(VmpiError::InvalidConfig("read stream needs >= 1 source"));
        }
        let mpi = vmpi.mpi().clone();
        let universe = vmpi.comm_universe();
        let tag = stream_tag(stream_id);
        let mut states = Vec::with_capacity(sources.len());
        for world in sources {
            let mut reqs = VecDeque::with_capacity(cfg.n_async);
            for _ in 0..cfg.n_async {
                reqs.push_back(mpi.irecv_ctx(
                    Context::Stream,
                    &universe,
                    Src::Rank(world),
                    TagSel::Tag(tag),
                )?);
            }
            states.push(SourceState {
                world,
                reqs,
                eof: false,
                next_seq: 0,
                stash: BTreeMap::new(),
            });
        }
        Ok(ReadStream {
            mpi,
            universe,
            sources: states,
            cfg,
            tag,
            chooser: EndpointChooser::new(0, cfg.balance), // n set per sweep
            bytes_read: 0,
            blocks_read: 0,
            dups_dropped: 0,
        })
    }

    /// True once every writer has signalled EOF.
    pub fn all_closed(&self) -> bool {
        self.sources.iter().all(|s| s.eof)
    }

    fn repost(&mut self, idx: usize) -> Result<()> {
        let world = self.sources[idx].world;
        let req = self.mpi.irecv_ctx(
            Context::Stream,
            &self.universe,
            Src::Rank(world),
            TagSel::Tag(self.tag),
        )?;
        self.sources[idx].reqs.push_back(req);
        Ok(())
    }

    /// Validates a frame's flag bits and inflates a compressed body.
    /// `Ok(None)` is a FIN (the source flips to EOF). Unknown flag bits
    /// and corrupt compressed payloads are typed, counted protocol
    /// violations that kill this source while the surviving writers stay
    /// readable.
    fn decode_body(&mut self, idx: usize, flags: u8, body: Bytes) -> Result<Option<Bytes>> {
        if flags == FLAG_FIN {
            self.sources[idx].eof = true;
            obs::m().sources_eof.inc();
            return Ok(None);
        }
        if flags & !FLAG_LZ4 != FLAG_DATA {
            obs::m().protocol_violations.inc();
            self.sources[idx].eof = true;
            return Err(VmpiError::ProtocolViolation {
                expected: "stream frame flags data, data|lz4 or fin",
                got: format!("{flags:#04x}"),
            });
        }
        if flags & FLAG_LZ4 == 0 {
            return Ok(Some(body));
        }
        let t0 = Instant::now();
        let mut out = BytesMut::new();
        match compress::decompress_into(&body, self.cfg.block_size, &mut out) {
            Ok(_) => {
                obs::m()
                    .decompress_ns
                    .record(t0.elapsed().as_nanos() as u64);
                Ok(Some(out.freeze()))
            }
            Err(e) => {
                let m = obs::m();
                m.decompress_failures.inc();
                m.protocol_violations.inc();
                self.sources[idx].eof = true;
                Err(VmpiError::ProtocolViolation {
                    expected: "valid lz4-compressed stream block",
                    got: e.to_string(),
                })
            }
        }
    }

    /// Pops the next in-sequence frame from a source's reorder stash.
    /// Returns a block for data frames; FIN frames flip the source to EOF.
    fn take_stashed(&mut self, idx: usize) -> Result<Option<Block>> {
        let src = &mut self.sources[idx];
        let Some((flags, body)) = src.stash.remove(&src.next_seq) else {
            return Ok(None);
        };
        src.next_seq += 1;
        let world = src.world;
        let Some(data) = self.decode_body(idx, flags, body)? else {
            return Ok(None);
        };
        self.bytes_read += data.len() as u64;
        self.blocks_read += 1;
        let m = obs::m();
        m.read_bytes.add(data.len() as u64);
        m.blocks_read.inc();
        Ok(Some(Block {
            source: world,
            data,
        }))
    }

    /// One sweep over the sources from a policy-chosen start.
    /// Returns a reassembled in-order block if one is deliverable.
    fn sweep(&mut self) -> Result<Option<Block>> {
        let n = self.sources.len();
        self.chooser.n = n;
        let start = match self.cfg.balance {
            Balance::None => 0,
            _ => self.chooser.pick().min(n - 1),
        };
        for off in 0..n {
            let idx = (start + off) % n;
            if self.sources[idx].eof {
                continue;
            }
            // Frames already received whose turn has come.
            if let Some(block) = self.take_stashed(idx)? {
                return Ok(Some(block));
            }
            if self.sources[idx].eof {
                continue; // stashed FIN just landed
            }
            // Drain every completed pre-posted receive for this source.
            loop {
                let ready = match self.sources[idx].reqs.front_mut() {
                    Some(front) => front.is_complete(),
                    None => false,
                };
                if !ready {
                    break;
                }
                let Some(req) = self.sources[idx].reqs.pop_front() else {
                    break;
                };
                let Some((_st, data)) = req.wait()? else {
                    obs::m().protocol_violations.inc();
                    self.sources[idx].eof = true;
                    return Err(VmpiError::ProtocolViolation {
                        expected: "payload on completed stream receive",
                        got: "empty completion".to_string(),
                    });
                };
                let (seq, flags, body) = match unframe(&data) {
                    Ok(Some(frame)) => frame,
                    Ok(None) => {
                        // Unframed empty payload: legacy EOF marker; stop
                        // reposting, leftover receives are reclaimed at
                        // job end.
                        self.sources[idx].eof = true;
                        obs::m().sources_eof.inc();
                        break;
                    }
                    Err(e) => {
                        // A hostile or corrupt block: this source is dead
                        // (its byte offsets can no longer be trusted), but
                        // surviving writers stay readable on later calls.
                        obs::m().protocol_violations.inc();
                        self.sources[idx].eof = true;
                        return Err(e);
                    }
                };
                let src = &mut self.sources[idx];
                if seq < src.next_seq {
                    // Replay of a frame already delivered (duplicate fault
                    // or a resend racing its original): discard.
                    self.dups_dropped += 1;
                    obs::m().dups_dropped.inc();
                    self.repost(idx)?;
                    continue;
                }
                if seq > src.next_seq {
                    // A gap: park until the missing frames arrive.
                    src.stash.insert(seq, (flags, body));
                    self.repost(idx)?;
                    continue;
                }
                src.next_seq += 1;
                let world = src.world;
                if flags != FLAG_FIN {
                    self.repost(idx)?;
                }
                let Some(data) = self.decode_body(idx, flags, body)? else {
                    // EOF marker in sequence: every data frame before it
                    // has been delivered. Stop reposting for this source.
                    break;
                };
                self.bytes_read += data.len() as u64;
                self.blocks_read += 1;
                let m = obs::m();
                m.read_bytes.add(data.len() as u64);
                m.blocks_read.inc();
                return Ok(Some(Block {
                    source: world,
                    data,
                }));
            }
        }
        Ok(None)
    }

    /// A source whose writer rank has exited without closing and for which
    /// no deliverable frame remains. Because delivery is synchronous,
    /// everything the writer ever sent is already in our mailbox when its
    /// liveness flag drops — so this is loss, not latency.
    fn lost_peer(&mut self) -> Option<usize> {
        let uni = self.mpi.universe().clone();
        for s in self.sources.iter_mut() {
            if s.eof || uni.rank_alive(s.world) {
                continue;
            }
            let front_ready = s.reqs.front_mut().map(|r| r.is_complete()).unwrap_or(false);
            if !front_ready && !s.stash.contains_key(&s.next_seq) {
                return Some(s.world);
            }
        }
        None
    }

    /// Reads the next block (`VMPI_Stream_read`).
    ///
    /// * `Ok(Some(block))` — a block arrived;
    /// * `Ok(None)` — every writer closed (the paper's `read == 0`);
    /// * `Err(VmpiError::Again)` — nothing ready in non-blocking mode;
    /// * `Err(VmpiError::Timeout)` — `cfg.read_timeout` elapsed;
    /// * `Err(VmpiError::PeerLost)` — a writer died without closing; the
    ///   source is marked EOF so later reads drain the surviving writers.
    pub fn read(&mut self, mode: ReadMode) -> Result<Option<Block>> {
        obs::m().reads.inc();
        let deadline = self.cfg.read_timeout.map(|t| Instant::now() + t);
        let mut spins = 0u32;
        loop {
            if let Some(block) = self.sweep()? {
                return Ok(Some(block));
            }
            if self.all_closed() {
                return Ok(None);
            }
            if let Some(rank) = self.lost_peer() {
                if let Some(s) = self.sources.iter_mut().find(|s| s.world == rank) {
                    s.eof = true;
                }
                obs::m().peers_lost.inc();
                return Err(VmpiError::PeerLost { rank });
            }
            match mode {
                ReadMode::NonBlocking => {
                    obs::m().eagain.inc();
                    return Err(VmpiError::Again);
                }
                ReadMode::Blocking => {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Err(VmpiError::Timeout);
                        }
                    }
                    // Progressive back-off: spin, yield, then micro-sleep.
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
    }

    /// Total payload bytes received so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Blocks received so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Duplicate frames discarded by sequence reassembly.
    pub fn dups_dropped(&self) -> u64 {
        self.dups_dropped
    }

    /// Number of writers feeding this endpoint.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}
