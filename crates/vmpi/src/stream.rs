//! VMPI Streams: persistent asynchronous block channels (Figure 9).
//!
//! Semantics follow the paper:
//!
//! * a stream moves fixed-size **blocks** (≈1 MB for instrumentation use);
//! * the **write endpoint** owns `NA` shared output buffers: writing is
//!   non-blocking until all asynchronous buffers are full, which preserves
//!   an adaptation window between producer and consumer and then exerts real
//!   back-pressure;
//! * the **read endpoint** keeps `NA` pre-posted receive buffers *per
//!   incoming stream*, so any arriving block finds a buffer waiting (no
//!   unexpected messages on the hot path);
//! * streams created from a [`crate::Map`] connect a process to all its
//!   mapped peers; block distribution across multiple endpoints follows a
//!   load-balancing policy (**none / random / round-robin**), independently
//!   configurable at each end;
//! * non-blocking reads return [`VmpiError::Again`] (the paper's `EAGAIN`);
//! * writers close with an empty block; a read returns `None` (EOF) only
//!   after **all** remote writers have closed.

use crate::map::Map;
use crate::virt::Vmpi;
use crate::{Result, VmpiError};
use bytes::{Bytes, BytesMut};
use opmr_runtime::{Comm, Context, Mpi, Request, Src, TagSel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Load-balancing policy across a stream's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Always use the first endpoint.
    None,
    /// Uniform random endpoint per block (seeded, reproducible).
    Random { seed: u64 },
    /// Rotate endpoints per block.
    RoundRobin,
}

/// Stream configuration (`VMPI_Stream_init` arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Block size in bytes (the paper uses ≈1 MB for instrumentation).
    pub block_size: usize,
    /// Number of asynchronous buffers per endpoint (`NA`, 3 in the paper).
    pub n_async: usize,
    /// Endpoint load-balancing policy.
    pub balance: Balance,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            block_size: 1 << 20,
            n_async: 3,
            balance: Balance::RoundRobin,
        }
    }
}

impl StreamConfig {
    /// Convenience constructor.
    pub fn new(block_size: usize, n_async: usize, balance: Balance) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(n_async > 0, "need at least one async buffer");
        StreamConfig {
            block_size,
            n_async,
            balance,
        }
    }
}

/// Read behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Block until a block arrives or every writer closed.
    Blocking,
    /// Return [`VmpiError::Again`] when nothing is ready.
    NonBlocking,
}

/// One received block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// World rank of the writer that produced the block.
    pub source: usize,
    /// Block payload (full or trailing partial block).
    pub data: Bytes,
}

fn stream_tag(stream_id: u16) -> i32 {
    0x0500_0000 | stream_id as i32
}

struct EndpointChooser {
    n: usize,
    next: usize,
    rng: Option<StdRng>,
    balance: Balance,
}

impl EndpointChooser {
    fn new(n: usize, balance: Balance) -> Self {
        let rng = match balance {
            Balance::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        EndpointChooser {
            n,
            next: 0,
            rng,
            balance,
        }
    }

    fn pick(&mut self) -> usize {
        match self.balance {
            Balance::None => 0,
            Balance::RoundRobin => {
                let i = self.next;
                self.next = (self.next + 1) % self.n;
                i
            }
            Balance::Random { .. } => self
                .rng
                .as_mut()
                .expect("rng for random balance")
                .gen_range(0..self.n),
        }
    }
}

// ---------------------------------------------------------------------
// Write endpoint.
// ---------------------------------------------------------------------

/// The writing end of a VMPI stream.
pub struct WriteStream {
    mpi: Mpi,
    universe: Comm,
    endpoints: Vec<usize>,
    cfg: StreamConfig,
    tag: i32,
    chooser: EndpointChooser,
    current: BytesMut,
    /// Blocks in flight; bounded by `cfg.n_async` (the shared output
    /// buffers of Figure 9).
    in_flight: VecDeque<Request>,
    closed: bool,
    bytes_written: u64,
    blocks_sent: u64,
}

impl WriteStream {
    /// Opens a write stream to all peers of `map` (`VMPI_Stream_open_map`
    /// with mode `"w"`).
    pub fn open_map(vmpi: &Vmpi, map: &Map, cfg: StreamConfig, stream_id: u16) -> Result<Self> {
        Self::open_to(vmpi, map.peers().to_vec(), cfg, stream_id)
    }

    /// Opens a write stream to an explicit list of world ranks.
    pub fn open_to(
        vmpi: &Vmpi,
        endpoints: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> Result<Self> {
        assert!(!endpoints.is_empty(), "write stream needs >= 1 endpoint");
        Ok(WriteStream {
            mpi: vmpi.mpi().clone(),
            universe: vmpi.comm_universe(),
            chooser: EndpointChooser::new(endpoints.len(), cfg.balance),
            endpoints,
            cfg,
            tag: stream_tag(stream_id),
            current: BytesMut::new(),
            in_flight: VecDeque::new(),
            closed: false,
            bytes_written: 0,
            blocks_sent: 0,
        })
    }

    /// Appends bytes to the stream, sending full blocks as they fill
    /// (`VMPI_Stream_write`). Non-blocking until all async buffers are full.
    pub fn write(&mut self, mut data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(VmpiError::StreamClosed);
        }
        self.bytes_written += data.len() as u64;
        while !data.is_empty() {
            let room = self.cfg.block_size - self.current.len();
            let take = room.min(data.len());
            self.current.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.current.len() == self.cfg.block_size {
                self.send_current()?;
            }
        }
        Ok(())
    }

    /// Sends the current partial block, if any.
    pub fn flush(&mut self) -> Result<()> {
        if self.closed {
            return Err(VmpiError::StreamClosed);
        }
        if !self.current.is_empty() {
            self.send_current()?;
        }
        Ok(())
    }

    fn send_current(&mut self) -> Result<()> {
        let block = std::mem::take(&mut self.current).freeze();
        self.send_block(block)
    }

    fn send_block(&mut self, block: Bytes) -> Result<()> {
        // Reclaim completed buffers first, then block on the oldest if the
        // window is exhausted (back-pressure point).
        while let Some(front) = self.in_flight.front_mut() {
            if front.is_complete() {
                self.in_flight.pop_front().expect("front exists").wait()?;
            } else {
                break;
            }
        }
        while self.in_flight.len() >= self.cfg.n_async {
            self.in_flight
                .pop_front()
                .expect("window non-empty")
                .wait()?;
        }
        let ep = self.endpoints[self.chooser.pick()];
        let req = self
            .mpi
            .isend_ctx(Context::Stream, &self.universe, ep, self.tag, block)?;
        self.in_flight.push_back(req);
        self.blocks_sent += 1;
        Ok(())
    }

    /// Flushes, signals EOF to every endpoint and drains the send window
    /// (`VMPI_Stream_close`).
    pub fn close(mut self) -> Result<()> {
        self.close_inner()
    }

    fn close_inner(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.flush()?;
        self.closed = true;
        for &ep in &self.endpoints {
            // Zero-length block = end-of-stream marker.
            self.mpi
                .send_ctx(Context::Stream, &self.universe, ep, self.tag, Bytes::new())?;
        }
        for req in self.in_flight.drain(..) {
            req.wait()?;
        }
        Ok(())
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Full/partial blocks sent so far.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }

    /// Number of remote endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }
}

impl Drop for WriteStream {
    fn drop(&mut self) {
        // Best-effort close so readers are never left waiting; errors are
        // ignored because the universe may already be shutting down.
        let _ = self.close_inner();
    }
}

// ---------------------------------------------------------------------
// Bidirectional streams.
// ---------------------------------------------------------------------

/// A bidirectional stream: the paper notes VMPI streams "can be either
/// multi- or uni-directional". A duplex endpoint pairs a write stream and
/// a read stream over two distinct stream ids derived from `stream_id`,
/// so both directions coexist without tag collisions.
pub struct DuplexStream {
    tx: WriteStream,
    rx: ReadStream,
}

impl DuplexStream {
    /// Opens both directions against the same peer set.
    pub fn open(
        vmpi: &Vmpi,
        peers: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> crate::Result<DuplexStream> {
        // Directions are disambiguated by parity: lower world rank writes
        // on 2k / reads on 2k+1; its peers do the opposite. The peer set
        // must lie entirely on one side (true for partition-to-partition
        // couplings, where rank ranges are contiguous).
        let me = vmpi.mpi().world_rank();
        assert!(
            peers.iter().all(|&p| p > me) || peers.iter().all(|&p| p < me),
            "duplex peers must all be in a remote partition"
        );
        let (tx_id, rx_id) = if peers.iter().all(|&p| p > me) {
            (2 * stream_id, 2 * stream_id + 1)
        } else {
            (2 * stream_id + 1, 2 * stream_id)
        };
        Ok(DuplexStream {
            tx: WriteStream::open_to(vmpi, peers.clone(), cfg, tx_id)?,
            rx: ReadStream::open_from(vmpi, peers, cfg, rx_id)?,
        })
    }

    /// Writes on the outbound direction.
    pub fn write(&mut self, data: &[u8]) -> crate::Result<()> {
        self.tx.write(data)
    }

    /// Flushes the outbound partial block.
    pub fn flush(&mut self) -> crate::Result<()> {
        self.tx.flush()
    }

    /// Reads from the inbound direction.
    pub fn read(&mut self, mode: ReadMode) -> crate::Result<Option<Block>> {
        self.rx.read(mode)
    }

    /// Closes the outbound direction and drains the inbound one.
    pub fn close(mut self) -> crate::Result<Vec<Block>> {
        self.tx.close()?;
        let mut rest = Vec::new();
        while let Some(b) = self.rx.read(ReadMode::Blocking)? {
            rest.push(b);
        }
        Ok(rest)
    }

    /// Accessors for the two halves.
    pub fn halves(&mut self) -> (&mut WriteStream, &mut ReadStream) {
        (&mut self.tx, &mut self.rx)
    }
}

// ---------------------------------------------------------------------
// Read endpoint.
// ---------------------------------------------------------------------

struct SourceState {
    world: usize,
    /// Pre-posted receives, completed in FIFO order (NA per source).
    reqs: VecDeque<Request>,
    eof: bool,
}

/// The reading end of a VMPI stream.
pub struct ReadStream {
    mpi: Mpi,
    universe: Comm,
    sources: Vec<SourceState>,
    cfg: StreamConfig,
    tag: i32,
    chooser: EndpointChooser,
    bytes_read: u64,
    blocks_read: u64,
}

impl ReadStream {
    /// Opens a read stream from all peers of `map` (`VMPI_Stream_open_map`
    /// with mode `"r"`).
    pub fn open_map(vmpi: &Vmpi, map: &Map, cfg: StreamConfig, stream_id: u16) -> Result<Self> {
        Self::open_from(vmpi, map.peers().to_vec(), cfg, stream_id)
    }

    /// Opens a read stream from an explicit list of world ranks.
    pub fn open_from(
        vmpi: &Vmpi,
        sources: Vec<usize>,
        cfg: StreamConfig,
        stream_id: u16,
    ) -> Result<Self> {
        assert!(!sources.is_empty(), "read stream needs >= 1 source");
        let mpi = vmpi.mpi().clone();
        let universe = vmpi.comm_universe();
        let tag = stream_tag(stream_id);
        let mut states = Vec::with_capacity(sources.len());
        for world in sources {
            let mut reqs = VecDeque::with_capacity(cfg.n_async);
            for _ in 0..cfg.n_async {
                reqs.push_back(mpi.irecv_ctx(
                    Context::Stream,
                    &universe,
                    Src::Rank(world),
                    TagSel::Tag(tag),
                )?);
            }
            states.push(SourceState {
                world,
                reqs,
                eof: false,
            });
        }
        Ok(ReadStream {
            mpi,
            universe,
            sources: states,
            cfg,
            tag,
            chooser: EndpointChooser::new(0, cfg.balance), // n set per sweep
            bytes_read: 0,
            blocks_read: 0,
        })
    }

    /// True once every writer has signalled EOF.
    pub fn all_closed(&self) -> bool {
        self.sources.iter().all(|s| s.eof)
    }

    /// One sweep over the sources from a policy-chosen start.
    /// Returns a completed block if any front request is done.
    fn sweep(&mut self) -> Result<Option<Block>> {
        let n = self.sources.len();
        self.chooser.n = n;
        let start = match self.cfg.balance {
            Balance::None => 0,
            _ => self.chooser.pick().min(n - 1),
        };
        for off in 0..n {
            let idx = (start + off) % n;
            if self.sources[idx].eof {
                continue;
            }
            let ready = match self.sources[idx].reqs.front_mut() {
                Some(front) => front.is_complete(),
                None => false,
            };
            if !ready {
                continue;
            }
            let req = self.sources[idx].reqs.pop_front().expect("front exists");
            let (_st, data) = req.wait()?.expect("recv request yields payload");
            if data.is_empty() {
                // EOF marker: stop reposting; leftover posted receives for
                // this source can never match (the writer is gone) and are
                // reclaimed when the job ends.
                self.sources[idx].eof = true;
                continue;
            }
            // Re-post to keep NA buffers outstanding for this source.
            let world = self.sources[idx].world;
            let req = self.mpi.irecv_ctx(
                Context::Stream,
                &self.universe,
                Src::Rank(world),
                TagSel::Tag(self.tag),
            )?;
            self.sources[idx].reqs.push_back(req);
            self.bytes_read += data.len() as u64;
            self.blocks_read += 1;
            return Ok(Some(Block {
                source: world,
                data,
            }));
        }
        Ok(None)
    }

    /// Reads the next block (`VMPI_Stream_read`).
    ///
    /// * `Ok(Some(block))` — a block arrived;
    /// * `Ok(None)` — every writer closed (the paper's `read == 0`);
    /// * `Err(VmpiError::Again)` — nothing ready in non-blocking mode.
    pub fn read(&mut self, mode: ReadMode) -> Result<Option<Block>> {
        let mut spins = 0u32;
        loop {
            if let Some(block) = self.sweep()? {
                return Ok(Some(block));
            }
            if self.all_closed() {
                return Ok(None);
            }
            match mode {
                ReadMode::NonBlocking => return Err(VmpiError::Again),
                ReadMode::Blocking => {
                    // Progressive back-off: spin, yield, then micro-sleep.
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
    }

    /// Total payload bytes received so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Blocks received so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Number of writers feeding this endpoint.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}
