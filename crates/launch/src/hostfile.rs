//! mpirun-style hostfile parsing.
//!
//! One host per line, optionally with a slot count:
//!
//! ```text
//! # comment
//! localhost slots=2
//! node-a
//! node-b slots=4
//! ```
//!
//! `slots` defaults to 1. Workers are placed slot-aware round-robin
//! (see [`crate::place_procs`]): hosts are filled to their slot counts
//! in order, then the whole cycle repeats for oversubscription.

use crate::LaunchPlaneError;

/// One hostfile entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Host {
    /// Hostname as written (e.g. `localhost`, `node-a`, `10.0.0.7`).
    pub name: String,
    /// Worker slots on this host.
    pub slots: usize,
}

impl Host {
    /// A single-slot host.
    pub fn new(name: impl Into<String>) -> Host {
        Host {
            name: name.into(),
            slots: 1,
        }
    }

    /// Whether workers land on this machine without a remote shell.
    pub fn is_local(&self) -> bool {
        matches!(self.name.as_str(), "localhost" | "127.0.0.1" | "::1")
    }
}

/// Parses hostfile text. Empty lines and `#` comments are skipped;
/// every remaining line is `<name> [slots=N]`.
pub fn parse_hostfile(text: &str) -> Result<Vec<Host>, LaunchPlaneError> {
    let mut hosts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let mut parts = line.split_ascii_whitespace();
        let name = match parts.next() {
            Some(n) => n.to_string(),
            None => continue,
        };
        let mut slots = 1usize;
        for tok in parts {
            let Some(v) = tok.strip_prefix("slots=") else {
                return Err(LaunchPlaneError::Hostfile {
                    line: lineno,
                    what: format!("unknown attribute {tok:?} (expected slots=N)"),
                });
            };
            slots = v.parse().map_err(|_| LaunchPlaneError::Hostfile {
                line: lineno,
                what: format!("unparseable slot count {v:?}"),
            })?;
            if slots == 0 {
                return Err(LaunchPlaneError::Hostfile {
                    line: lineno,
                    what: "slots=0 makes the host unusable".to_string(),
                });
            }
        }
        hosts.push(Host { name, slots });
    }
    if hosts.is_empty() {
        return Err(LaunchPlaneError::Hostfile {
            line: 0,
            what: "no hosts (every line empty or a comment)".to_string(),
        });
    }
    Ok(hosts)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;

    #[test]
    fn parses_hosts_comments_and_slots() {
        let text = "\
# cluster head
localhost slots=2

node-a
node-b slots=4   # fat node
";
        let hosts = parse_hostfile(text).unwrap();
        assert_eq!(
            hosts,
            vec![
                Host {
                    name: "localhost".to_string(),
                    slots: 2
                },
                Host {
                    name: "node-a".to_string(),
                    slots: 1
                },
                Host {
                    name: "node-b".to_string(),
                    slots: 4
                },
            ]
        );
        assert!(hosts[0].is_local());
        assert!(!hosts[1].is_local());
    }

    #[test]
    fn rejects_bad_lines_with_line_numbers() {
        let err = parse_hostfile("node-a\nnode-b slots=abc\n").unwrap_err();
        assert!(
            matches!(err, LaunchPlaneError::Hostfile { line: 2, .. }),
            "{err}"
        );
        let err = parse_hostfile("node-a cores=4\n").unwrap_err();
        assert!(
            matches!(err, LaunchPlaneError::Hostfile { line: 1, .. }),
            "{err}"
        );
        let err = parse_hostfile("node-a slots=0\n").unwrap_err();
        assert!(
            matches!(err, LaunchPlaneError::Hostfile { line: 1, .. }),
            "{err}"
        );
        let err = parse_hostfile("# nothing here\n\n").unwrap_err();
        assert!(matches!(err, LaunchPlaneError::Hostfile { line: 0, .. }));
    }
}
