//! Multi-host launch & supervision plane.
//!
//! An mpirun-style control plane for multi-process `opmr` jobs: parse a
//! [hostfile](hostfile::parse_hostfile), place one worker process per
//! job slot (slot-aware round-robin over the hosts), spawn them through
//! a pluggable [`Spawner`] (local `std::process::Command`, or an
//! ssh-command backend for remote hosts), then
//! [supervise](supervise::run_job) the children: heartbeat liveness over
//! a line protocol on each child's stdout, typed exit classification
//! reusing the runtime's [`FailureKind`], an optional restart-once
//! policy, and kill-all teardown on the first failure (a guard also
//! kills survivors if the supervisor itself unwinds). Ctrl-C teardown
//! rides on POSIX foreground-process-group semantics — the children are
//! spawned into the launcher's group, so the terminal delivers `SIGINT`
//! to the whole job.
//!
//! # Control-line protocol
//!
//! Workers speak to the supervisor over stdout lines:
//!
//! ```text
//! @opmr-hb <proc> <seq>        periodic heartbeat
//! @opmr-stat <name> <value>    end-of-run obs counter
//! ```
//!
//! Everything else is forwarded to the launcher's stdout prefixed with
//! the worker index. [`HeartbeatEmitter`] and [`emit_stats`] are the
//! worker-side halves.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod env;
pub mod hostfile;
pub mod spawner;
pub mod supervise;

pub use env::{parse_endpoint, WorkerEnv};
pub use hostfile::{parse_hostfile, Host};
pub use spawner::{ssh_argv, LocalSpawner, Spawner, SshSpawner, WorkerCommand};
pub use supervise::{classify_exit, place_procs, run_job, ChildOutcome, JobReport, JobSpec};

// Launch-plane metrics (the obs "launch" family).
pub(crate) mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(crate) struct LaunchMetrics {
        pub spawned: Arc<Counter>,
        pub clean_exits: Arc<Counter>,
        pub child_failures: Arc<Counter>,
        pub heartbeats: Arc<Counter>,
        pub heartbeat_timeouts: Arc<Counter>,
        pub restarts: Arc<Counter>,
    }

    pub(crate) fn m() -> &'static LaunchMetrics {
        static M: OnceLock<LaunchMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            LaunchMetrics {
                spawned: r.counter("launch_children_spawned_total"),
                clean_exits: r.counter("launch_clean_exits_total"),
                child_failures: r.counter("launch_child_failures_total"),
                heartbeats: r.counter("launch_heartbeats_total"),
                heartbeat_timeouts: r.counter("launch_heartbeat_timeouts_total"),
                restarts: r.counter("launch_restarts_total"),
            }
        })
    }
}

/// Typed launch-plane failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchPlaneError {
    /// A hostfile line could not be parsed.
    Hostfile { line: usize, what: String },
    /// Spawning a worker on a host failed.
    Spawn { host: String, detail: String },
    /// The job description itself is invalid.
    Config { what: String },
    /// I/O failure in the supervisor.
    Io {
        during: &'static str,
        detail: String,
    },
}

impl std::fmt::Display for LaunchPlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchPlaneError::Hostfile { line, what } => {
                write!(f, "hostfile line {line}: {what}")
            }
            LaunchPlaneError::Spawn { host, detail } => {
                write!(f, "failed to spawn worker on {host}: {detail}")
            }
            LaunchPlaneError::Config { what } => write!(f, "invalid launch config: {what}"),
            LaunchPlaneError::Io { during, detail } => {
                write!(f, "launcher i/o during {during}: {detail}")
            }
        }
    }
}

impl std::error::Error for LaunchPlaneError {}

/// One parsed worker→supervisor control line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlLine {
    /// Periodic liveness beacon.
    Heartbeat { proc: usize, seq: u64 },
    /// End-of-run obs counter sample.
    Stat { name: String, value: u64 },
}

/// Renders a heartbeat line (without the trailing newline).
pub fn heartbeat_line(proc: usize, seq: u64) -> String {
    format!("@opmr-hb {proc} {seq}")
}

/// Renders a stat line (without the trailing newline).
pub fn stat_line(name: &str, value: u64) -> String {
    format!("@opmr-stat {name} {value}")
}

/// Parses one stdout line; `None` for ordinary output.
pub fn parse_control_line(line: &str) -> Option<ControlLine> {
    let mut parts = line.trim().split_ascii_whitespace();
    match parts.next() {
        Some("@opmr-hb") => {
            let proc = parts.next()?.parse().ok()?;
            let seq = parts.next()?.parse().ok()?;
            Some(ControlLine::Heartbeat { proc, seq })
        }
        Some("@opmr-stat") => {
            let name = parts.next()?.to_string();
            let value = parts.next()?.parse().ok()?;
            Some(ControlLine::Stat { name, value })
        }
        _ => None,
    }
}

/// Worker-side heartbeat thread: prints `@opmr-hb` lines on stdout at
/// the given interval until dropped. The first beat is emitted
/// immediately so the supervisor sees liveness before the interval
/// elapses.
pub struct HeartbeatEmitter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatEmitter {
    /// Starts beating for worker `proc` every `interval`.
    pub fn start(proc: usize, interval: Duration) -> HeartbeatEmitter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("opmr-hb".to_string())
            .spawn(move || {
                let mut seq = 0u64;
                // Beat in small steps so drop latency stays low.
                let step = interval
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1));
                let mut since_beat = interval; // fire immediately
                while !stop2.load(Ordering::Acquire) {
                    if since_beat >= interval {
                        since_beat = Duration::ZERO;
                        let mut out = std::io::stdout().lock();
                        let _ = writeln!(out, "{}", heartbeat_line(proc, seq));
                        let _ = out.flush();
                        seq += 1;
                    }
                    std::thread::sleep(step);
                    since_beat += step;
                }
            })
            .ok();
        HeartbeatEmitter { stop, handle }
    }
}

impl Drop for HeartbeatEmitter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Worker-side end-of-run stats: prints one `@opmr-stat` line per obs
/// counter so the supervisor can aggregate the job's counters across
/// processes.
pub fn emit_stats<W: Write>(out: &mut W) -> std::io::Result<()> {
    for c in opmr_obs::registry().snapshot().counters {
        writeln!(out, "{}", stat_line(&c.name, c.value))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;

    #[test]
    fn control_lines_roundtrip() {
        assert_eq!(
            parse_control_line(&heartbeat_line(3, 42)),
            Some(ControlLine::Heartbeat { proc: 3, seq: 42 })
        );
        assert_eq!(
            parse_control_line(&stat_line("launch_heartbeats_total", 7)),
            Some(ControlLine::Stat {
                name: "launch_heartbeats_total".to_string(),
                value: 7
            })
        );
        assert_eq!(parse_control_line("ordinary worker output"), None);
        assert_eq!(parse_control_line("@opmr-hb not-a-number 1"), None);
        assert_eq!(parse_control_line("@opmr-stat missing_value"), None);
        assert_eq!(parse_control_line(""), None);
    }

    #[test]
    fn heartbeat_emitter_starts_and_stops() {
        let hb = HeartbeatEmitter::start(0, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        drop(hb); // joins; must not hang or panic
    }

    #[test]
    fn emit_stats_writes_parseable_lines() {
        opmr_obs::registry()
            .counter("launch_test_probe_total")
            .inc();
        let mut buf = Vec::new();
        emit_stats(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut saw_probe = false;
        for line in text.lines() {
            match parse_control_line(line) {
                Some(ControlLine::Stat { name, value }) => {
                    if name == "launch_test_probe_total" {
                        assert!(value >= 1);
                        saw_probe = true;
                    }
                }
                other => panic!("non-stat line in emit_stats output: {line:?} -> {other:?}"),
            }
        }
        assert!(saw_probe);
    }
}
