//! The supervisor: spawn, watch, classify, tear down.
//!
//! [`run_job`] spawns one worker per process index (slot-aware
//! round-robin over the hosts), reads every child's stdout for
//! heartbeat/stat control lines, and polls child exits. The first
//! failure — a non-zero exit, a signal death, or a heartbeat that goes
//! stale — kills the remaining children (counted, classified with the
//! runtime's [`FailureKind`]) and, under the restart-once policy,
//! relaunches the whole job a single time: a worker cannot rejoin a
//! live socket mesh, so the unit of restart is the job, not the
//! process.

use crate::hostfile::Host;
use crate::spawner::{Spawner, WorkerCommand};
use crate::{obs, parse_control_line, ControlLine, LaunchPlaneError};
use opmr_runtime::FailureKind;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slot-aware placement: fill each host to its slot count in hostfile
/// order, then wrap the whole cycle for oversubscription. Returns the
/// host index for every process index.
pub fn place_procs(hosts: &[Host], procs: usize) -> Vec<usize> {
    let mut cycle = Vec::new();
    for (i, h) in hosts.iter().enumerate() {
        cycle.extend(std::iter::repeat_n(i, h.slots.max(1)));
    }
    if cycle.is_empty() {
        return Vec::new();
    }
    (0..procs).map(|p| cycle[p % cycle.len()]).collect()
}

/// Everything the supervisor needs besides the per-worker command.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Number of worker processes.
    pub procs: usize,
    /// Placement targets; a single `localhost` entry if no hostfile.
    pub hosts: Vec<Host>,
    /// Kill a worker whose heartbeat goes stale for this long. The
    /// window also covers startup (spawn → first beat).
    pub heartbeat_timeout: Duration,
    /// Expect `@opmr-hb` lines at all (workers not speaking the
    /// protocol would otherwise be killed as stale).
    pub heartbeats_expected: bool,
    /// Relaunch the whole job once if the first attempt fails.
    pub restart_once: bool,
}

impl JobSpec {
    pub fn new(procs: usize) -> JobSpec {
        JobSpec {
            procs,
            hosts: vec![Host::new("localhost")],
            heartbeat_timeout: Duration::from_secs(10),
            heartbeats_expected: true,
            restart_once: false,
        }
    }

    fn validate(&self) -> Result<(), LaunchPlaneError> {
        if self.procs == 0 {
            return Err(LaunchPlaneError::Config {
                what: "procs must be at least 1".to_string(),
            });
        }
        if self.hosts.is_empty() {
            return Err(LaunchPlaneError::Config {
                what: "no hosts to place workers on".to_string(),
            });
        }
        if self.heartbeats_expected && self.heartbeat_timeout.is_zero() {
            return Err(LaunchPlaneError::Config {
                what: "heartbeat_timeout must be non-zero".to_string(),
            });
        }
        Ok(())
    }
}

/// How one worker ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildOutcome {
    pub proc: usize,
    pub host: String,
    /// `None` for a clean exit; otherwise the failure class
    /// ([`FailureKind::Errored`] for a non-zero exit code,
    /// [`FailureKind::Panicked`] for a signal death or stale heartbeat).
    pub kind: Option<FailureKind>,
    pub message: String,
    /// The supervisor killed this worker while tearing down after
    /// *another* worker's failure — not a root cause.
    pub torn_down: bool,
}

/// The supervised job's result.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Outcomes of the final attempt, ordered by process index.
    pub outcomes: Vec<ChildOutcome>,
    /// Spawn rounds used (2 means the restart-once policy fired).
    pub attempts: u32,
    /// `@opmr-stat` counters summed across all workers of the final
    /// attempt.
    pub stats: BTreeMap<String, u64>,
}

impl JobReport {
    /// All workers of the final attempt exited cleanly.
    pub fn success(&self) -> bool {
        self.outcomes.iter().all(|o| o.kind.is_none())
    }

    /// Root-cause failures (teardown casualties excluded).
    pub fn failures(&self) -> impl Iterator<Item = &ChildOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.kind.is_some() && !o.torn_down)
    }
}

/// Kills every still-running child if dropped early (supervisor panic
/// or error path), so a failed launch never leaks worker processes.
struct KillGuard<'a> {
    children: &'a mut Vec<Worker>,
    disarmed: bool,
}

impl Drop for KillGuard<'_> {
    fn drop(&mut self) {
        if self.disarmed {
            return;
        }
        for w in self.children.iter_mut() {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

struct Shared {
    last_beat: Mutex<Instant>,
    stats: Mutex<Vec<(String, u64)>>,
}

struct Worker {
    proc: usize,
    host: String,
    child: Child,
    shared: Arc<Shared>,
    reader: Option<std::thread::JoinHandle<()>>,
    outcome: Option<ChildOutcome>,
}

/// Maps a worker's exit status to the runtime's failure taxonomy:
/// `None` for success, [`FailureKind::Errored`] for a non-zero exit
/// code, [`FailureKind::Panicked`] for a signal death.
pub fn classify_exit(status: std::process::ExitStatus) -> Option<(FailureKind, String)> {
    if status.success() {
        return None;
    }
    match status.code() {
        Some(code) => Some((FailureKind::Errored, format!("exited with code {code}"))),
        // No exit code on Unix means a signal death — same class as an
        // uncaught panic/abort in-process.
        None => Some((
            FailureKind::Panicked,
            format!("killed by signal ({status})"),
        )),
    }
}

fn spawn_round(
    spec: &JobSpec,
    spawner: &dyn Spawner,
    make_cmd: &dyn Fn(usize, &Host) -> WorkerCommand,
) -> Result<Vec<Worker>, LaunchPlaneError> {
    let placement = place_procs(&spec.hosts, spec.procs);
    let mut workers = Vec::with_capacity(spec.procs);
    let mut guard = KillGuard {
        children: &mut workers,
        disarmed: false,
    };
    for (proc, host_idx) in placement.iter().enumerate() {
        let host = &spec.hosts[*host_idx];
        let cmd = make_cmd(proc, host);
        let mut child = spawner.spawn(host, &cmd)?;
        obs::m().spawned.inc();
        let shared = Arc::new(Shared {
            last_beat: Mutex::new(Instant::now()),
            stats: Mutex::new(Vec::new()),
        });
        let reader = child.stdout.take().map(|out| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("launch-rx-p{proc}"))
                .spawn(move || {
                    let rd = std::io::BufReader::new(out);
                    for line in rd.lines() {
                        let Ok(line) = line else { break };
                        match parse_control_line(&line) {
                            Some(ControlLine::Heartbeat { .. }) => {
                                obs::m().heartbeats.inc();
                                *shared.last_beat.lock() = Instant::now();
                            }
                            Some(ControlLine::Stat { name, value }) => {
                                shared.stats.lock().push((name, value));
                            }
                            None => {
                                // Ordinary worker output: forward it,
                                // attributed.
                                println!("[p{proc}] {line}");
                            }
                        }
                    }
                })
                .ok()
        });
        guard.children.push(Worker {
            proc,
            host: host.name.clone(),
            child,
            shared,
            reader: reader.flatten(),
            outcome: None,
        });
    }
    guard.disarmed = true;
    drop(guard);
    Ok(workers)
}

/// Watches one spawn round to completion. Returns the outcomes in
/// process order plus the summed worker stats.
fn supervise_round(spec: &JobSpec, workers: &mut Vec<Worker>) -> Result<(), LaunchPlaneError> {
    let mut guard = KillGuard {
        children: workers,
        disarmed: false,
    };
    let mut failure_seen = false;
    loop {
        let mut all_done = true;
        for w in guard.children.iter_mut() {
            if w.outcome.is_some() {
                continue;
            }
            match w.child.try_wait() {
                Ok(Some(status)) => {
                    let outcome = match classify_exit(status) {
                        None => {
                            obs::m().clean_exits.inc();
                            ChildOutcome {
                                proc: w.proc,
                                host: w.host.clone(),
                                kind: None,
                                message: "exited cleanly".to_string(),
                                torn_down: false,
                            }
                        }
                        Some((kind, message)) => {
                            obs::m().child_failures.inc();
                            ChildOutcome {
                                proc: w.proc,
                                host: w.host.clone(),
                                kind: Some(kind),
                                message,
                                torn_down: failure_seen,
                            }
                        }
                    };
                    let failed = outcome.kind.is_some() && !outcome.torn_down;
                    w.outcome = Some(outcome);
                    if failed {
                        failure_seen = true;
                    }
                }
                Ok(None) => {
                    all_done = false;
                    // Heartbeat staleness: kill and classify as a crash.
                    if spec.heartbeats_expected
                        && w.shared.last_beat.lock().elapsed() > spec.heartbeat_timeout
                    {
                        obs::m().heartbeat_timeouts.inc();
                        obs::m().child_failures.inc();
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        w.outcome = Some(ChildOutcome {
                            proc: w.proc,
                            host: w.host.clone(),
                            kind: Some(FailureKind::Panicked),
                            message: format!(
                                "no heartbeat for {:?} (liveness timeout)",
                                spec.heartbeat_timeout
                            ),
                            torn_down: failure_seen,
                        });
                        if !failure_seen {
                            failure_seen = true;
                        }
                    }
                }
                Err(e) => {
                    return Err(LaunchPlaneError::Io {
                        during: "child wait",
                        detail: e.to_string(),
                    });
                }
            }
        }
        if failure_seen {
            // Tear the rest of the job down: survivors cannot finish a
            // session whose mesh lost a member for good.
            for w in guard.children.iter_mut() {
                if w.outcome.is_none() {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    w.outcome = Some(ChildOutcome {
                        proc: w.proc,
                        host: w.host.clone(),
                        kind: Some(FailureKind::Panicked),
                        message: "killed during job teardown".to_string(),
                        torn_down: true,
                    });
                }
            }
            break;
        }
        if all_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for w in guard.children.iter_mut() {
        if let Some(h) = w.reader.take() {
            let _ = h.join();
        }
    }
    guard.disarmed = true;
    Ok(())
}

/// Launches and supervises the job. `make_cmd` builds the per-worker
/// command (typically: this binary in worker mode, the process index
/// and socket endpoint in the environment).
pub fn run_job(
    spec: &JobSpec,
    spawner: &dyn Spawner,
    make_cmd: &dyn Fn(usize, &Host) -> WorkerCommand,
) -> Result<JobReport, LaunchPlaneError> {
    spec.validate()?;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let mut workers = spawn_round(spec, spawner, make_cmd)?;
        supervise_round(spec, &mut workers)?;
        let mut outcomes: Vec<ChildOutcome> = workers
            .iter_mut()
            .filter_map(|w| w.outcome.take())
            .collect();
        outcomes.sort_by_key(|o| o.proc);
        let mut stats: BTreeMap<String, u64> = BTreeMap::new();
        for w in &workers {
            for (name, value) in w.shared.stats.lock().iter() {
                *stats.entry(name.clone()).or_insert(0) += value;
            }
        }
        let report = JobReport {
            outcomes,
            attempts,
            stats,
        };
        if report.success() || !spec.restart_once || attempts > 1 {
            return Ok(report);
        }
        obs::m().restarts.inc();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;

    #[test]
    fn placement_is_slot_aware_and_wraps() {
        let hosts = vec![
            Host {
                name: "a".to_string(),
                slots: 2,
            },
            Host {
                name: "b".to_string(),
                slots: 1,
            },
        ];
        // Cycle: a a b | a a b …
        assert_eq!(place_procs(&hosts, 7), vec![0, 0, 1, 0, 0, 1, 0]);
        assert_eq!(place_procs(&hosts, 0), Vec::<usize>::new());
        assert_eq!(place_procs(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn job_spec_validation_is_typed() {
        assert!(JobSpec::new(0).validate().is_err());
        let mut spec = JobSpec::new(2);
        spec.hosts.clear();
        assert!(matches!(
            spec.validate(),
            Err(LaunchPlaneError::Config { .. })
        ));
        let mut spec = JobSpec::new(2);
        spec.heartbeat_timeout = Duration::ZERO;
        assert!(spec.validate().is_err());
        spec.heartbeats_expected = false;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn classify_exit_maps_codes_and_signals() {
        use std::process::Command;
        let ok = Command::new("/bin/sh")
            .args(["-c", "exit 0"])
            .status()
            .unwrap();
        assert_eq!(classify_exit(ok), None);
        let errored = Command::new("/bin/sh")
            .args(["-c", "exit 3"])
            .status()
            .unwrap();
        let (kind, msg) = classify_exit(errored).unwrap();
        assert_eq!(kind, FailureKind::Errored);
        assert!(msg.contains("code 3"), "{msg}");
        let signalled = Command::new("/bin/sh")
            .args(["-c", "kill -KILL $$"])
            .status()
            .unwrap();
        let (kind, msg) = classify_exit(signalled).unwrap();
        assert_eq!(kind, FailureKind::Panicked);
        assert!(msg.contains("signal"), "{msg}");
    }
}
