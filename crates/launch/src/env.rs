//! The launcher→worker environment contract.
//!
//! `opmr launch` distributes the job topology to its workers through
//! `OPMR_LAUNCH_*` environment variables (they survive the ssh hop —
//! the [`crate::SshSpawner`] carries them in the remote `env`
//! invocation). [`WorkerEnv`] is the typed view of that contract:
//! the launcher builds one per worker and turns it into
//! [`WorkerCommand`](crate::WorkerCommand) env pairs via
//! [`WorkerEnv::vars`]; the worker recovers it with
//! [`WorkerEnv::from_env`] and a ready-to-run socket configuration with
//! [`WorkerEnv::socket_config`].

use crate::LaunchPlaneError;
use opmr_runtime::{Endpoint, LinkFault, SocketConfig};
use std::time::Duration;

/// Worker's own process index.
pub const ENV_PROC: &str = "OPMR_LAUNCH_PROC";
/// Total processes in the job.
pub const ENV_PROCS: &str = "OPMR_LAUNCH_PROCS";
/// Mesh coordinator endpoint, `unix:<path>` or `tcp:<addr>`.
pub const ENV_ENDPOINT: &str = "OPMR_LAUNCH_ENDPOINT";
/// Optional explicit application→process placement, comma-separated
/// process indices in application add order.
pub const ENV_PLACEMENT: &str = "OPMR_LAUNCH_PLACEMENT";
/// Optional link-chaos injection: sever every link once after this many
/// data frames (reconnect-path smoke testing).
pub const ENV_SEVER_AFTER: &str = "OPMR_LAUNCH_SEVER_AFTER";
/// Optional connect/accept budget override, milliseconds.
pub const ENV_CONNECT_TIMEOUT_MS: &str = "OPMR_LAUNCH_CONNECT_TIMEOUT_MS";

/// Typed view of the `OPMR_LAUNCH_*` contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerEnv {
    pub proc_index: usize,
    pub num_procs: usize,
    /// `unix:<path>` or `tcp:<host:port>`.
    pub endpoint: String,
    /// Explicit application→process placement, if the launcher chose one.
    pub placement: Option<Vec<usize>>,
    /// Chaos: sever each link once after N data frames.
    pub sever_after: Option<u64>,
    /// Connect/accept budget override.
    pub connect_timeout: Option<Duration>,
}

impl WorkerEnv {
    pub fn new(proc_index: usize, num_procs: usize, endpoint: impl Into<String>) -> WorkerEnv {
        WorkerEnv {
            proc_index,
            num_procs,
            endpoint: endpoint.into(),
            placement: None,
            sever_after: None,
            connect_timeout: None,
        }
    }

    /// The env pairs a [`WorkerCommand`](crate::WorkerCommand) needs to
    /// carry for [`from_env`](Self::from_env) to reconstruct `self`.
    pub fn vars(&self) -> Vec<(String, String)> {
        let mut v = vec![
            (ENV_PROC.to_string(), self.proc_index.to_string()),
            (ENV_PROCS.to_string(), self.num_procs.to_string()),
            (ENV_ENDPOINT.to_string(), self.endpoint.clone()),
        ];
        if let Some(p) = &self.placement {
            let joined = p.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
            v.push((ENV_PLACEMENT.to_string(), joined));
        }
        if let Some(n) = self.sever_after {
            v.push((ENV_SEVER_AFTER.to_string(), n.to_string()));
        }
        if let Some(d) = self.connect_timeout {
            v.push((
                ENV_CONNECT_TIMEOUT_MS.to_string(),
                d.as_millis().to_string(),
            ));
        }
        v
    }

    /// Reads the contract from the process environment. `Ok(None)` when
    /// this process was not started by the launcher (no [`ENV_PROC`]).
    pub fn from_env() -> Result<Option<WorkerEnv>, LaunchPlaneError> {
        WorkerEnv::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`from_env`](Self::from_env) against an arbitrary lookup
    /// (testable without mutating the process environment).
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<Option<WorkerEnv>, LaunchPlaneError> {
        let Some(proc_raw) = lookup(ENV_PROC) else {
            return Ok(None);
        };
        let field = |name: &'static str, raw: &str| LaunchPlaneError::Config {
            what: format!("bad {name} in worker environment: {raw:?}"),
        };
        let proc_index: usize = proc_raw.parse().map_err(|_| field(ENV_PROC, &proc_raw))?;
        let procs_raw = lookup(ENV_PROCS).ok_or_else(|| LaunchPlaneError::Config {
            what: format!("{ENV_PROC} set but {ENV_PROCS} missing"),
        })?;
        let num_procs: usize = procs_raw
            .parse()
            .map_err(|_| field(ENV_PROCS, &procs_raw))?;
        let endpoint = lookup(ENV_ENDPOINT).ok_or_else(|| LaunchPlaneError::Config {
            what: format!("{ENV_PROC} set but {ENV_ENDPOINT} missing"),
        })?;
        let placement = match lookup(ENV_PLACEMENT) {
            None => None,
            Some(raw) => Some(
                raw.split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| field(ENV_PLACEMENT, &raw))?,
            ),
        };
        let sever_after = match lookup(ENV_SEVER_AFTER) {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|_| field(ENV_SEVER_AFTER, &raw))?),
        };
        let connect_timeout = match lookup(ENV_CONNECT_TIMEOUT_MS) {
            None => None,
            Some(raw) => Some(Duration::from_millis(
                raw.parse()
                    .map_err(|_| field(ENV_CONNECT_TIMEOUT_MS, &raw))?,
            )),
        };
        Ok(Some(WorkerEnv {
            proc_index,
            num_procs,
            endpoint,
            placement,
            sever_after,
            connect_timeout,
        }))
    }

    /// Parses the endpoint and assembles the worker's [`SocketConfig`]
    /// (chaos injection and timeout overrides applied).
    pub fn socket_config(&self) -> Result<SocketConfig, LaunchPlaneError> {
        let endpoint = parse_endpoint(&self.endpoint)?;
        let mut cfg = SocketConfig::new(endpoint);
        if let Some(d) = self.connect_timeout {
            cfg = cfg.connect_timeout(d);
        }
        if let Some(n) = self.sever_after {
            cfg = cfg.link_fault(LinkFault {
                sever_after_frames: n,
            });
        }
        Ok(cfg)
    }
}

/// Parses `unix:<path>` / `tcp:<host:port>` endpoint notation.
pub fn parse_endpoint(s: &str) -> Result<Endpoint, LaunchPlaneError> {
    if let Some(path) = s.strip_prefix("unix:") {
        if path.is_empty() {
            return Err(LaunchPlaneError::Config {
                what: "empty unix endpoint path".to_string(),
            });
        }
        return Ok(Endpoint::Unix(path.into()));
    }
    if let Some(addr) = s.strip_prefix("tcp:") {
        if addr.is_empty() {
            return Err(LaunchPlaneError::Config {
                what: "empty tcp endpoint address".to_string(),
            });
        }
        return Ok(Endpoint::Tcp(addr.to_string()));
    }
    Err(LaunchPlaneError::Config {
        what: format!("endpoint {s:?} is neither unix:<path> nor tcp:<addr>"),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;

    fn lookup_of(pairs: &[(String, String)]) -> impl Fn(&str) -> Option<String> + '_ {
        move |k| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
    }

    #[test]
    fn contract_roundtrips_through_vars() {
        let mut env = WorkerEnv::new(2, 3, "unix:/tmp/opmr/mesh.sock");
        env.placement = Some(vec![1, 2, 1]);
        env.sever_after = Some(40);
        env.connect_timeout = Some(Duration::from_millis(2500));
        let vars = env.vars();
        let back = WorkerEnv::from_lookup(lookup_of(&vars)).unwrap().unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn absent_contract_is_none_and_partial_is_typed() {
        assert_eq!(WorkerEnv::from_lookup(|_| None).unwrap(), None);
        // PROC present but PROCS missing: typed config error, not a panic.
        let partial = vec![(ENV_PROC.to_string(), "1".to_string())];
        let err = WorkerEnv::from_lookup(lookup_of(&partial)).unwrap_err();
        assert!(matches!(err, LaunchPlaneError::Config { .. }), "{err}");
        // Unparseable placement is typed too.
        let bad = vec![
            (ENV_PROC.to_string(), "0".to_string()),
            (ENV_PROCS.to_string(), "2".to_string()),
            (ENV_ENDPOINT.to_string(), "unix:/tmp/x".to_string()),
            (ENV_PLACEMENT.to_string(), "1,zebra".to_string()),
        ];
        let err = WorkerEnv::from_lookup(lookup_of(&bad)).unwrap_err();
        assert!(matches!(err, LaunchPlaneError::Config { .. }), "{err}");
    }

    #[test]
    fn endpoint_notation_parses_typed() {
        assert_eq!(
            parse_endpoint("unix:/tmp/mesh.sock").unwrap(),
            Endpoint::Unix("/tmp/mesh.sock".into())
        );
        assert_eq!(
            parse_endpoint("tcp:127.0.0.1:39000").unwrap(),
            Endpoint::Tcp("127.0.0.1:39000".to_string())
        );
        assert!(parse_endpoint("udp:somewhere").is_err());
        assert!(parse_endpoint("unix:").is_err());
        assert!(parse_endpoint("tcp:").is_err());
    }

    #[test]
    fn socket_config_applies_chaos_and_timeouts() {
        let mut env = WorkerEnv::new(1, 3, "unix:/tmp/mesh.sock");
        env.sever_after = Some(25);
        env.connect_timeout = Some(Duration::from_secs(30));
        let cfg = env.socket_config().unwrap();
        assert_eq!(cfg.connect_timeout, Duration::from_secs(30));
        assert_eq!(
            cfg.link_fault,
            Some(LinkFault {
                sever_after_frames: 25
            })
        );
        assert!(cfg.validate().is_ok());
    }
}
