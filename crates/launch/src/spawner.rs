//! Pluggable worker-process spawners.
//!
//! The supervisor is backend-agnostic: it hands a [`WorkerCommand`] and
//! a [`Host`] to a [`Spawner`] and gets a `std::process::Child` back.
//! [`LocalSpawner`] runs the command directly; [`SshSpawner`] wraps it
//! in an `ssh <host> env K=V… prog args…` invocation so the same
//! supervision (stdout heartbeats, exit classification, kill-on-
//! teardown of the ssh client) spans machines.

use crate::hostfile::Host;
use crate::LaunchPlaneError;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// What to run on each worker slot: program, arguments and environment
/// (the socket roster/config travels in `env`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    pub program: PathBuf,
    pub args: Vec<String>,
    pub env: Vec<(String, String)>,
}

impl WorkerCommand {
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            env: Vec::new(),
        }
    }

    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }

    pub fn env(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.env.push((k.into(), v.into()));
        self
    }
}

/// Starts one worker process for a host. Implementations must pipe the
/// child's stdout (the supervisor reads the control-line protocol from
/// it) and leave stderr inherited so worker diagnostics reach the
/// launcher's terminal directly.
pub trait Spawner: Send + Sync {
    /// Spawns `cmd` for `host`, stdout piped.
    fn spawn(&self, host: &Host, cmd: &WorkerCommand) -> Result<Child, LaunchPlaneError>;

    /// Human-readable backend name for logs and errors.
    fn describe(&self) -> &'static str;
}

/// Runs workers on this machine via `std::process::Command`.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalSpawner;

impl Spawner for LocalSpawner {
    fn spawn(&self, host: &Host, cmd: &WorkerCommand) -> Result<Child, LaunchPlaneError> {
        let mut c = Command::new(&cmd.program);
        c.args(&cmd.args)
            .envs(cmd.env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .stdin(Stdio::null());
        c.spawn().map_err(|e| LaunchPlaneError::Spawn {
            host: host.name.clone(),
            detail: e.to_string(),
        })
    }

    fn describe(&self) -> &'static str {
        "local"
    }
}

/// Runs workers on remote hosts through an `ssh`-compatible client.
/// The remote command is `env K=V… <program> <args…>`, each word
/// shell-quoted, so the environment distribution works without any
/// agent on the far side. Killing the local ssh client tears the remote
/// worker's stdin/stdout down, which is how teardown propagates.
#[derive(Debug, Clone)]
pub struct SshSpawner {
    /// The client binary (default `ssh`).
    pub ssh_program: String,
    /// Extra client flags inserted before the host (e.g. `-o
    /// BatchMode=yes`, `-p 2222`).
    pub extra_args: Vec<String>,
}

impl Default for SshSpawner {
    fn default() -> Self {
        SshSpawner {
            ssh_program: "ssh".to_string(),
            extra_args: vec!["-o".to_string(), "BatchMode=yes".to_string()],
        }
    }
}

/// Quotes one word for a POSIX shell (ssh concatenates the remote argv
/// into a shell command line).
fn shell_quote(s: &str) -> String {
    if !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'/' | b'=' | b':' | b',')
        })
    {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for ch in s.chars() {
        if ch == '\'' {
            out.push_str("'\\''");
        } else {
            out.push(ch);
        }
    }
    out.push('\'');
    out
}

/// The full argv an [`SshSpawner`] launches (exposed for tests and
/// dry-runs): `[ssh, extra…, host, env, K=V…, program, args…]`.
pub fn ssh_argv(spawner: &SshSpawner, host: &Host, cmd: &WorkerCommand) -> Vec<String> {
    let mut argv =
        Vec::with_capacity(4 + spawner.extra_args.len() + cmd.env.len() + cmd.args.len());
    argv.push(spawner.ssh_program.clone());
    argv.extend(spawner.extra_args.iter().cloned());
    argv.push(host.name.clone());
    argv.push("env".to_string());
    for (k, v) in &cmd.env {
        argv.push(shell_quote(&format!("{k}={v}")));
    }
    argv.push(shell_quote(&cmd.program.to_string_lossy()));
    for a in &cmd.args {
        argv.push(shell_quote(a));
    }
    argv
}

impl Spawner for SshSpawner {
    fn spawn(&self, host: &Host, cmd: &WorkerCommand) -> Result<Child, LaunchPlaneError> {
        let argv = ssh_argv(self, host, cmd);
        let (program, rest) = argv.split_first().ok_or_else(|| LaunchPlaneError::Spawn {
            host: host.name.clone(),
            detail: "empty ssh argv".to_string(),
        })?;
        let mut c = Command::new(program);
        c.args(rest)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .stdin(Stdio::null());
        c.spawn().map_err(|e| LaunchPlaneError::Spawn {
            host: host.name.clone(),
            detail: format!("{} ({})", e, self.ssh_program),
        })
    }

    fn describe(&self) -> &'static str {
        "ssh"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;

    #[test]
    fn ssh_argv_carries_env_program_and_quoting() {
        let sp = SshSpawner::default();
        let host = Host::new("node-a");
        let cmd = WorkerCommand::new("/opt/opmr/bin/opmr")
            .arg("__launch-worker")
            .arg("weird arg'with quotes")
            .env("OPMR_LAUNCH_PROC", "2")
            .env("OPMR_LAUNCH_ENDPOINT", "tcp:10.0.0.1:39000");
        let argv = ssh_argv(&sp, &host, &cmd);
        assert_eq!(argv[0], "ssh");
        assert_eq!(
            &argv[1..3],
            &["-o".to_string(), "BatchMode=yes".to_string()]
        );
        assert_eq!(argv[3], "node-a");
        assert_eq!(argv[4], "env");
        assert_eq!(argv[5], "OPMR_LAUNCH_PROC=2");
        assert_eq!(argv[6], "OPMR_LAUNCH_ENDPOINT=tcp:10.0.0.1:39000");
        assert_eq!(argv[7], "/opt/opmr/bin/opmr");
        assert_eq!(argv[8], "__launch-worker");
        // The hostile word is single-quoted with the embedded quote
        // escaped, so the remote shell sees exactly one argument.
        assert_eq!(argv[9], "'weird arg'\\''with quotes'");
    }

    #[test]
    fn shell_quote_passes_safe_words_through() {
        assert_eq!(shell_quote("plain-word_1.0/x=y:z"), "plain-word_1.0/x=y:z");
        assert_eq!(shell_quote(""), "''");
        assert_eq!(shell_quote("a b"), "'a b'");
        assert_eq!(shell_quote("$(rm -rf)"), "'$(rm -rf)'");
    }

    #[test]
    fn local_spawner_pipes_stdout_and_reports_spawn_errors_typed() {
        let sp = LocalSpawner;
        let host = Host::new("localhost");
        // A real process: /bin/echo prints and exits 0.
        let cmd = WorkerCommand::new("/bin/echo").arg("hello-from-child");
        let mut child = sp.spawn(&host, &cmd).unwrap();
        let out = {
            use std::io::Read;
            let mut s = String::new();
            child.stdout.take().unwrap().read_to_string(&mut s).unwrap();
            s
        };
        assert!(child.wait().unwrap().success());
        assert_eq!(out.trim(), "hello-from-child");
        // A missing binary is a typed Spawn error, not a panic.
        let missing = WorkerCommand::new("/nonexistent/opmr-no-such-binary");
        let err = sp.spawn(&host, &missing).unwrap_err();
        assert!(matches!(err, LaunchPlaneError::Spawn { .. }), "{err}");
    }
}
