//! CG: conjugate gradient on a power-of-two process grid.
//!
//! NPB CG arranges `P = 2^m` ranks as `nprows × npcols` (npcols = nprows or
//! 2×nprows) and, for each of the 25 inner CG steps per outer iteration,
//! performs the sparse matrix-vector product's *transpose exchange* with a
//! partner rank followed by a logarithmic fold along the row. This gives
//! the characteristic banded/block communication matrix of Figure 17(a,b).

use crate::class::Class;
use crate::util::is_pow2;
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// Inner CG steps per outer iteration (NPB `cgitmax`).
pub const INNER_STEPS: usize = 25;

/// Grid shape for a power-of-two rank count.
pub fn grid_shape(ranks: usize) -> Option<(usize, usize)> {
    if !is_pow2(ranks) {
        return None;
    }
    let m = ranks.trailing_zeros();
    let nprows = 1usize << (m / 2);
    let npcols = ranks / nprows;
    Some((nprows, npcols))
}

/// Transpose-exchange partner of `rank` (the SpMV vector redistribution).
pub fn transpose_partner(ranks: usize, rank: usize) -> usize {
    // Non-power-of-two worlds have no NPB grid; degrade to a 1×N "grid"
    // whose transpose is the identity rather than panicking mid-workload.
    let (nprows, npcols) = grid_shape(ranks).unwrap_or((1, ranks.max(1)));
    let row = rank / npcols;
    let col = rank % npcols;
    if nprows == npcols {
        // Square grid: true transpose.
        col * npcols + row
    } else {
        // npcols = 2 × nprows: pair (row, col) with the rank holding the
        // transposed half-block, NPB-style.
        let half = col / 2 * npcols + row * 2 + col % 2;
        half % ranks
    }
}

/// Builds a CG workload on a power-of-two rank count.
pub fn workload(
    class: Class,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    let (_nprows, npcols) = grid_shape(ranks).ok_or(WlError::InvalidRanks {
        bench: "CG",
        ranks,
        need: "a power of two",
    })?;
    let na = class.cg_na();
    let iters = iters_override.unwrap_or_else(|| class.cg_iters());
    let nominal_iters = class.cg_iters() as f64;

    // Vector segment exchanged with the transpose partner.
    let seg_bytes = ((8 * na) / npcols).max(64) as u64;
    let fold_steps = npcols.trailing_zeros() as usize;

    let flops_rank_iter = class.cg_gops() * 1e9 / (nominal_iters * ranks as f64);
    let step_ns = machine.compute_ns(flops_rank_iter / INNER_STEPS as f64);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let partner = transpose_partner(ranks, r);
        let col = r % npcols;
        let mut body = Vec::new();
        for _step in 0..INNER_STEPS {
            body.push(Op::Compute { ns: step_ns });
            if partner != r {
                body.push(Op::Exchange {
                    peer: partner as u32,
                    bytes: seg_bytes,
                });
            }
            // Logarithmic fold along the row: XOR partners are symmetric,
            // so pairwise exchanges are deadlock-free.
            for j in 0..fold_steps {
                let fold_col = col ^ (1 << j);
                let fold_peer = r - col + fold_col;
                body.push(Op::Exchange {
                    peer: fold_peer as u32,
                    bytes: seg_bytes / (1 << j).max(1),
                });
            }
        }
        // Residual norm per outer iteration.
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 8,
        });

        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 8,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn rejects_non_pow2() {
        let m = tera100();
        assert!(workload(Class::S, 12, &m, None).is_err());
        assert!(workload(Class::S, 16, &m, Some(2)).is_ok());
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(16), Some((4, 4)));
        assert_eq!(grid_shape(128), Some((8, 16)));
        assert_eq!(grid_shape(2), Some((1, 2)));
        assert_eq!(grid_shape(48), None);
    }

    #[test]
    fn transpose_partner_is_an_involution_on_square_grids() {
        for ranks in [4usize, 16, 64, 256] {
            for r in 0..ranks {
                let p = transpose_partner(ranks, r);
                assert!(p < ranks);
                assert_eq!(transpose_partner(ranks, p), r, "ranks={ranks} r={r} p={p}");
            }
        }
    }

    #[test]
    fn simulates_cleanly_across_scales() {
        let m = tera100();
        for ranks in [2usize, 8, 32, 128] {
            let w = workload(Class::S, ranks, &m, Some(2)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
    }

    #[test]
    fn fold_depth_tracks_row_width() {
        let m = tera100();
        let w = workload(Class::S, 128, &m, Some(1)).unwrap();
        // npcols = 16 → 4 fold exchanges + 1 transpose per inner step.
        // Rank 2 has a distinct transpose partner (rank 0 pairs with
        // itself, skipping the exchange).
        let exchanges = w.programs[2]
            .body
            .iter()
            .filter(|o| matches!(o, Op::Exchange { .. }))
            .count();
        assert_eq!(exchanges, INNER_STEPS * (1 + 4));
    }
}
