//! FT: transpose-based 3-D FFT — one all-to-all per iteration.

use crate::class::Class;
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// Builds an FT workload (any rank count that divides the grid's z extent;
/// practically: powers of two up to nz).
pub fn workload(
    class: Class,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    let (nx, ny, nz) = class.ft_grid();
    if ranks == 0 || ranks > nz {
        return Err(WlError::InvalidRanks {
            bench: "FT",
            ranks,
            need: "1..=nz ranks (slab decomposition)",
        });
    }
    let iters = iters_override.unwrap_or_else(|| class.ft_iters());
    let nominal_iters = class.ft_iters() as f64;

    // Complex grid: 16 bytes per point; the transpose moves each rank's
    // slab to every peer: per-pair bytes = total / P².
    let total_bytes = 16.0 * nx as f64 * ny as f64 * nz as f64;
    let pair_bytes = (total_bytes / (ranks as f64 * ranks as f64)).max(64.0) as u64;

    let flops_rank_iter = class.ft_gops() * 1e9 / (nominal_iters * ranks as f64);
    let fft_ns = machine.compute_ns(flops_rank_iter / 2.0);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body: vec![
                // Local FFTs along x/y, transpose, FFT along z, checksum.
                Op::Compute { ns: fft_ns },
                Op::Coll {
                    group: world,
                    kind: CollKind::Alltoall,
                    bytes: pair_bytes,
                },
                Op::Compute { ns: fft_ns },
                Op::Coll {
                    group: world,
                    kind: CollKind::Allreduce,
                    bytes: 16,
                },
            ],
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 16,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn validates_rank_range() {
        let m = tera100();
        assert!(workload(Class::S, 0, &m, None).is_err());
        assert!(workload(Class::S, 65, &m, None).is_err(), "nz(S)=64");
        assert!(workload(Class::S, 64, &m, Some(1)).is_ok());
    }

    #[test]
    fn alltoall_dominates_communication() {
        let m = tera100();
        let w = workload(Class::S, 16, &m, Some(2)).unwrap();
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        assert!(r.elapsed_s > 0.0);
        // 2 collectives per body iteration + barrier + final allreduce.
        assert_eq!(r.stats.comm_ops, 16 * (2 * 2 + 2));
    }

    #[test]
    fn pair_bytes_shrink_quadratically() {
        let m = tera100();
        let w4 = workload(Class::A, 4, &m, Some(1)).unwrap();
        let w8 = workload(Class::A, 8, &m, Some(1)).unwrap();
        let get = |w: &Workload| {
            w.programs[0]
                .body
                .iter()
                .find_map(|o| match o {
                    Op::Coll {
                        kind: CollKind::Alltoall,
                        bytes,
                        ..
                    } => Some(*bytes),
                    _ => None,
                })
                .unwrap()
        };
        let (b4, b8) = (get(&w4), get(&w8));
        assert!((b4 as f64 / b8 as f64 - 4.0).abs() < 0.1);
    }
}
