//! Bursty-communication generator: long quiet phases of compute with tiny
//! reductions, punctuated by dense communication bursts (all-to-all plus a
//! seeded ring-shift exchange). The event rate swings by orders of
//! magnitude between phases, which is exactly the stress case for windowed
//! metrics and online reduction — quiet windows must stay cheap while
//! burst windows spike in transfer fraction and bytes.

use crate::util::{lexicographic_peers, SplitMix64};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};
use std::collections::BTreeSet;

/// Bursty-pattern problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyParams {
    /// Quiet steps per cycle (compute + 8-byte allreduce).
    pub quiet_steps: u32,
    /// Burst rounds per cycle.
    pub burst_rounds: u32,
    /// Payload of each burst all-to-all, per rank pair.
    pub burst_bytes: u64,
    /// Flops per quiet step.
    pub flops: f64,
    /// Seed for the per-round ring-shift distances.
    pub seed: u64,
    /// Cycles (the program body is one full cycle).
    pub cycles: u32,
}

impl Default for BurstyParams {
    fn default() -> Self {
        BurstyParams {
            quiet_steps: 8,
            burst_rounds: 3,
            burst_bytes: 256 * 1024,
            flops: 30.0e6,
            seed: 0xB0B5_7EED,
            cycles: 60,
        }
    }
}

impl BurstyParams {
    /// A small instance for live in-process runs and tests.
    pub fn small() -> BurstyParams {
        BurstyParams {
            quiet_steps: 4,
            burst_rounds: 2,
            burst_bytes: 16 * 1024,
            flops: 1.5e6,
            seed: 0xB0B5_7EED,
            cycles: 6,
        }
    }
}

/// The seeded shift distances, one per burst round (each in `1..ranks`).
pub fn shift_distances(params: &BurstyParams, ranks: usize) -> Vec<u32> {
    if ranks < 2 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(params.seed);
    (0..params.burst_rounds)
        .map(|_| 1 + rng.below(ranks as u64 - 1) as u32)
        .collect()
}

/// Builds the bursty workload on any non-zero rank count.
pub fn workload(
    params: BurstyParams,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    if ranks == 0 {
        return Err(WlError::InvalidRanks {
            bench: "Bursty",
            ranks,
            need: "at least one rank",
        });
    }
    let iters = iters_override.unwrap_or(params.cycles);
    let shifts = shift_distances(&params, ranks);
    let compute_ns = machine.compute_ns(params.flops);
    let n = ranks as u32;

    // Each burst round d becomes the symmetric ring-distance-d graph,
    // scheduled in global lexicographic edge order (deadlock-free).
    let round_edges: Vec<BTreeSet<(u32, u32)>> = shifts
        .iter()
        .map(|&d| {
            let mut edges = BTreeSet::new();
            for r in 0..n {
                let p = (r + d) % n;
                if p != r {
                    edges.insert((r.min(p), r.max(p)));
                }
            }
            edges
        })
        .collect();

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let mut body = Vec::new();
        for _ in 0..params.quiet_steps {
            body.push(Op::Compute { ns: compute_ns });
            body.push(Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 8,
            });
        }
        for edges in &round_edges {
            if ranks > 1 {
                body.push(Op::Coll {
                    group: world,
                    kind: CollKind::Alltoall,
                    bytes: params.burst_bytes,
                });
            }
            for peer in lexicographic_peers(edges, r as u32) {
                body.push(Op::Exchange {
                    peer,
                    bytes: params.burst_bytes,
                });
            }
        }
        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn shifts_are_seeded_and_in_range() {
        let p = BurstyParams::small();
        let s = shift_distances(&p, 9);
        assert_eq!(s, shift_distances(&p, 9));
        assert_eq!(s.len(), p.burst_rounds as usize);
        assert!(s.iter().all(|&d| (1..9).contains(&d)));
        assert!(shift_distances(&p, 1).is_empty());
    }

    #[test]
    fn bursty_pattern_is_deadlock_free() {
        let m = tera100();
        for ranks in [1usize, 2, 3, 7, 8, 16] {
            let w = workload(BurstyParams::small(), ranks, &m, Some(2)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
    }

    #[test]
    fn bursts_dominate_the_byte_budget() {
        let m = tera100();
        let w = workload(BurstyParams::small(), 8, &m, Some(1)).unwrap();
        let (quiet, burst): (u64, u64) =
            w.programs[0]
                .body
                .iter()
                .fold((0, 0), |(q, b), op| match op {
                    Op::Coll { bytes: 8, .. } => (q + 8, b),
                    Op::Coll { bytes, .. } => (q, b + bytes),
                    Op::Exchange { bytes, .. } => (q, b + bytes),
                    _ => (q, b),
                });
        assert!(
            burst > quiet * 100,
            "burst bytes ({burst}) must dwarf quiet bytes ({quiet})"
        );
    }
}
