//! NAS problem classes and their published problem sizes.
//!
//! Grid sizes and iteration counts follow the official NPB tables; total
//! flop counts are the published operation counts rounded (they only set
//! the compute/communication ratio, which is what the overhead figures
//! depend on).

/// NAS problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    S,
    W,
    A,
    B,
    C,
    D,
}

impl Class {
    /// All classes, smallest first.
    pub const ALL: [Class; 6] = [Class::S, Class::W, Class::A, Class::B, Class::C, Class::D];

    /// Parses "S" / "W" / "A" / "B" / "C" / "D".
    pub fn parse(s: &str) -> Option<Class> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            "B" => Some(Class::B),
            "C" => Some(Class::C),
            "D" => Some(Class::D),
            _ => None,
        }
    }

    /// Class letter.
    pub fn letter(self) -> char {
        match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
            Class::D => 'D',
        }
    }

    fn idx(self) -> usize {
        match self {
            Class::S => 0,
            Class::W => 1,
            Class::A => 2,
            Class::B => 3,
            Class::C => 4,
            Class::D => 5,
        }
    }

    /// Cubic grid edge for BT/SP/LU.
    pub fn grid3(self) -> usize {
        [12, 24, 64, 102, 162, 408][self.idx()]
    }

    /// BT iteration count.
    pub fn bt_iters(self) -> u32 {
        [60, 200, 200, 200, 200, 250][self.idx()]
    }

    /// SP iteration count.
    pub fn sp_iters(self) -> u32 {
        [100, 400, 400, 400, 400, 500][self.idx()]
    }

    /// LU iteration count.
    pub fn lu_iters(self) -> u32 {
        [50, 300, 250, 250, 250, 300][self.idx()]
    }

    /// CG matrix order `na`.
    pub fn cg_na(self) -> usize {
        [1_400, 7_000, 14_000, 75_000, 150_000, 1_500_000][self.idx()]
    }

    /// CG nonzeros per row.
    pub fn cg_nonzer(self) -> usize {
        [7, 8, 11, 13, 15, 21][self.idx()]
    }

    /// CG outer iterations.
    pub fn cg_iters(self) -> u32 {
        [15, 15, 15, 75, 75, 100][self.idx()]
    }

    /// FT grid (nx, ny, nz).
    pub fn ft_grid(self) -> (usize, usize, usize) {
        [
            (64, 64, 64),
            (128, 128, 32),
            (256, 256, 128),
            (512, 256, 256),
            (512, 512, 512),
            (2048, 1024, 1024),
        ][self.idx()]
    }

    /// FT iteration count.
    pub fn ft_iters(self) -> u32 {
        [6, 6, 6, 20, 20, 25][self.idx()]
    }

    /// Approximate total flop counts, Gop (published NPB operation counts,
    /// rounded; S/W extrapolated).
    pub fn bt_gops(self) -> f64 {
        [0.3, 7.0, 168.3, 721.5, 2_924.0, 58_000.0][self.idx()]
    }

    /// SP total flops, Gop.
    pub fn sp_gops(self) -> f64 {
        [0.2, 7.0, 85.0, 447.1, 2_900.0, 57_500.0][self.idx()]
    }

    /// LU total flops, Gop.
    pub fn lu_gops(self) -> f64 {
        [0.2, 6.0, 119.3, 544.5, 2_200.0, 41_000.0][self.idx()]
    }

    /// CG total flops, Gop.
    pub fn cg_gops(self) -> f64 {
        [0.07, 0.4, 1.5, 54.9, 143.3, 1_742.0][self.idx()]
    }

    /// FT total flops, Gop.
    pub fn ft_gops(self) -> f64 {
        [0.2, 0.6, 7.1, 92.8, 390.0, 4_500.0][self.idx()]
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for c in Class::ALL {
            assert_eq!(Class::parse(&c.letter().to_string()), Some(c));
            assert_eq!(
                Class::parse(&c.letter().to_lowercase().to_string()),
                Some(c)
            );
        }
        assert_eq!(Class::parse("Z"), None);
    }

    #[test]
    fn sizes_grow_with_class() {
        for w in Class::ALL.windows(2) {
            assert!(w[0].grid3() <= w[1].grid3());
            assert!(w[0].cg_na() <= w[1].cg_na());
            assert!(w[0].bt_gops() <= w[1].bt_gops());
            assert!(w[0].ft_gops() <= w[1].ft_gops());
        }
    }

    #[test]
    fn paper_classes_match_npb_tables() {
        assert_eq!(Class::C.grid3(), 162);
        assert_eq!(Class::D.grid3(), 408);
        assert_eq!(Class::C.cg_na(), 150_000);
        assert_eq!(Class::D.cg_na(), 1_500_000);
        assert_eq!(Class::C.ft_grid(), (512, 512, 512));
        assert_eq!(Class::D.ft_grid(), (2048, 1024, 1024));
        assert_eq!(Class::D.sp_iters(), 500);
    }
}
