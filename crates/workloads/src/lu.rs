//! LU: pipelined SSOR on a 2-D process grid.
//!
//! Each iteration performs a lower-triangular sweep (wavefront from the
//! north-west corner: receive from north and west, compute, send to south
//! and east) and an upper-triangular sweep in the opposite direction, in
//! `S` pipeline chunks along z. Corner ranks touch 2 neighbours, edge
//! ranks 3 and interior ranks 4 — the exact send-count gradient the
//! paper's density map (Figure 18a) visualizes.

use crate::class::Class;
use crate::util::{near_square_factors, Grid2};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// Pipeline chunks per sweep (the real code pipelines per k-plane; chunking
/// keeps simulated op counts tractable while preserving the wavefront).
pub const PIPELINE_CHUNKS: usize = 16;

/// Builds an LU workload on any factorable rank count (near-square grid).
pub fn workload(
    class: Class,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    if ranks == 0 {
        return Err(WlError::InvalidRanks {
            bench: "LU",
            ranks,
            need: "at least one rank",
        });
    }
    let (px, py) = near_square_factors(ranks);
    let grid = Grid2::new(px, py);
    let n = class.grid3();
    let iters = iters_override.unwrap_or_else(|| class.lu_iters());
    let nominal_iters = class.lu_iters() as f64;
    let chunks = PIPELINE_CHUNKS.min(n);

    // Each wavefront step moves a face strip: 5 components × (N/px) cells ×
    // (N/chunks) planes.
    let face_x = (5.0 * 8.0 * (n as f64 / py as f64) * (n as f64 / chunks as f64)).max(64.0) as u64;
    let face_y = (5.0 * 8.0 * (n as f64 / px as f64) * (n as f64 / chunks as f64)).max(64.0) as u64;

    let flops_rank_iter = class.lu_gops() * 1e9 / (nominal_iters * ranks as f64);
    let stage_ns = machine.compute_ns(flops_rank_iter * 0.7 / (2.0 * chunks as f64));
    let pre_ns = machine.compute_ns(flops_rank_iter * 0.3);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let north = grid.neighbor(r, 0, -1);
        let west = grid.neighbor(r, -1, 0);
        let south = grid.neighbor(r, 0, 1);
        let east = grid.neighbor(r, 1, 0);

        let mut body = Vec::new();
        body.push(Op::Compute { ns: pre_ns });
        // Lower sweep: NW → SE wavefront.
        for _ in 0..chunks {
            if let Some(nb) = north {
                body.push(Op::Recv { from: nb });
            }
            if let Some(nb) = west {
                body.push(Op::Recv { from: nb });
            }
            body.push(Op::Compute { ns: stage_ns });
            if let Some(nb) = south {
                body.push(Op::Send {
                    to: nb,
                    bytes: face_y,
                });
            }
            if let Some(nb) = east {
                body.push(Op::Send {
                    to: nb,
                    bytes: face_x,
                });
            }
        }
        // Upper sweep: SE → NW wavefront.
        for _ in 0..chunks {
            if let Some(nb) = south {
                body.push(Op::Recv { from: nb });
            }
            if let Some(nb) = east {
                body.push(Op::Recv { from: nb });
            }
            body.push(Op::Compute { ns: stage_ns });
            if let Some(nb) = north {
                body.push(Op::Send {
                    to: nb,
                    bytes: face_y,
                });
            }
            if let Some(nb) = west {
                body.push(Op::Send {
                    to: nb,
                    bytes: face_x,
                });
            }
        }
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 40,
        });

        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 40,
            }],
        };
    }
    Ok(w)
}

/// Sends per iteration for a rank — used by tests and the density-map
/// ground truth: `2 × chunks × (neighbours toward SE)` + the symmetric
/// upper sweep.
pub fn sends_per_iter(grid: Grid2, rank: usize) -> usize {
    let chunks = PIPELINE_CHUNKS;
    let lower = [(0, 1), (1, 0)]
        .iter()
        .filter(|&&(dx, dy)| grid.neighbor(rank, dx, dy).is_some())
        .count();
    let upper = [(0, -1), (-1, 0)]
        .iter()
        .filter(|&&(dx, dy)| grid.neighbor(rank, dx, dy).is_some())
        .count();
    chunks * (lower + upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn runs_on_non_square_counts() {
        let m = tera100();
        for ranks in [1, 2, 6, 12, 16] {
            let w = workload(Class::S, ranks, &m, Some(2)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
    }

    #[test]
    fn send_counts_match_neighbour_degree() {
        let m = tera100();
        // Class A: grid 64 ≥ PIPELINE_CHUNKS so the helper's chunk count
        // matches the generated one.
        let w = workload(Class::A, 16, &m, Some(1)).unwrap();
        let grid = Grid2::new(4, 4);
        for r in 0..16 {
            let sends = w.programs[r]
                .body
                .iter()
                .filter(|o| matches!(o, Op::Send { .. }))
                .count();
            assert_eq!(sends, sends_per_iter(grid, r), "rank {r} send count");
        }
        // Corner < edge < interior.
        let corner = sends_per_iter(grid, 0);
        let edge = sends_per_iter(grid, 1);
        let interior = sends_per_iter(grid, 5);
        assert!(corner < edge && edge < interior);
        assert_eq!(interior, PIPELINE_CHUNKS * 4);
    }

    #[test]
    fn wavefront_finishes_in_order() {
        // The SE corner can only finish the lower sweep after the NW corner
        // has fed the pipeline; no deadlock on rectangular grids.
        let m = tera100();
        let w = workload(Class::W, 12, &m, Some(3)).unwrap();
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        assert!(r.elapsed_s > 0.0);
    }
}
