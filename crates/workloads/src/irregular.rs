//! Irregular sparse-graph kernel: a seeded random communication graph with
//! uneven vertex partitions, the shape of unstructured-mesh and sparse
//! matrix-vector codes. Unlike the NAS grids, neither the neighbour set nor
//! the per-rank work is regular, so the time-resolved load-balance and
//! communication-efficiency series show real structure.
//!
//! The rank graph is a ring (for connectivity) plus seeded random chords.
//! All pairwise exchanges run in global lexicographic edge order, which is
//! deadlock-free for arbitrary graphs (see [`crate::util::lexicographic_peers`]).

use crate::util::{lexicographic_peers, SplitMix64};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};
use std::collections::BTreeSet;

/// Irregular-kernel problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrregularParams {
    /// Global vertex count, partitioned unevenly across ranks.
    pub vertices: usize,
    /// Target mean rank-graph degree (ring edges included).
    pub avg_degree: usize,
    /// Seed for graph shape, edge weights and partition skew.
    pub seed: u64,
    /// Iterations (e.g. SpMV sweeps).
    pub steps: u32,
    /// Flops per local vertex per sweep.
    pub flops_per_vertex: f64,
    /// Halo bytes per shared edge unit.
    pub bytes_per_edge: u64,
}

impl Default for IrregularParams {
    fn default() -> Self {
        IrregularParams {
            vertices: 1 << 20,
            avg_degree: 6,
            seed: 0xA11C_E5ED,
            steps: 200,
            flops_per_vertex: 400.0,
            bytes_per_edge: 32 * 1024,
        }
    }
}

impl IrregularParams {
    /// A small instance for live in-process runs and tests.
    pub fn small() -> IrregularParams {
        IrregularParams {
            vertices: 1 << 14,
            avg_degree: 4,
            seed: 0xA11C_E5ED,
            steps: 12,
            flops_per_vertex: 400.0,
            bytes_per_edge: 4 * 1024,
        }
    }
}

/// The seeded rank adjacency: ring plus random chords, as a sorted edge set
/// (`(lo, hi)` pairs). Exposed so tests can check the schedule against it.
pub fn rank_graph(params: &IrregularParams, ranks: usize) -> BTreeSet<(u32, u32)> {
    let mut edges = BTreeSet::new();
    if ranks < 2 {
        return edges;
    }
    let n = ranks as u32;
    for r in 0..n {
        let next = (r + 1) % n;
        edges.insert((r.min(next), r.max(next)));
    }
    // Chords until the mean degree target (2E/N) is met; draws are bounded
    // so dense targets on tiny rank counts terminate.
    let target = ranks * params.avg_degree / 2;
    let mut rng = SplitMix64::new(params.seed);
    let mut attempts = 0usize;
    while edges.len() < target && attempts < 16 * target.max(1) {
        attempts += 1;
        let a = rng.below(n as u64) as u32;
        let b = rng.below(n as u64) as u32;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    edges
}

/// Builds the irregular workload on any non-zero rank count.
pub fn workload(
    params: IrregularParams,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    if ranks == 0 {
        return Err(WlError::InvalidRanks {
            bench: "Irregular",
            ranks,
            need: "at least one rank",
        });
    }
    let iters = iters_override.unwrap_or(params.steps);
    let edges = rank_graph(&params, ranks);

    // Uneven partition: each rank owns base ± up to 50%, seeded.
    let base = params.vertices as f64 / ranks as f64;
    let mut rng = SplitMix64::new(params.seed ^ 0x5EED_FACE);
    let local: Vec<f64> = (0..ranks).map(|_| base * (0.5 + rng.unit())).collect();
    // Seeded per-edge weights (1..=4 halo units).
    let weights: Vec<u64> = edges.iter().map(|_| 1 + rng.below(4)).collect();

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for (r, &owned) in local.iter().enumerate() {
        let mut body = Vec::new();
        for (idx, &(a, b)) in edges.iter().enumerate() {
            if a == r as u32 || b == r as u32 {
                let peer = if a == r as u32 { b } else { a };
                body.push(Op::Exchange {
                    peer,
                    bytes: params.bytes_per_edge * weights[idx],
                });
            }
        }
        debug_assert_eq!(
            body.len(),
            lexicographic_peers(&edges, r as u32).len(),
            "schedule must cover every incident edge"
        );
        body.push(Op::Compute {
            ns: machine.compute_ns(params.flops_per_vertex * owned),
        });
        // Residual norm.
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 8,
        });
        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 8,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn graph_is_connected_and_seed_stable() {
        let p = IrregularParams::small();
        let edges = rank_graph(&p, 12);
        assert_eq!(edges, rank_graph(&p, 12), "seeded graph is reproducible");
        // Ring edges guarantee connectivity.
        for r in 0..12u32 {
            assert!(!lexicographic_peers(&edges, r).is_empty());
        }
        let other = rank_graph(&IrregularParams { seed: 99, ..p }, 12);
        assert_ne!(edges, other, "different seeds give different chords");
    }

    #[test]
    fn irregular_pattern_is_deadlock_free() {
        let m = tera100();
        for ranks in [1usize, 2, 3, 5, 8, 13, 32] {
            let w = workload(IrregularParams::small(), ranks, &m, Some(3)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
    }

    #[test]
    fn partition_is_uneven() {
        let m = tera100();
        let w = workload(IrregularParams::small(), 8, &m, Some(1)).unwrap();
        let computes: Vec<u64> = (0..8)
            .map(|r| {
                w.programs[r]
                    .body
                    .iter()
                    .filter_map(|o| match o {
                        Op::Compute { ns } => Some(*ns as u64),
                        _ => None,
                    })
                    .sum()
            })
            .collect();
        let min = computes.iter().min().unwrap();
        let max = computes.iter().max().unwrap();
        assert!(
            max > min,
            "seeded skew must make compute uneven: {computes:?}"
        );
    }
}
