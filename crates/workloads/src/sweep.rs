//! BT and SP: square process grids with 3-direction pipelined line solves
//! (the NPB multi-partition scheme).
//!
//! Both benchmarks decompose an `N³` grid over `P = k²` ranks and, each
//! iteration, sweep the three spatial directions with wavefront pipelines:
//! along x rows, along y columns, and along the grid diagonal (standing in
//! for the multi-partition z direction, which gives SP its banded
//! communication matrix — Figure 17d). Each sweep stage moves one cell
//! face (`5 × (N/k)²` doubles) between line neighbours.

use crate::class::Class;
use crate::util::{exact_sqrt, Grid2};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// Which of the two sweep benchmarks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBench {
    Bt,
    Sp,
}

impl SweepBench {
    fn name(self) -> &'static str {
        match self {
            SweepBench::Bt => "BT",
            SweepBench::Sp => "SP",
        }
    }

    fn iters(self, class: Class) -> u32 {
        match self {
            SweepBench::Bt => class.bt_iters(),
            SweepBench::Sp => class.sp_iters(),
        }
    }

    fn gops(self, class: Class) -> f64 {
        match self {
            SweepBench::Bt => class.bt_gops(),
            SweepBench::Sp => class.sp_gops(),
        }
    }

    /// Face-message scale: BT lines carry block-tridiagonal systems
    /// (5×5 blocks), SP scalar pentadiagonal ones.
    fn face_factor(self) -> f64 {
        match self {
            SweepBench::Bt => 2.5,
            SweepBench::Sp => 1.0,
        }
    }
}

/// Builds a BT or SP workload on `ranks = k²` processes.
///
/// `iters_override` replaces the NPB iteration count (used by the benches
/// to bound simulation cost; per-iteration behaviour is steady-state, so
/// relative overheads are unaffected).
pub fn workload(
    bench: SweepBench,
    class: Class,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    let k = exact_sqrt(ranks).ok_or(WlError::InvalidRanks {
        bench: bench.name(),
        ranks,
        need: "a perfect square",
    })?;
    let grid = Grid2::new(k, k);
    let n = class.grid3();
    let iters = iters_override.unwrap_or_else(|| bench.iters(class));
    let nominal_iters = bench.iters(class) as f64;

    // Face message: 5 solution components per cell of an (N/k)² face.
    let cell = n as f64 / k as f64;
    let face_bytes = (bench.face_factor() * 5.0 * 8.0 * cell * cell).max(64.0) as u64;

    // Compute budget per rank per iteration, from the published totals.
    let flops_rank_iter = bench.gops(class) * 1e9 / (nominal_iters * ranks as f64);
    // Half the work is in the RHS/prefactor phase, half pipelined through
    // the 6k sweep stages (3 directions × forward+backward × k cells).
    let stages = 6 * k;
    let pre_ns = machine.compute_ns(flops_rank_iter * 0.5);
    let stage_ns = machine.compute_ns(flops_rank_iter * 0.5 / stages as f64);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let mut body = Vec::new();
        body.push(Op::Compute { ns: pre_ns });

        // One wavefront sweep along an axis: `axis` selects the (dx,dy)
        // direction; `fwd` its orientation.
        let sweep = |body: &mut Vec<Op>, dx: isize, dy: isize, fwd: bool| {
            let (dx, dy) = if fwd { (dx, dy) } else { (-dx, -dy) };
            let upstream = grid.neighbor(r, -dx, -dy);
            let downstream = grid.neighbor(r, dx, dy);
            for _cell in 0..k {
                if let Some(up) = upstream {
                    body.push(Op::Recv { from: up });
                }
                body.push(Op::Compute { ns: stage_ns });
                if let Some(down) = downstream {
                    body.push(Op::Send {
                        to: down,
                        bytes: face_bytes,
                    });
                }
            }
        };

        for (dx, dy) in [(1isize, 0isize), (0, 1), (1, 1)] {
            sweep(&mut body, dx, dy, true);
            sweep(&mut body, dx, dy, false);
        }
        // Residual norm once per iteration.
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 40,
        });

        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 40,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn requires_square_rank_count() {
        let m = tera100();
        assert!(workload(SweepBench::Sp, Class::A, 7, &m, None).is_err());
        assert!(workload(SweepBench::Bt, Class::A, 9, &m, None).is_ok());
    }

    #[test]
    fn runs_to_completion_without_deadlock() {
        let m = tera100();
        for bench in [SweepBench::Bt, SweepBench::Sp] {
            let w = workload(bench, Class::S, 16, &m, Some(3)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "{:?}", bench);
        }
    }

    #[test]
    fn message_counts_follow_the_grid() {
        let m = tera100();
        let w = workload(SweepBench::Sp, Class::S, 9, &m, Some(1)).unwrap();
        // Corner (0,0): downstream only in fwd x/y/diag, upstream only in
        // backward sweeps. Sends per iteration = 3 sweeps × k.
        let k = 3;
        let corner_sends = w.programs[0]
            .body
            .iter()
            .filter(|o| matches!(o, Op::Send { .. }))
            .count();
        assert_eq!(corner_sends, 3 * k, "corner sends fwd x, fwd y, fwd diag");
        // Center (1,1) sends in all 6 sweeps.
        let center_sends = w.programs[4]
            .body
            .iter()
            .filter(|o| matches!(o, Op::Send { .. }))
            .count();
        assert_eq!(center_sends, 6 * k);
    }

    #[test]
    fn class_d_is_heavier_than_class_c() {
        let m = tera100();
        let wc = workload(SweepBench::Sp, Class::C, 16, &m, Some(2)).unwrap();
        let wd = workload(SweepBench::Sp, Class::D, 16, &m, Some(2)).unwrap();
        let tc = simulate(&wc, &m, &ToolModel::None).unwrap().elapsed_s;
        let td = simulate(&wd, &m, &ToolModel::None).unwrap().elapsed_s;
        assert!(td > tc * 5.0, "C={tc} D={td}");
    }

    #[test]
    fn bi_class_c_exceeds_class_d() {
        // The paper's key observation: smaller classes have higher
        // instrumentation-data bandwidth (more calls per unit time).
        let m = tera100();
        let tool = ToolModel::online_coupling(1.0);
        let wc = workload(SweepBench::Sp, Class::C, 900, &m, Some(3)).unwrap();
        let wd = workload(SweepBench::Sp, Class::D, 900, &m, Some(3)).unwrap();
        let rc = simulate(&wc, &m, &tool).unwrap();
        let rd = simulate(&wd, &m, &tool).unwrap();
        assert!(
            rc.bi_bps() > 3.0 * rd.bi_bps(),
            "Bi(SP.C)={} Bi(SP.D)={}",
            rc.bi_bps(),
            rd.bi_bps()
        );
    }

    #[test]
    fn bi_sp_c_900_in_paper_range() {
        // Paper: Bi(SP.C) = 2.37 GB/s at 900 cores. Accept the right order
        // of magnitude (the substrate is a model, not Tera 100).
        let m = tera100();
        let w = workload(SweepBench::Sp, Class::C, 900, &m, Some(5)).unwrap();
        let r = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        let bi = r.bi_bps() / 1e9;
        assert!(
            (0.5..10.0).contains(&bi),
            "Bi(SP.C@900) = {bi} GB/s, expected ~2.4"
        );
    }
}
