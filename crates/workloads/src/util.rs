//! Process-grid helpers shared by the generators.

use std::collections::BTreeSet;

/// Tiny deterministic PRNG (splitmix64) for seeded workload generators.
/// Every draw depends only on the seed and draw count, so a workload built
/// twice from the same parameters is identical op for op.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Peers of `rank` over a symmetric edge set, in *global lexicographic edge
/// order*. Scheduling pairwise exchanges this way is deadlock-free for any
/// graph: the globally smallest pending edge is always the next op on both
/// of its endpoints, so some matched pair can always proceed.
pub fn lexicographic_peers(edges: &BTreeSet<(u32, u32)>, rank: u32) -> Vec<u32> {
    edges
        .iter()
        .filter_map(|&(a, b)| {
            if a == rank {
                Some(b)
            } else if b == rank {
                Some(a)
            } else {
                None
            }
        })
        .collect()
}

/// Integer square root; `Some(k)` iff `n == k*k`.
pub fn exact_sqrt(n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let k = (n as f64).sqrt().round() as usize;
    (k.saturating_sub(1)..=k + 1).find(|&cand| cand * cand == n)
}

/// True iff `n` is a power of two.
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Near-square factorization `(px, py)` with `px * py == n`, `px <= py`.
pub fn near_square_factors(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut best = (1, n);
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = (d, n / d);
        }
        d += 1;
    }
    best
}

/// 2-D process grid with row-major rank layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    pub px: usize,
    pub py: usize,
}

impl Grid2 {
    pub fn new(px: usize, py: usize) -> Grid2 {
        Grid2 { px, py }
    }

    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// `(x, y)` coordinates of a rank.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank % self.px, rank / self.px)
    }

    /// Rank at coordinates.
    pub fn rank(&self, x: usize, y: usize) -> usize {
        y * self.px + x
    }

    /// Neighbour in ±x / ±y if inside the open boundary.
    pub fn neighbor(&self, rank: usize, dx: isize, dy: isize) -> Option<u32> {
        let (x, y) = self.coords(rank);
        let nx = x as isize + dx;
        let ny = y as isize + dy;
        if nx < 0 || ny < 0 || nx >= self.px as isize || ny >= self.py as isize {
            None
        } else {
            Some(self.rank(nx as usize, ny as usize) as u32)
        }
    }

    /// Number of open-boundary 4-neighbours (2 at corners, 3 on edges,
    /// 4 inside) — the gradient the LU density maps show.
    pub fn degree(&self, rank: usize) -> usize {
        [(1, 0), (-1, 0), (0, 1), (0, -1)]
            .iter()
            .filter(|&&(dx, dy)| self.neighbor(rank, dx, dy).is_some())
            .count()
    }
}

/// Emits the two halo-exchange ops along one axis in deadlock-free parity
/// order: even-coordinate ranks talk `+` then `-`, odd ranks `-` then `+`.
pub fn parity_exchange_order(coord: usize, plus: Option<u32>, minus: Option<u32>) -> Vec<u32> {
    let mut order = Vec::with_capacity(2);
    if coord.is_multiple_of(2) {
        if let Some(p) = plus {
            order.push(p);
        }
        if let Some(m) = minus {
            order.push(m);
        }
    } else {
        if let Some(m) = minus {
            order.push(m);
        }
        if let Some(p) = plus {
            order.push(p);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = SplitMix64::new(7).unit();
        assert!((0.0..1.0).contains(&u));
        assert!(SplitMix64::new(9).below(5) < 5);
    }

    #[test]
    fn lexicographic_peers_follow_global_edge_order() {
        let edges: BTreeSet<(u32, u32)> = [(0, 3), (1, 2), (0, 1), (2, 3)].into_iter().collect();
        // Rank 0's incident edges in global order: (0,1) then (0,3).
        assert_eq!(lexicographic_peers(&edges, 0), vec![1, 3]);
        // Rank 2: (1,2) then (2,3).
        assert_eq!(lexicographic_peers(&edges, 2), vec![1, 3]);
        assert_eq!(lexicographic_peers(&edges, 3), vec![0, 2]);
    }

    #[test]
    fn exact_sqrt_detects_squares() {
        assert_eq!(exact_sqrt(1), Some(1));
        assert_eq!(exact_sqrt(4), Some(2));
        assert_eq!(exact_sqrt(900), Some(30));
        assert_eq!(exact_sqrt(2025), Some(45));
        assert_eq!(exact_sqrt(8281), Some(91));
        assert_eq!(exact_sqrt(2), None);
        assert_eq!(exact_sqrt(0), None);
        assert_eq!(exact_sqrt(8280), None);
    }

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1));
        assert!(is_pow2(128));
        assert!(!is_pow2(0));
        assert!(!is_pow2(48));
    }

    #[test]
    fn near_square_prefers_balance() {
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(12), (3, 4));
        assert_eq!(near_square_factors(1024), (32, 32));
        assert_eq!(near_square_factors(7), (1, 7));
    }

    #[test]
    fn grid_coords_roundtrip() {
        let g = Grid2::new(4, 3);
        for r in 0..g.ranks() {
            let (x, y) = g.coords(r);
            assert_eq!(g.rank(x, y), r);
        }
    }

    #[test]
    fn degrees_form_corner_edge_interior_gradient() {
        let g = Grid2::new(4, 4);
        assert_eq!(g.degree(g.rank(0, 0)), 2);
        assert_eq!(g.degree(g.rank(1, 0)), 3);
        assert_eq!(g.degree(g.rank(1, 1)), 4);
        assert_eq!(g.degree(g.rank(3, 3)), 2);
    }

    #[test]
    fn parity_order_matches_between_neighbors() {
        // Rank with even x lists +x first; its +x neighbour (odd x) lists
        // -x (i.e. us) first: the pairs line up without deadlock.
        let g = Grid2::new(4, 1);
        for x in 0..3usize {
            let a = parity_exchange_order(
                x,
                g.neighbor(g.rank(x, 0), 1, 0),
                g.neighbor(g.rank(x, 0), -1, 0),
            );
            let b = parity_exchange_order(
                x + 1,
                g.neighbor(g.rank(x + 1, 0), 1, 0),
                g.neighbor(g.rank(x + 1, 0), -1, 0),
            );
            let pos_a = a
                .iter()
                .position(|&p| p == g.rank(x + 1, 0) as u32)
                .unwrap();
            let pos_b = b.iter().position(|&p| p == g.rank(x, 0) as u32).unwrap();
            assert_eq!(
                pos_a, pos_b,
                "x={x}: both sides must schedule the pair at the same step"
            );
        }
    }
}
