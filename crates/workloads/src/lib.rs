//! # opmr-workloads — NAS-MPI and EulerMHD communication-kernel generators
//!
//! The paper evaluates on NAS-MPI benchmarks (BT, CG, FT, LU, SP; classes C
//! and D) and EulerMHD, a C++ MPI code solving ideal MHD at high order on a
//! 2-D Cartesian mesh. This crate reproduces what the evaluation actually
//! consumes from those codes: their **process topology**, per-iteration
//! **message pattern and sizes**, and **compute/communication ratio**
//! (which sets the instrumentation-data bandwidth `Bi`).
//!
//! Each generator builds an [`opmr_netsim::Workload`]: one op program per
//! rank, plus collective groups. The same programs can be executed *live*
//! on the in-process runtime (the `opmr-core` driver maps ops onto
//! instrumented MPI calls) or *simulated* at paper scale by the
//! discrete-event engine.
//!
//! Patterns implemented:
//!
//! * **BT / SP** — square process grids running 3-direction pipelined line
//!   solves (the multi-partition scheme): per direction, `√P` wavefront
//!   stages of small face messages; BT does fewer, heavier iterations than
//!   SP.
//! * **LU** — 2-D pipelined SSOR wavefront: receive from north/west, send
//!   to south/east, per k-chunk, lower then upper sweep — giving corner,
//!   edge and interior ranks distinct send counts (Figure 18a).
//! * **CG** — power-of-two grid: transpose-exchange plus logarithmic
//!   row-fold each sub-iteration (the banded matrix of Figure 17a/b).
//! * **FT** — transpose-based 3-D FFT: one all-to-all per iteration.
//! * **EulerMHD** — 2-D Cartesian 4-neighbour halo exchange with a global
//!   `dt` reduction per step (Figure 17c).
//!
//! Beyond the paper's regular kernels, three *irregular* generators stress
//! the time-resolved metrics plane:
//!
//! * **Irregular** — seeded sparse rank graph (ring + random chords) with
//!   uneven vertex partitions, exchanged in deadlock-free global
//!   lexicographic edge order.
//! * **Straggler** — bulk-synchronous chain where a seeded rank subset
//!   computes a multiple of everyone else's work, so fast ranks pile up
//!   wait time at the step reduction.
//! * **Bursty** — quiet compute phases punctuated by all-to-all plus
//!   seeded ring-shift exchange bursts, swinging the event rate by orders
//!   of magnitude between metric windows.

pub mod bursty;
pub mod catalog;
pub mod cg;
pub mod class;
pub mod euler;
pub mod ft;
pub mod irregular;
pub mod lu;
pub mod straggler;
pub mod sweep;
pub mod util;

pub use catalog::{by_name, Benchmark, BENCHMARKS};
pub use class::Class;

/// Workload-construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WlError {
    /// The benchmark cannot run on this many ranks.
    InvalidRanks {
        bench: &'static str,
        ranks: usize,
        need: &'static str,
    },
    /// Unknown benchmark name in [`by_name`].
    UnknownBenchmark(String),
}

impl std::fmt::Display for WlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WlError::InvalidRanks { bench, ranks, need } => {
                write!(f, "{bench} cannot run on {ranks} ranks (needs {need})")
            }
            WlError::UnknownBenchmark(name) => write!(f, "unknown benchmark {name:?}"),
        }
    }
}

impl std::error::Error for WlError {}

/// Result alias for generators.
pub type Result<T> = std::result::Result<T, WlError>;
