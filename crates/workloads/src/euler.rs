//! EulerMHD: high-order ideal-MHD solver on a 2-D Cartesian mesh.
//!
//! The paper describes it as "a middle sized C++ MPI application which
//! simulates Euler ideal magneto-hydrodynamic at high order on a 2D
//! Cartesian mesh"; its communication kernel is a 4-neighbour halo
//! exchange (two ghost layers, 9 conserved components) plus a global `dt`
//! reduction every step — giving the regular grid topology of Figure 17(c).

use crate::util::{near_square_factors, parity_exchange_order, Grid2};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// EulerMHD problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EulerParams {
    /// Global square mesh edge (cells).
    pub mesh: usize,
    /// Conserved components per cell (ρ, ρu⃗, B⃗, E, ψ).
    pub components: usize,
    /// Ghost-cell layers exchanged (high order ⇒ 2).
    pub ghosts: usize,
    /// Time steps.
    pub steps: u32,
    /// Flops per cell per step (high-order reconstruction + Riemann).
    pub flops_per_cell: f64,
}

impl Default for EulerParams {
    fn default() -> Self {
        EulerParams {
            mesh: 4096,
            components: 9,
            ghosts: 2,
            steps: 500,
            flops_per_cell: 8_000.0,
        }
    }
}

impl EulerParams {
    /// A small instance for live in-process runs and tests.
    pub fn small() -> EulerParams {
        EulerParams {
            mesh: 256,
            components: 9,
            ghosts: 2,
            steps: 20,
            flops_per_cell: 8_000.0,
        }
    }
}

/// Builds an EulerMHD workload on any factorable rank count.
pub fn workload(
    params: EulerParams,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    if ranks == 0 {
        return Err(WlError::InvalidRanks {
            bench: "EulerMHD",
            ranks,
            need: "at least one rank",
        });
    }
    let (px, py) = near_square_factors(ranks);
    let grid = Grid2::new(px, py);
    let iters = iters_override.unwrap_or(params.steps);

    let cells_x = params.mesh as f64 / px as f64;
    let cells_y = params.mesh as f64 / py as f64;
    // Halo strip: ghost layers × strip length × components × f64.
    let halo_x = (8.0 * params.ghosts as f64 * cells_y * params.components as f64).max(64.0) as u64;
    let halo_y = (8.0 * params.ghosts as f64 * cells_x * params.components as f64).max(64.0) as u64;

    let flops_rank_iter = params.flops_per_cell * cells_x * cells_y;
    let compute_ns = machine.compute_ns(flops_rank_iter);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let (x, y) = grid.coords(r);
        let mut body = Vec::new();
        // Halo exchange, x axis then y axis, parity-ordered.
        for peer in parity_exchange_order(x, grid.neighbor(r, 1, 0), grid.neighbor(r, -1, 0)) {
            body.push(Op::Exchange {
                peer,
                bytes: halo_x,
            });
        }
        for peer in parity_exchange_order(y, grid.neighbor(r, 0, 1), grid.neighbor(r, 0, -1)) {
            body.push(Op::Exchange {
                peer,
                bytes: halo_y,
            });
        }
        body.push(Op::Compute { ns: compute_ns });
        // Global CFL time-step reduction.
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 8,
        });

        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Allreduce,
                bytes: 8,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn halo_pattern_is_deadlock_free() {
        let m = tera100();
        for ranks in [1usize, 2, 3, 6, 16, 48, 64] {
            let w = workload(EulerParams::small(), ranks, &m, Some(3)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
    }

    #[test]
    fn exchange_counts_match_neighbour_degree() {
        let m = tera100();
        let w = workload(EulerParams::small(), 16, &m, Some(1)).unwrap();
        let grid = Grid2::new(4, 4);
        for r in 0..16 {
            let n = w.programs[r]
                .body
                .iter()
                .filter(|o| matches!(o, Op::Exchange { .. }))
                .count();
            assert_eq!(n, grid.degree(r), "rank {r}");
        }
    }

    #[test]
    fn compute_dominates_at_default_size() {
        // EulerMHD is compute-heavy: most virtual time must be computation,
        // which is why its instrumentation overhead is low in Figure 15.
        let m = tera100();
        let w = workload(EulerParams::default(), 64, &m, Some(3)).unwrap();
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        let compute_s = m.compute_ns(8_000.0 * (4096.0 * 4096.0 / 64.0)) * 3.0 / 1e9;
        assert!(
            r.elapsed_s < compute_s * 1.3,
            "communication should be a small fraction"
        );
    }
}
