//! Seeded straggler generator: a bulk-synchronous chain where a seeded
//! subset of ranks computes a multiple of everyone else's work. Each step
//! ends in a global reduction, so the imbalance surfaces as wait time on
//! the fast ranks — the canonical low-LB / high-serialization signature the
//! time-resolved metrics plane is built to expose.

use crate::util::{parity_exchange_order, Grid2, SplitMix64};
use crate::{Result, WlError};
use opmr_netsim::{CollKind, Machine, Op, Program, Workload};

/// Straggler-chain problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerParams {
    /// Flops per non-straggler rank per step.
    pub flops: f64,
    /// Straggler compute multiplier (> 1 slows the stragglers down).
    pub factor: f64,
    /// Fraction of ranks that straggle (at least one once `ranks > 1`).
    pub share: f64,
    /// Seed selecting which ranks straggle.
    pub seed: u64,
    /// Steps.
    pub steps: u32,
    /// Neighbour-halo bytes per step.
    pub halo_bytes: u64,
}

impl Default for StragglerParams {
    fn default() -> Self {
        StragglerParams {
            flops: 40.0e6,
            factor: 3.0,
            share: 0.125,
            seed: 0x57A6_617E,
            steps: 200,
            halo_bytes: 64 * 1024,
        }
    }
}

impl StragglerParams {
    /// A small instance for live in-process runs and tests.
    pub fn small() -> StragglerParams {
        StragglerParams {
            flops: 2.0e6,
            factor: 3.0,
            share: 0.25,
            seed: 0x57A6_617E,
            steps: 12,
            halo_bytes: 8 * 1024,
        }
    }
}

/// The seeded straggler set for a rank count (sorted, deterministic).
pub fn straggler_ranks(params: &StragglerParams, ranks: usize) -> Vec<u32> {
    if ranks < 2 {
        return Vec::new();
    }
    let want = ((ranks as f64 * params.share).ceil() as usize).clamp(1, ranks - 1);
    let mut rng = SplitMix64::new(params.seed);
    // Partial Fisher-Yates over the rank ids.
    let mut ids: Vec<u32> = (0..ranks as u32).collect();
    for i in 0..want {
        let j = i + rng.below((ranks - i) as u64) as usize;
        ids.swap(i, j);
    }
    let mut picked = ids[..want].to_vec();
    picked.sort_unstable();
    picked
}

/// Builds the straggler workload on any non-zero rank count.
pub fn workload(
    params: StragglerParams,
    ranks: usize,
    machine: &Machine,
    iters_override: Option<u32>,
) -> Result<Workload> {
    if ranks == 0 {
        return Err(WlError::InvalidRanks {
            bench: "Straggler",
            ranks,
            need: "at least one rank",
        });
    }
    let iters = iters_override.unwrap_or(params.steps);
    let slow = straggler_ranks(&params, ranks);
    let chain = Grid2::new(1, ranks); // open 1-D chain, parity-ordered halos
    let base_ns = machine.compute_ns(params.flops);

    let mut w = Workload {
        programs: vec![Program::default(); ranks],
        ..Workload::default()
    };
    let world = w.add_group((0..ranks as u32).collect());

    for r in 0..ranks {
        let mut body = Vec::new();
        for peer in parity_exchange_order(r, chain.neighbor(r, 0, 1), chain.neighbor(r, 0, -1)) {
            body.push(Op::Exchange {
                peer,
                bytes: params.halo_bytes,
            });
        }
        let ns = if slow.binary_search(&(r as u32)).is_ok() {
            base_ns * params.factor
        } else {
            base_ns
        };
        body.push(Op::Compute { ns });
        body.push(Op::Coll {
            group: world,
            kind: CollKind::Allreduce,
            bytes: 8,
        });
        w.programs[r] = Program {
            prologue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
            body,
            iters,
            epilogue: vec![Op::Coll {
                group: world,
                kind: CollKind::Barrier,
                bytes: 0,
            }],
        };
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn straggler_set_is_seeded_and_bounded() {
        let p = StragglerParams::small();
        let s = straggler_ranks(&p, 16);
        assert_eq!(s, straggler_ranks(&p, 16));
        assert_eq!(s.len(), 4, "share 0.25 of 16");
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        let other = straggler_ranks(&StragglerParams { seed: 1, ..p }, 16);
        assert!(s != other || s.len() == 1, "seed moves the set");
        assert!(
            straggler_ranks(&p, 1).is_empty(),
            "solo rank never straggles"
        );
    }

    #[test]
    fn chain_is_deadlock_free_and_slower_with_stragglers() {
        let m = tera100();
        for ranks in [1usize, 2, 5, 8, 16] {
            let w = workload(StragglerParams::small(), ranks, &m, Some(3)).unwrap();
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "ranks={ranks}");
        }
        // The straggler pins each step at factor × base compute.
        let p = StragglerParams::small();
        let fast = workload(StragglerParams { factor: 1.0, ..p }, 8, &m, Some(4)).unwrap();
        let slow = workload(p, 8, &m, Some(4)).unwrap();
        let tf = simulate(&fast, &m, &ToolModel::None).unwrap().elapsed_s;
        let ts = simulate(&slow, &m, &ToolModel::None).unwrap().elapsed_s;
        assert!(ts > tf * 1.5, "stragglers must dominate the critical path");
    }
}
