//! Benchmark registry used by the figure harnesses.

use crate::class::Class;
use crate::euler::EulerParams;
use crate::{cg, euler, ft, lu, sweep, Result, WlError};
use opmr_netsim::{Machine, Workload};

/// A named benchmark of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    Bt,
    Sp,
    Lu,
    Cg,
    Ft,
    EulerMhd,
}

/// All benchmarks, in the order the paper lists them.
pub const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Bt,
    Benchmark::Cg,
    Benchmark::Ft,
    Benchmark::Lu,
    Benchmark::Sp,
    Benchmark::EulerMhd,
];

impl Benchmark {
    /// Canonical name ("BT", "CG", ... "EulerMHD").
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "BT",
            Benchmark::Sp => "SP",
            Benchmark::Lu => "LU",
            Benchmark::Cg => "CG",
            Benchmark::Ft => "FT",
            Benchmark::EulerMhd => "EulerMHD",
        }
    }

    /// Nominal (full-length) iteration count per class.
    pub fn nominal_iters(self, class: Class) -> u32 {
        match self {
            Benchmark::Bt => class.bt_iters(),
            Benchmark::Sp => class.sp_iters(),
            Benchmark::Lu => class.lu_iters(),
            Benchmark::Cg => class.cg_iters(),
            Benchmark::Ft => class.ft_iters(),
            Benchmark::EulerMhd => EulerParams::default().steps,
        }
    }

    /// True when the benchmark can run on this rank count.
    pub fn supports_ranks(self, class: Class, ranks: usize) -> bool {
        self.build(class, ranks, &opmr_netsim::tera100(), Some(1))
            .is_ok()
    }

    /// Builds the workload. `iters_override` bounds simulated iterations.
    pub fn build(
        self,
        class: Class,
        ranks: usize,
        machine: &Machine,
        iters_override: Option<u32>,
    ) -> Result<Workload> {
        match self {
            Benchmark::Bt => {
                sweep::workload(sweep::SweepBench::Bt, class, ranks, machine, iters_override)
            }
            Benchmark::Sp => {
                sweep::workload(sweep::SweepBench::Sp, class, ranks, machine, iters_override)
            }
            Benchmark::Lu => lu::workload(class, ranks, machine, iters_override),
            Benchmark::Cg => cg::workload(class, ranks, machine, iters_override),
            Benchmark::Ft => ft::workload(class, ranks, machine, iters_override),
            Benchmark::EulerMhd => {
                // Class scales the mesh: C → 2048², D → 4096².
                let mesh = match class {
                    Class::S => 256,
                    Class::W => 512,
                    Class::A => 1024,
                    Class::B => 1536,
                    Class::C => 2048,
                    Class::D => 4096,
                };
                euler::workload(
                    EulerParams {
                        mesh,
                        ..EulerParams::default()
                    },
                    ranks,
                    machine,
                    iters_override,
                )
            }
        }
    }
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Result<Benchmark> {
    let lower = name.to_ascii_lowercase();
    BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().to_ascii_lowercase() == lower)
        .ok_or_else(|| WlError::UnknownBenchmark(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("sp").unwrap(), Benchmark::Sp);
        assert_eq!(by_name("EULERMHD").unwrap(), Benchmark::EulerMhd);
        assert!(by_name("mg").is_err());
    }

    #[test]
    fn every_benchmark_simulates_on_a_valid_count() {
        let m = tera100();
        let counts = [
            (Benchmark::Bt, 16),
            (Benchmark::Sp, 16),
            (Benchmark::Lu, 12),
            (Benchmark::Cg, 16),
            (Benchmark::Ft, 16),
            (Benchmark::EulerMhd, 12),
        ];
        for (b, ranks) in counts {
            let w = b.build(Class::S, ranks, &m, Some(2)).unwrap();
            assert_eq!(w.ranks(), ranks);
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "{}", b.name());
        }
    }

    #[test]
    fn rank_validation_is_surfaced() {
        assert!(!Benchmark::Bt.supports_ranks(Class::S, 7));
        assert!(Benchmark::Bt.supports_ranks(Class::S, 25));
        assert!(!Benchmark::Cg.supports_ranks(Class::S, 24));
    }

    #[test]
    fn paper_figure_rank_counts_are_supported() {
        // CG.D @128, SP @2025, LU.D @1024, BT.D @8281 (figures 17-18).
        assert!(Benchmark::Cg.supports_ranks(Class::D, 128));
        assert!(Benchmark::Sp.supports_ranks(Class::D, 2025));
        assert!(Benchmark::Lu.supports_ranks(Class::D, 1024));
        assert!(Benchmark::Bt.supports_ranks(Class::D, 8281));
    }
}
