//! Benchmark registry used by the figure harnesses.

use crate::bursty::BurstyParams;
use crate::class::Class;
use crate::euler::EulerParams;
use crate::irregular::IrregularParams;
use crate::straggler::StragglerParams;
use crate::{bursty, cg, euler, ft, irregular, lu, straggler, sweep, Result, WlError};
use opmr_netsim::{Machine, Workload};

/// A named benchmark of the paper's evaluation, plus the irregular
/// generators used by the time-resolved metrics plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    Bt,
    Sp,
    Lu,
    Cg,
    Ft,
    EulerMhd,
    Irregular,
    Straggler,
    Bursty,
}

/// All benchmarks: the paper's six first, then the irregular generators.
pub const BENCHMARKS: [Benchmark; 9] = [
    Benchmark::Bt,
    Benchmark::Cg,
    Benchmark::Ft,
    Benchmark::Lu,
    Benchmark::Sp,
    Benchmark::EulerMhd,
    Benchmark::Irregular,
    Benchmark::Straggler,
    Benchmark::Bursty,
];

impl Benchmark {
    /// Canonical name ("BT", "CG", ... "EulerMHD").
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "BT",
            Benchmark::Sp => "SP",
            Benchmark::Lu => "LU",
            Benchmark::Cg => "CG",
            Benchmark::Ft => "FT",
            Benchmark::EulerMhd => "EulerMHD",
            Benchmark::Irregular => "Irregular",
            Benchmark::Straggler => "Straggler",
            Benchmark::Bursty => "Bursty",
        }
    }

    /// Nominal (full-length) iteration count per class.
    pub fn nominal_iters(self, class: Class) -> u32 {
        match self {
            Benchmark::Bt => class.bt_iters(),
            Benchmark::Sp => class.sp_iters(),
            Benchmark::Lu => class.lu_iters(),
            Benchmark::Cg => class.cg_iters(),
            Benchmark::Ft => class.ft_iters(),
            Benchmark::EulerMhd => EulerParams::default().steps,
            Benchmark::Irregular => irregular_params(class).steps,
            Benchmark::Straggler => straggler_params(class).steps,
            Benchmark::Bursty => bursty_params(class).cycles,
        }
    }

    /// True when the benchmark can run on this rank count.
    pub fn supports_ranks(self, class: Class, ranks: usize) -> bool {
        self.build(class, ranks, &opmr_netsim::tera100(), Some(1))
            .is_ok()
    }

    /// Builds the workload. `iters_override` bounds simulated iterations.
    pub fn build(
        self,
        class: Class,
        ranks: usize,
        machine: &Machine,
        iters_override: Option<u32>,
    ) -> Result<Workload> {
        match self {
            Benchmark::Bt => {
                sweep::workload(sweep::SweepBench::Bt, class, ranks, machine, iters_override)
            }
            Benchmark::Sp => {
                sweep::workload(sweep::SweepBench::Sp, class, ranks, machine, iters_override)
            }
            Benchmark::Lu => lu::workload(class, ranks, machine, iters_override),
            Benchmark::Cg => cg::workload(class, ranks, machine, iters_override),
            Benchmark::Ft => ft::workload(class, ranks, machine, iters_override),
            Benchmark::EulerMhd => {
                // Class scales the mesh: C → 2048², D → 4096².
                let mesh = match class {
                    Class::S => 256,
                    Class::W => 512,
                    Class::A => 1024,
                    Class::B => 1536,
                    Class::C => 2048,
                    Class::D => 4096,
                };
                euler::workload(
                    EulerParams {
                        mesh,
                        ..EulerParams::default()
                    },
                    ranks,
                    machine,
                    iters_override,
                )
            }
            Benchmark::Irregular => {
                irregular::workload(irregular_params(class), ranks, machine, iters_override)
            }
            Benchmark::Straggler => {
                straggler::workload(straggler_params(class), ranks, machine, iters_override)
            }
            Benchmark::Bursty => {
                bursty::workload(bursty_params(class), ranks, machine, iters_override)
            }
        }
    }
}

/// Class-scaled irregular parameters: S/W stay at the small instance, the
/// larger classes grow the vertex count (and with it compute per rank).
fn irregular_params(class: Class) -> IrregularParams {
    let small = IrregularParams::small();
    match class {
        Class::S | Class::W => small,
        Class::A | Class::B => IrregularParams {
            vertices: 1 << 18,
            steps: 60,
            ..IrregularParams::default()
        },
        Class::C | Class::D => IrregularParams::default(),
    }
}

/// Class-scaled straggler parameters: bigger classes compute more per step.
fn straggler_params(class: Class) -> StragglerParams {
    let small = StragglerParams::small();
    match class {
        Class::S | Class::W => small,
        Class::A | Class::B => StragglerParams {
            flops: 10.0e6,
            steps: 60,
            ..StragglerParams::default()
        },
        Class::C | Class::D => StragglerParams::default(),
    }
}

/// Class-scaled bursty parameters: bigger classes burst harder.
fn bursty_params(class: Class) -> BurstyParams {
    let small = BurstyParams::small();
    match class {
        Class::S | Class::W => small,
        Class::A | Class::B => BurstyParams {
            burst_bytes: 64 * 1024,
            cycles: 20,
            ..BurstyParams::default()
        },
        Class::C | Class::D => BurstyParams::default(),
    }
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Result<Benchmark> {
    let lower = name.to_ascii_lowercase();
    BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().to_ascii_lowercase() == lower)
        .ok_or_else(|| WlError::UnknownBenchmark(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::{simulate, tera100, ToolModel};

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("sp").unwrap(), Benchmark::Sp);
        assert_eq!(by_name("EULERMHD").unwrap(), Benchmark::EulerMhd);
        assert_eq!(by_name("irregular").unwrap(), Benchmark::Irregular);
        assert_eq!(by_name("STRAGGLER").unwrap(), Benchmark::Straggler);
        assert_eq!(by_name("bursty").unwrap(), Benchmark::Bursty);
        assert!(by_name("mg").is_err());
    }

    #[test]
    fn every_benchmark_simulates_on_a_valid_count() {
        let m = tera100();
        let counts = [
            (Benchmark::Bt, 16),
            (Benchmark::Sp, 16),
            (Benchmark::Lu, 12),
            (Benchmark::Cg, 16),
            (Benchmark::Ft, 16),
            (Benchmark::EulerMhd, 12),
            (Benchmark::Irregular, 10),
            (Benchmark::Straggler, 10),
            (Benchmark::Bursty, 10),
        ];
        for (b, ranks) in counts {
            let w = b.build(Class::S, ranks, &m, Some(2)).unwrap();
            assert_eq!(w.ranks(), ranks);
            let r = simulate(&w, &m, &ToolModel::None).unwrap();
            assert!(r.elapsed_s > 0.0, "{}", b.name());
        }
    }

    #[test]
    fn rank_validation_is_surfaced() {
        assert!(!Benchmark::Bt.supports_ranks(Class::S, 7));
        assert!(Benchmark::Bt.supports_ranks(Class::S, 25));
        assert!(!Benchmark::Cg.supports_ranks(Class::S, 24));
    }

    #[test]
    fn paper_figure_rank_counts_are_supported() {
        // CG.D @128, SP @2025, LU.D @1024, BT.D @8281 (figures 17-18).
        assert!(Benchmark::Cg.supports_ranks(Class::D, 128));
        assert!(Benchmark::Sp.supports_ranks(Class::D, 2025));
        assert!(Benchmark::Lu.supports_ranks(Class::D, 1024));
        assert!(Benchmark::Bt.supports_ranks(Class::D, 8281));
    }
}
