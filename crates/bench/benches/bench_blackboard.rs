//! Ablation: blackboard job-FIFO striping and worker count — DESIGN.md's
//! contention ablation ("jobs are randomly pushed in an array of FIFOs").

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness code

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opmr_blackboard::{type_id, Blackboard, BlackboardConfig, DataEntry, KnowledgeSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ENTRIES: u64 = 50_000;

fn run(queues: usize, workers: usize) -> u64 {
    let bb = Blackboard::new(BlackboardConfig { queues, workers });
    let ty = type_id("bench", "x");
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    bb.register(KnowledgeSource::new("sink", vec![ty], move |_bb, _es| {
        c2.fetch_add(1, Ordering::Relaxed);
    }));
    bb.start();
    for _ in 0..ENTRIES {
        bb.post(DataEntry::bytes(ty, Bytes::new()));
    }
    bb.stop();
    count.load(Ordering::Relaxed)
}

fn bench_striping(c: &mut Criterion) {
    let mut g = c.benchmark_group("blackboard_fifo_striping");
    g.throughput(Throughput::Elements(ENTRIES));
    g.sample_size(10);
    for queues in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(queues), &queues, |b, &q| {
            b.iter(|| assert_eq!(run(q, 4), ENTRIES));
        });
    }
    g.finish();
}

fn bench_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("blackboard_workers");
    g.throughput(Throughput::Elements(ENTRIES));
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| assert_eq!(run(8, w), ENTRIES));
        });
    }
    g.finish();
}

fn bench_cascade(c: &mut Criterion) {
    // Unpack-style cascade: 1 pack entry fans out to 32 event entries.
    let mut g = c.benchmark_group("blackboard_cascade");
    g.sample_size(10);
    g.bench_function("fanout_32", |b| {
        b.iter(|| {
            let bb = Blackboard::new(BlackboardConfig {
                queues: 8,
                workers: 4,
            });
            let (tp, te) = (type_id("b", "pack"), type_id("b", "event"));
            let count = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&count);
            bb.register(KnowledgeSource::new("unpack", vec![tp], move |bb, _es| {
                for _ in 0..32 {
                    bb.post(DataEntry::bytes(te, Bytes::new()));
                }
            }));
            bb.register(KnowledgeSource::new("sink", vec![te], move |_bb, _es| {
                c2.fetch_add(1, Ordering::Relaxed);
            }));
            bb.start();
            for _ in 0..500 {
                bb.post(DataEntry::bytes(tp, Bytes::new()));
            }
            bb.stop();
            assert_eq!(count.load(Ordering::Relaxed), 500 * 32);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_striping, bench_workers, bench_cascade);
criterion_main!(benches);
