//! Ablation: runtime point-to-point cost and the eager/rendezvous
//! threshold — DESIGN.md's protocol ablation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness code

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opmr_runtime::collectives::ops;
use opmr_runtime::{Launcher, Src, TagSel};

fn pingpong(msgs: usize, bytes: usize, eager_limit: usize) {
    Launcher::new()
        .eager_limit(eager_limit)
        .partition("p", 2, move |mpi| {
            let w = mpi.world();
            let payload = Bytes::from(vec![0u8; bytes]);
            if w.local_rank() == 0 {
                for _ in 0..msgs {
                    mpi.send(&w, 1, 0, payload.clone()).unwrap();
                    mpi.recv(&w, Src::Rank(1), TagSel::Tag(0)).unwrap();
                }
            } else {
                for _ in 0..msgs {
                    mpi.recv(&w, Src::Rank(0), TagSel::Tag(0)).unwrap();
                    mpi.send(&w, 0, 0, payload.clone()).unwrap();
                }
            }
        })
        .run()
        .unwrap();
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_pingpong_latency");
    g.sample_size(10);
    g.bench_function("empty_x1000", |b| {
        b.iter(|| pingpong(1000, 0, 64 * 1024));
    });
    g.finish();
}

fn bench_eager_threshold(c: &mut Criterion) {
    // 64 KiB messages under three protocol splits: always-eager,
    // at-the-boundary, always-rendezvous.
    let mut g = c.benchmark_group("runtime_eager_threshold");
    g.throughput(Throughput::Bytes((200 * 64 * 1024) as u64));
    g.sample_size(10);
    for (name, limit) in [
        ("eager", 1 << 20),
        ("boundary", 64 * 1024),
        ("rendezvous", 1),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &limit, |b, &limit| {
            b.iter(|| pingpong(200, 64 * 1024, limit));
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_allreduce");
    g.sample_size(10);
    for ranks in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Launcher::new()
                    .partition("p", ranks, |mpi| {
                        let w = mpi.world();
                        for _ in 0..20 {
                            mpi.allreduce_t(&w, &[1.0f64; 8], ops::sum).unwrap();
                        }
                    })
                    .run()
                    .unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_latency,
    bench_eager_threshold,
    bench_allreduce
);
criterion_main!(benches);
