//! Ablation: VMPI stream throughput vs `NA` (async window), block size and
//! load-balancing policy — DESIGN.md's stream ablation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness code

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opmr_runtime::Launcher;
use opmr_vmpi::{Balance, ReadMode, ReadStream, StreamConfig, Vmpi, WriteStream};

/// Ships `total` bytes writer→reader with the given stream config.
fn ship(total: usize, cfg: StreamConfig) {
    Launcher::new()
        .partition("w", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], cfg, 1).unwrap();
            let chunk = vec![0u8; cfg.block_size];
            let mut left = total;
            while left > 0 {
                let n = left.min(chunk.len());
                st.write(&chunk[..n]).unwrap();
                left -= n;
            }
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], cfg, 1).unwrap();
            while st.read(ReadMode::Blocking).unwrap().is_some() {}
        })
        .run()
        .unwrap();
}

fn bench_window_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_window_depth");
    let total = 16 << 20;
    g.throughput(Throughput::Bytes(total as u64));
    g.sample_size(10);
    for na in [1usize, 3, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(na), &na, |b, &na| {
            b.iter(|| ship(total, StreamConfig::new(1 << 20, na, Balance::None)));
        });
    }
    g.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_block_size");
    let total = 16 << 20;
    g.throughput(Throughput::Bytes(total as u64));
    g.sample_size(10);
    for shift in [16usize, 18, 20] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KiB", (1 << shift) / 1024)),
            &shift,
            |b, &shift| {
                b.iter(|| ship(total, StreamConfig::new(1 << shift, 3, Balance::None)));
            },
        );
    }
    g.finish();
}

fn bench_balance_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_balance_policy");
    let total = 8 << 20;
    g.throughput(Throughput::Bytes(total as u64));
    g.sample_size(10);
    for (name, policy) in [
        ("none", Balance::None),
        ("random", Balance::Random { seed: 7 }),
        ("round_robin", Balance::RoundRobin),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                // One writer fanning out to three readers.
                let cfg = StreamConfig::new(1 << 18, 3, policy);
                Launcher::new()
                    .partition("w", 1, move |mpi| {
                        let v = Vmpi::new(mpi).unwrap();
                        let mut st = WriteStream::open_to(&v, vec![1, 2, 3], cfg, 1).unwrap();
                        st.write(&vec![0u8; total]).unwrap();
                        st.close().unwrap();
                    })
                    .partition("r", 3, move |mpi| {
                        let v = Vmpi::new(mpi).unwrap();
                        let cfg_r = StreamConfig::new(1 << 18, 3, Balance::None);
                        let mut st = ReadStream::open_from(&v, vec![0], cfg_r, 1).unwrap();
                        while st.read(ReadMode::Blocking).unwrap().is_some() {}
                    })
                    .run()
                    .unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_window_depth,
    bench_block_size,
    bench_balance_policy
);
criterion_main!(benches);
