//! End-to-end pipeline benches: full online sessions (instrumentation →
//! streams → blackboard → report) and the analysis engine in isolation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness code

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opmr_analysis::{AnalysisEngine, EngineConfig};
use opmr_core::{LiveOptions, Session};
use opmr_events::{Event, EventKind, EventPack};
use opmr_netsim::{simulate, tera100, ToolModel};
use opmr_workloads::{Benchmark, Class};

fn bench_online_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_session");
    g.sample_size(10);
    for (name, bench, ranks) in [
        ("cg_s_16", Benchmark::Cg, 16usize),
        ("euler_s_16", Benchmark::EulerMhd, 16),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, &bench| {
            b.iter(|| {
                let w = bench.build(Class::S, ranks, &tera100(), Some(3)).unwrap();
                let outcome = Session::builder()
                    .analyzer_ranks(4)
                    .app_workload("app", w, LiveOptions::default())
                    .run()
                    .unwrap();
                assert!(outcome.report.apps[0].events > 0);
            });
        });
    }
    g.finish();
}

fn bench_engine_ingest(c: &mut Criterion) {
    // Analysis engine alone: decode + profile + topology + timeline.
    let packs: Vec<bytes::Bytes> = (0..200u32)
        .map(|seq| {
            let events: Vec<Event> = (0..100)
                .map(|i| Event {
                    time_ns: (seq as u64 * 100 + i) * 1000,
                    duration_ns: 500,
                    kind: if i % 3 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    rank: seq % 16,
                    peer: ((seq + 1) % 16) as i32,
                    tag: 0,
                    comm: 0,
                    bytes: 128,
                })
                .collect();
            EventPack::new(0, seq % 16, seq / 16, events).encode()
        })
        .collect();
    let mut g = c.benchmark_group("engine_ingest");
    g.throughput(Throughput::Elements(200 * 100));
    g.sample_size(10);
    g.bench_function("20k_events", |b| {
        b.iter(|| {
            let engine = AnalysisEngine::new(EngineConfig::default());
            engine.start();
            for p in &packs {
                engine.post_block(p.clone());
            }
            let report = engine.finish();
            assert_eq!(report.apps[0].events, 20_000);
        });
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_simulator");
    g.sample_size(10);
    let m = tera100();
    for ranks in [256usize, 1024] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("sp_c_{ranks}")),
            &ranks,
            |b, &ranks| {
                let w = Benchmark::Sp.build(Class::C, ranks, &m, Some(3)).unwrap();
                b.iter(|| {
                    let r = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
                    assert!(r.elapsed_s > 0.0);
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_online_session,
    bench_engine_ingest,
    bench_simulator
);
criterion_main!(benches);
