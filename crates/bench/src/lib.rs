//! # opmr-bench — the figure/table regeneration harness
//!
//! One binary per evaluation artifact of the paper:
//!
//! | target | artifact |
//! |---|---|
//! | `fig14` | Figure 14 — VMPI stream throughput vs writer/reader ratio |
//! | `fig15` | Figure 15 — relative overhead, NAS + EulerMHD, 1:1 ratio |
//! | `fig16` | Figure 16 — tool comparison on SP.D (Curie) |
//! | `fig17` | Figure 17 — communication matrices and topology graphs |
//! | `fig18` | Figure 18 — density maps (LU.D @1024, BT.D @8281) |
//! | `bi_table` | in-text `Bi` values and trace volumes |
//! | `live_overhead` | thread-scale live analogue of Figure 16 |
//!
//! Criterion benches (`cargo bench`) cover the ablations DESIGN.md calls
//! out: stream window/block size/policy, blackboard striping, runtime
//! eager threshold and the end-to-end pipeline.

use opmr_analysis::Topology;
use opmr_netsim::{Op, Phase, Workload};
use std::path::PathBuf;

/// CSV header written by the `serve_bench` binary. Pinned by the
/// golden-shape regression tests: dashboards and CI scripts scrape these
/// columns, so renaming or reordering them is a breaking change that must
/// show up in a test diff, not in a consumer's silent parse failure.
pub const SERVE_BENCH_CSV_HEADER: &str =
    "scenario,clients,versions,queries,qps,updates,deltas,resyncs,lag_p50_ms,lag_p99_ms";

/// CSV header written by the `tbon_compare` binary (same contract as
/// [`SERVE_BENCH_CSV_HEADER`]).
pub const TBON_COMPARE_CSV_HEADER: &str =
    "source,leaves,reduction,tbon_gbs,direct_gbs,internal_nodes";

/// CSV header written by the `codec_bench` binary (same contract as
/// [`SERVE_BENCH_CSV_HEADER`]). The nightly golden-number CI step scrapes
/// `bytes_per_event` and `events_per_sec` by column name.
pub const CODEC_BENCH_CSV_HEADER: &str =
    "workload,class,ranks,events,encoding,events_per_sec,bytes_per_event,reduction_vs_fixed";

/// Output directory for figure artifacts (`out/<sub>` under the workspace).
pub fn out_dir(sub: &str) -> std::io::Result<PathBuf> {
    let base = std::env::var("OPMR_OUT").unwrap_or_else(|_| "out".to_string());
    let dir = PathBuf::from(base).join(sub);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Prints one aligned table row to stdout.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:>w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Pattern extraction: everything a rank's program sends, without running
/// the simulator (iteration counts applied analytically).
pub mod shape {
    use super::*;

    fn visit_ops(w: &Workload, rank: usize, mut f: impl FnMut(&Op, u64)) {
        let prog = &w.programs[rank];
        for op in &prog.prologue {
            f(op, 1);
        }
        for op in &prog.body {
            f(op, prog.iters as u64);
        }
        for op in &prog.epilogue {
            f(op, 1);
        }
    }

    /// Builds the static communication topology of a workload: `Send` ops
    /// produce directed edges, `Exchange` ops both directions.
    pub fn topology_of(w: &Workload) -> Topology {
        let mut topo = Topology::new();
        for rank in 0..w.ranks() {
            visit_ops(w, rank, |op, mult| match *op {
                Op::Send { to, bytes } => {
                    topo.add_weighted(rank as u32, to, mult, bytes * mult, 0);
                }
                Op::Exchange { peer, bytes } => {
                    topo.add_weighted(rank as u32, peer, mult, bytes * mult, 0);
                }
                _ => {}
            });
        }
        topo
    }

    /// Per-rank `(send hits, send bytes)` including exchanges.
    pub fn send_maps(w: &Workload) -> (Vec<f64>, Vec<f64>) {
        let n = w.ranks();
        let mut hits = vec![0.0; n];
        let mut bytes = vec![0.0; n];
        for rank in 0..n {
            visit_ops(w, rank, |op, mult| match *op {
                Op::Send { bytes: b, .. } | Op::Exchange { bytes: b, .. } => {
                    hits[rank] += mult as f64;
                    bytes[rank] += (b * mult) as f64;
                }
                _ => {}
            });
        }
        (hits, bytes)
    }

    /// Sanity helper for tests: total comm ops per the linearized programs
    /// must match `Workload::total_comm_ops`.
    pub fn comm_ops_by_walk(w: &Workload) -> u64 {
        let mut total = 0;
        for rank in 0..w.ranks() {
            let prog = &w.programs[rank];
            let mut phase = Phase::start().normalize(prog);
            while let Some(cur) = phase {
                if prog.op_at(cur).is_some_and(|op| op.is_comm()) {
                    total += 1;
                }
                phase = cur.advance(prog);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_netsim::tera100;
    use opmr_workloads::{Benchmark, Class};

    #[test]
    fn static_topology_matches_walked_programs() {
        let m = tera100();
        let w = Benchmark::EulerMhd
            .build(Class::S, 16, &m, Some(4))
            .unwrap();
        assert_eq!(shape::comm_ops_by_walk(&w), w.total_comm_ops());
        let topo = shape::topology_of(&w);
        // 4×4 grid halo: symmetric edges.
        assert!(topo.is_symmetric_in_hits());
        assert_eq!(topo.ranks(), 16);
        // Interior rank 5 has 4 partners.
        assert_eq!((0..16).filter(|&d| topo.edge(5, d).is_some()).count(), 4);
    }

    #[test]
    fn lu_send_map_shows_degree_gradient() {
        let m = tera100();
        let w = Benchmark::Lu.build(Class::A, 16, &m, Some(2)).unwrap();
        let (hits, _bytes) = shape::send_maps(&w);
        // Corner (rank 0) sends less than interior (rank 5).
        assert!(hits[0] < hits[5]);
    }

    #[test]
    fn out_dir_creates_directories() {
        let d = out_dir("test_tmp").unwrap();
        assert!(d.exists());
        let _ = std::fs::remove_dir_all(d);
    }
}
