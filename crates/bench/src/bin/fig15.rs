//! Figure 15 — relative overhead for NAS benchmarks and EulerMHD running
//! with one analysis core per instrumented process (Tera 100 model).
//!
//! For every benchmark/class series of the paper's figure, the harness
//! simulates the reference run and the online-coupling run at each rank
//! count and prints `(T_instr - T_ref) / T_ref`. Shape targets: overheads
//! below ~25 %, class C above class D (higher `Bi`), EulerMHD lowest.

use opmr_bench::{out_dir, row};
use opmr_netsim::{simulate, tera100, ToolModel};
use opmr_workloads::{Benchmark, Class};
use std::io::Write as _;

/// The series of Figure 15: `(benchmark, class, simulated iterations)`.
const SERIES: [(Benchmark, Class, u32); 9] = [
    (Benchmark::Bt, Class::C, 10),
    (Benchmark::Bt, Class::D, 10),
    (Benchmark::Cg, Class::C, 8),
    (Benchmark::Ft, Class::C, 8),
    (Benchmark::Lu, Class::C, 10),
    (Benchmark::Sp, Class::C, 10),
    (Benchmark::Sp, Class::D, 10),
    (Benchmark::EulerMhd, Class::C, 10),
    (Benchmark::Lu, Class::D, 10),
];

/// Rank counts of the x axis (per-benchmark validity filtered below).
const RANKS: [usize; 6] = [64, 121, 256, 529, 900, 1156];

/// Nearest rank count within ±30 % of target that the benchmark accepts
/// (cheap arithmetic check, no workload construction).
fn closest_valid(bench: Benchmark, class: Class, target: usize) -> Option<usize> {
    let in_band =
        |n: usize| n >= 1 && (n as f64) >= target as f64 * 0.7 && (n as f64) <= target as f64 * 1.3;
    match bench {
        // Any rank count works for these (the new generators included).
        Benchmark::Lu
        | Benchmark::EulerMhd
        | Benchmark::Irregular
        | Benchmark::Straggler
        | Benchmark::Bursty => Some(target),
        Benchmark::Bt | Benchmark::Sp => {
            let k = (target as f64).sqrt().round() as usize;
            let sq = k.max(1) * k.max(1);
            in_band(sq).then_some(sq)
        }
        Benchmark::Cg => {
            let below = 1usize << (usize::BITS - 1 - target.leading_zeros());
            let above = below << 1;
            [below, above]
                .into_iter()
                .filter(|&n| in_band(n))
                .min_by_key(|&n| n.abs_diff(target))
        }
        Benchmark::Ft => {
            let nz = class.ft_grid().2;
            let n = target.min(nz);
            in_band(n).then_some(n)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = tera100();
    let dir = out_dir("fig15")?;
    let mut csv = String::from("bench,class,ranks,t_ref_s,t_online_s,overhead_pct,bi_mbs\n");

    println!("Figure 15 — relative overhead (%), online coupling at ratio 1:1, Tera 100 model\n");
    let mut header = vec!["series".to_string()];
    header.extend(RANKS.iter().map(|r| r.to_string()));
    let widths: Vec<usize> = std::iter::once(12usize)
        .chain(RANKS.iter().map(|_| 8))
        .collect();
    row(&header, &widths);

    for (bench, class, iters) in SERIES {
        let mut cells = vec![format!("{}.{}", bench.name(), class)];
        for &target in &RANKS {
            // Snap to the nearest rank count the benchmark supports (CG
            // needs powers of two, BT/SP perfect squares, FT ≤ nz).
            let Some(ranks) = closest_valid(bench, class, target) else {
                cells.push("-".into());
                continue;
            };
            let Ok(w) = bench.build(class, ranks, &m, Some(iters)) else {
                cells.push("-".into());
                continue;
            };
            let t_ref = simulate(&w, &m, &ToolModel::None)?;
            let t_on = simulate(&w, &m, &ToolModel::online_coupling(1.0))?;
            let overhead = (t_on.elapsed_s - t_ref.elapsed_s) / t_ref.elapsed_s * 100.0;
            cells.push(format!("{overhead:.1}"));
            csv.push_str(&format!(
                "{},{},{ranks},{:.4},{:.4},{overhead:.2},{:.2}\n",
                bench.name(),
                class,
                t_ref.elapsed_s,
                t_on.elapsed_s,
                t_on.bi_bps() / 1e6
            ));
        }
        row(&cells, &widths);
    }

    println!("\npaper shape: all overheads < 25 %, class C > class D (Bi correlation),");
    println!("EulerMHD (compute-bound) lowest.");

    let path = dir.join("fig15.csv");
    std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))?;
    println!("wrote {}", path.display());
    Ok(())
}
