//! Time-resolved metrics benchmark: the windowed standard-metrics plane
//! over a live straggler run.
//!
//! A ring application with one deliberately slow rank streams into the
//! shared analysis engine with the metrics knowledge source enabled; the
//! engine folds the event stream into fixed windows online (no trace is
//! retained). The binary prints a sampled window table and writes the
//! full derived series — load-balance efficiency, communication
//! efficiency, serialization/transfer decomposition, wait fraction — as
//! CSV under `out/metrics_bench/`, using the canonical header pinned by
//! the golden-shape tests. Pass `--quick` for a CI-sized smoke run.

use opmr_bench::{out_dir, row};
use opmr_core::session::Session;
use opmr_metrics::WINDOW_CSV_HEADER;
use opmr_runtime::{Src, TagSel};
use opmr_vmpi::{Balance, StreamConfig};
use std::io::Write as _;
use std::time::Duration;

/// The straggler rank computes this much longer per step than its peers.
const SLOW_FACTOR: u32 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds: i32 = if quick { 40 } else { 200 };
    let ranks = if quick { 4 } else { 6 };
    let window_ns = 250_000u64; // 0.25 ms windows

    let outcome = Session::builder()
        .analyzer_ranks(2)
        .metrics(window_ns)
        .stream_config(StreamConfig::new(2048, 4, Balance::None))
        .app_try("straggler_ring", ranks, move |imp| {
            let w = imp.comm_world();
            let (n, r) = (imp.size(), imp.rank());
            let work = Duration::from_micros(60);
            for round in 0..rounds {
                // Rank 0 is the straggler: everyone else serializes on it
                // at the ring exchange, which the wait fraction exposes.
                let d = if r == 0 { work * SLOW_FACTOR } else { work };
                imp.compute(d)?;
                let req = imp.isend(&w, (r + 1) % n, round, vec![0u8; 2048])?;
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(round))?;
                imp.wait(req)?;
                imp.allreduce_sum(&w, &[round as u64])?;
            }
            imp.barrier(&w)?;
            Ok(())
        })
        .run()?;

    let m = outcome.report.apps[0]
        .metrics
        .as_ref()
        .ok_or("metrics knowledge source produced no series")?;
    assert!(!m.is_empty(), "run produced no metric windows");
    assert_eq!(m.ranks() as usize, ranks, "series must cover every rank");

    let windows = m.window_metrics();
    let widths = [8, 10, 6, 8, 8, 8, 8, 8, 10];
    row(
        &[
            "window".into(),
            "start ms".into(),
            "ranks".into(),
            "lb".into(),
            "comm".into(),
            "ser".into(),
            "xfer".into(),
            "wait".into(),
            "bytes".into(),
        ],
        &widths,
    );
    let stride = windows.len().div_ceil(12).max(1);
    for wm in windows.iter().step_by(stride) {
        row(
            &[
                format!("{}", wm.window),
                format!("{:.3}", wm.start_ns as f64 / 1e6),
                format!("{}", wm.ranks),
                format!("{:.3}", wm.lb_efficiency),
                format!("{:.3}", wm.comm_efficiency),
                format!("{:.3}", wm.serialization_fraction),
                format!("{:.3}", wm.transfer_fraction),
                format!("{:.3}", wm.wait_fraction),
                format!("{}", wm.bytes),
            ],
            &widths,
        );
    }

    let mean_lb = windows.iter().map(|w| w.lb_efficiency).sum::<f64>() / windows.len() as f64;
    println!(
        "\n{} windows of {:.3} ms over {} ranks, mean LB efficiency {:.3}, wall {:.3} s",
        windows.len(),
        window_ns as f64 / 1e6,
        m.ranks(),
        mean_lb,
        outcome.wall_s
    );

    let csv = m.to_csv();
    debug_assert!(csv.starts_with(WINDOW_CSV_HEADER));
    let path = out_dir("metrics_bench")?.join("metrics_windows.csv");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(csv.as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}
