//! Encode-path golden numbers: events/second and bytes-per-event for the
//! three wire encodings — fixed 48-byte layout, delta/varint, and
//! delta/varint + LZ4-class block compression — over event streams
//! synthesized from catalog workloads.
//!
//! The event streams are deterministic (monotone per-rank clocks, op
//! parameters straight from the workload programs), so `bytes_per_event`
//! is a stable number the nightly CI step asserts within a tolerance
//! band, while `events_per_sec` tracks the allocation-free steady-state
//! encode path. `--quick` shrinks ranks/iterations for CI.

use opmr_bench::{out_dir, row, CODEC_BENCH_CSV_HEADER};
use opmr_events::{Event, EventKind, EventPack, Lz4Encoder, PackEncoding};
use opmr_netsim::{tera100, CollKind, Op, Workload};
use opmr_workloads::{Benchmark, Class};
use std::io::Write as _;
use std::time::Instant;

/// One stream block per pack, sized like the session default.
const BLOCK_SIZE: usize = 64 * 1024;

/// The encodings the table compares. `lz4` is the delta layout with the
/// stream layer's per-block compressor on top.
#[derive(Clone, Copy, PartialEq)]
enum Encoding {
    Fixed,
    Delta,
    DeltaLz4,
}

impl Encoding {
    const ALL: [Encoding; 3] = [Encoding::Fixed, Encoding::Delta, Encoding::DeltaLz4];

    fn name(self) -> &'static str {
        match self {
            Encoding::Fixed => "fixed",
            Encoding::Delta => "delta",
            Encoding::DeltaLz4 => "delta+lz4",
        }
    }

    fn pack_encoding(self) -> PackEncoding {
        match self {
            Encoding::Fixed => PackEncoding::Fixed,
            Encoding::Delta | Encoding::DeltaLz4 => PackEncoding::Delta,
        }
    }
}

/// Walks one rank's program with a monotone virtual clock and emits the
/// event sequence its wrapper would record. Durations are deterministic
/// functions of the op parameters, so every run of the bench encodes the
/// same bytes.
fn rank_events(w: &Workload, rank: usize, cap: usize) -> Vec<Event> {
    let prog = &w.programs[rank];
    let mut clock: u64 = 1_000 * rank as u64;
    let mut tag: i32 = 0;
    let mut out = Vec::new();
    let emit = |out: &mut Vec<Event>,
                clock: &mut u64,
                kind: EventKind,
                peer: i32,
                tag: i32,
                comm: u32,
                bytes: u64| {
        let duration_ns = 400 + bytes / 8;
        out.push(Event {
            time_ns: *clock,
            duration_ns,
            kind,
            rank: rank as u32,
            peer,
            tag,
            comm,
            bytes,
        });
        *clock += duration_ns + 50;
    };
    let run_op = |out: &mut Vec<Event>, clock: &mut u64, tag: &mut i32, op: &Op| match *op {
        Op::Compute { ns } => *clock += ns as u64,
        Op::Send { to, bytes } => emit(out, clock, EventKind::Send, to as i32, *tag, 0, bytes),
        Op::Recv { from } => emit(out, clock, EventKind::Recv, from as i32, *tag, 0, 0),
        Op::Exchange { peer, bytes } => {
            emit(out, clock, EventKind::Isend, peer as i32, *tag, 0, bytes);
            emit(out, clock, EventKind::Recv, peer as i32, *tag, 0, bytes);
            emit(out, clock, EventKind::Wait, peer as i32, *tag, 0, 0);
        }
        Op::Coll { group, kind, bytes } => {
            let ek = match kind {
                CollKind::Barrier => EventKind::Barrier,
                CollKind::Bcast => EventKind::Bcast,
                CollKind::Reduce => EventKind::Reduce,
                CollKind::Allreduce => EventKind::Allreduce,
                CollKind::Gather => EventKind::Gather,
                CollKind::Allgather => EventKind::Allgather,
                CollKind::Alltoall => EventKind::Alltoall,
            };
            emit(out, clock, ek, -1, 0, group, bytes);
        }
        Op::FsWrite { bytes } => emit(out, clock, EventKind::PosixWrite, -1, 0, 0, bytes),
        Op::FsMeta => emit(out, clock, EventKind::PosixOpen, -1, 0, 0, 0),
    };
    emit(&mut out, &mut clock, EventKind::Init, -1, 0, 0, 0);
    for op in &prog.prologue {
        run_op(&mut out, &mut clock, &mut tag, op);
    }
    'body: for _ in 0..prog.iters {
        for op in &prog.body {
            if out.len() >= cap {
                break 'body;
            }
            run_op(&mut out, &mut clock, &mut tag, op);
        }
        tag += 1;
    }
    for op in &prog.epilogue {
        run_op(&mut out, &mut clock, &mut tag, op);
    }
    emit(&mut out, &mut clock, EventKind::Finalize, -1, 0, 0, 0);
    out
}

/// Splits per-rank event streams into block-budgeted packs for `encoding`.
fn build_packs(streams: &[Vec<Event>], encoding: PackEncoding) -> Vec<EventPack> {
    let cap = EventPack::capacity_for_block_with(BLOCK_SIZE, encoding).max(1);
    let mut packs = Vec::new();
    for (rank, events) in streams.iter().enumerate() {
        for (seq, chunk) in events.chunks(cap).enumerate() {
            packs.push(EventPack::new(0, rank as u32, seq as u32, chunk.to_vec()));
        }
    }
    packs
}

struct Measured {
    events_per_sec: f64,
    bytes_per_event: f64,
}

/// Encodes every pack `reps` times through the pooled steady-state path
/// (reused scratch + compressor) and reports throughput and wire density.
fn measure(streams: &[Vec<Event>], enc: Encoding, reps: usize) -> Measured {
    let packs = build_packs(streams, enc.pack_encoding());
    let total_events: u64 = packs.iter().map(|p| p.events.len() as u64).sum();
    let mut scratch = bytes::BytesMut::with_capacity(BLOCK_SIZE);
    let mut zbuf: Vec<u8> = Vec::with_capacity(BLOCK_SIZE * 2);
    let mut lz4 = Lz4Encoder::new();
    let mut wire_bytes: u64 = 0;
    let t0 = Instant::now();
    for rep in 0..reps.max(1) {
        for pack in &packs {
            scratch.clear();
            let n = pack.encode_into(enc.pack_encoding(), &mut scratch);
            let shipped = if enc == Encoding::DeltaLz4 {
                zbuf.clear();
                lz4.compress(&scratch, &mut zbuf);
                zbuf.len().min(n)
            } else {
                n
            };
            if rep == 0 {
                wire_bytes += shipped as u64;
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Measured {
        events_per_sec: (total_events * reps.max(1) as u64) as f64 / secs,
        bytes_per_event: wire_bytes as f64 / total_events.max(1) as f64,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ranks, iters, cap_per_rank, reps) = if quick {
        (16usize, 3u32, 4_000usize, 3usize)
    } else {
        (64, 8, 20_000, 10)
    };
    let m = tera100();
    // Two NAS kernels plus the paper's coupled application and the
    // irregular generator: distinct op mixes, all from the catalog.
    let series: [(Benchmark, Class); 4] = [
        (Benchmark::Lu, Class::C),
        (Benchmark::Sp, Class::C),
        (Benchmark::EulerMhd, Class::C),
        (Benchmark::Irregular, Class::C),
    ];

    let dir = out_dir("codec")?;
    let mut csv = format!("{CODEC_BENCH_CSV_HEADER}\n");

    println!("codec_bench — encode-path throughput and wire density per encoding\n");
    let widths = [14usize, 10, 10, 12, 14, 10];
    row(
        &[
            "workload".into(),
            "encoding".into(),
            "events".into(),
            "Mev/s".into(),
            "B/event".into(),
            "vs fixed".into(),
        ],
        &widths,
    );

    for (bench, class) in series {
        // SP needs a perfect square of ranks.
        let n = if bench == Benchmark::Sp {
            let k = (ranks as f64).sqrt().round() as usize;
            k * k
        } else {
            ranks
        };
        let w = bench.build(class, n, &m, Some(iters))?;
        let streams: Vec<Vec<Event>> = (0..n).map(|r| rank_events(&w, r, cap_per_rank)).collect();
        let events: u64 = streams.iter().map(|s| s.len() as u64).sum();
        let fixed_density = measure(&streams, Encoding::Fixed, 1).bytes_per_event;
        for enc in Encoding::ALL {
            let got = measure(&streams, enc, reps);
            let reduction = fixed_density / got.bytes_per_event.max(1e-9);
            row(
                &[
                    format!("{}.{}", bench.name(), class),
                    enc.name().into(),
                    events.to_string(),
                    format!("{:.1}", got.events_per_sec / 1e6),
                    format!("{:.2}", got.bytes_per_event),
                    format!("{reduction:.2}x"),
                ],
                &widths,
            );
            csv.push_str(&format!(
                "{},{},{n},{events},{},{:.0},{:.3},{:.3}\n",
                bench.name(),
                class,
                enc.name(),
                got.events_per_sec,
                got.bytes_per_event,
                reduction,
            ));
        }
        println!();
    }

    let path = dir.join("codec_bench.csv");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(csv.as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}
