//! Live-serving benchmark: query throughput and subscription lag of the
//! serve plane (`Coupling::Serving`) under concurrent clients.
//!
//! One instrumented application streams into a 2-rank serving analyzer
//! while two client partitions hammer it simultaneously: *queriers* issue
//! point queries (profile + per-rank density) in a closed loop and
//! *subscribers* consume the snapshot-then-deltas stream, measuring the
//! publication-to-consumption lag of every update on the shared
//! in-process clock. A second scenario throttles the subscribers against
//! a tiny snapshot ring to exercise the slow-consumer resync path.
//!
//! Reports queries/sec plus p50/p99 subscription lag per scenario; CSV
//! lands in `out/serve_bench/`. Pass `--quick` for a CI-sized smoke run.

use opmr_bench::{out_dir, row};
use opmr_core::session::{Coupling, Session};
use opmr_serve::{ServeConfig, ServeStats};
use opmr_vmpi::{Balance, StreamConfig};
use parking_lot::Mutex;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

struct Scenario {
    name: &'static str,
    rounds: i32,
    subscribers: usize,
    queriers: usize,
    serve: ServeConfig,
    /// Artificial per-update consumer delay (the slow-consumer knob).
    subscriber_delay: Duration,
}

struct Run {
    wall_s: f64,
    queries: u64,
    /// Subscription lags in nanoseconds, unsorted.
    lags: Vec<u64>,
    updates: u64,
    deltas: u64,
    stats: ServeStats,
    versions: u64,
}

fn aggregate(per_rank: &[(usize, ServeStats)]) -> ServeStats {
    let mut total = ServeStats::default();
    for (_, s) in per_rank {
        total.clients += s.clients;
        total.queries += s.queries;
        total.subscribes += s.subscribes;
        total.snapshots_sent += s.snapshots_sent;
        total.deltas_sent += s.deltas_sent;
        total.resyncs += s.resyncs;
        total.acks += s.acks;
        total.bad_requests += s.bad_requests;
        total.clients_lost += s.clients_lost;
    }
    total
}

fn run_scenario(sc: &Scenario) -> Result<Run, Box<dyn std::error::Error>> {
    let rounds = sc.rounds;
    let queries = Arc::new(Mutex::new(0u64));
    let lags = Arc::new(Mutex::new(Vec::<u64>::new()));
    let update_counts = Arc::new(Mutex::new((0u64, 0u64))); // (updates, deltas)

    let q_sink = Arc::clone(&queries);
    let l_sink = Arc::clone(&lags);
    let u_sink = Arc::clone(&update_counts);
    let delay = sc.subscriber_delay;
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(sc.serve)
        .stream_config(StreamConfig::new(2048, 4, Balance::None))
        .app_try("workload", 4, move |imp| {
            let w = imp.comm_world();
            let n = imp.size();
            let r = imp.rank();
            for round in 0..rounds {
                let req = imp.isend(&w, (r + 1) % n, round, vec![7u8; 512])?;
                imp.recv(
                    &w,
                    opmr_runtime::Src::Rank((r + n - 1) % n),
                    opmr_runtime::TagSel::Tag(round),
                )?;
                imp.wait(req)?;
                // Pace the stream so serving happens *during* the run.
                imp.compute(Duration::from_micros(100))?;
            }
            imp.barrier(&w)?;
            Ok(())
        })
        .client_try("queriers", sc.queriers, move |c| {
            c.wait_version(1)?;
            let mut n = 0u64;
            loop {
                let info = c.version_info()?;
                let _ = c.query_profile(0, 0, 0, u32::MAX)?;
                let (_, _, _density) = c.query_density(0, 0, 0, u32::MAX)?;
                n += 3;
                if info.finished {
                    break;
                }
            }
            *q_sink.lock() += n;
            Ok(())
        })
        .client_try("subscribers", sc.subscribers, move |c| {
            c.subscribe()?;
            loop {
                let u = c.next_update()?.ok_or("stream ended before final")?;
                l_sink.lock().push(u.lag_ns);
                let mut counts = u_sink.lock();
                counts.0 += 1;
                counts.1 += u.delta as u64;
                drop(counts);
                if u.finished {
                    break;
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            Ok(())
        })
        .run()?;

    let store = outcome
        .snapshot_store
        .ok_or("serving session lost its snapshot store")?;
    let (updates, deltas) = *update_counts.lock();
    let queries = *queries.lock();
    let lags = lags.lock().clone();
    Ok(Run {
        wall_s: outcome.wall_s,
        queries,
        lags,
        updates,
        deltas,
        stats: aggregate(&outcome.serve_stats),
        versions: store.stats().published,
    })
}

fn percentile_ms(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64 / 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 60 } else { 300 };
    let wide = if quick { 2 } else { 4 };

    let scenarios = [
        // ≥4 concurrent clients, consumers keeping pace.
        Scenario {
            name: "smooth",
            rounds,
            subscribers: wide,
            queriers: wide,
            serve: ServeConfig {
                publish_every_packs: 2,
                ring: 256,
                ..ServeConfig::default()
            },
            subscriber_delay: Duration::ZERO,
        },
        // Same load, but slow consumers against a two-deep ring: the
        // server degrades them to snapshot resyncs instead of buffering.
        Scenario {
            name: "laggy",
            rounds,
            subscribers: wide,
            queriers: wide,
            serve: ServeConfig {
                publish_every_packs: 1,
                ring: 2,
                subscriber_credits: 1,
                ..ServeConfig::default()
            },
            subscriber_delay: Duration::from_millis(3),
        },
    ];

    let widths = [8, 8, 9, 10, 9, 8, 8, 8, 11, 11];
    row(
        &[
            "scenario".into(),
            "clients".into(),
            "versions".into(),
            "queries".into(),
            "qps".into(),
            "updates".into(),
            "deltas".into(),
            "resyncs".into(),
            "lag p50 ms".into(),
            "lag p99 ms".into(),
        ],
        &widths,
    );

    let mut csv = format!("{}\n", opmr_bench::SERVE_BENCH_CSV_HEADER);
    for sc in &scenarios {
        let mut run = run_scenario(sc)?;
        run.lags.sort_unstable();
        let clients = sc.subscribers + sc.queriers;
        let qps = run.queries as f64 / run.wall_s.max(1e-9);
        let p50 = percentile_ms(&run.lags, 50.0);
        let p99 = percentile_ms(&run.lags, 99.0);
        row(
            &[
                sc.name.into(),
                format!("{clients}"),
                format!("{}", run.versions),
                format!("{}", run.queries),
                format!("{qps:.0}"),
                format!("{}", run.updates),
                format!("{}", run.deltas),
                format!("{}", run.stats.resyncs),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
            ],
            &widths,
        );
        csv.push_str(&format!(
            "{},{clients},{},{},{qps:.1},{},{},{},{p50:.4},{p99:.4}\n",
            sc.name, run.versions, run.queries, run.updates, run.deltas, run.stats.resyncs
        ));

        assert!(run.queries > 0, "queriers issued no queries");
        assert!(run.updates > 0, "subscribers saw no updates");
        assert_eq!(run.stats.clients as usize, clients);
        assert_eq!(run.stats.clients_lost, 0, "clients must part cleanly");
        if sc.name == "laggy" {
            assert!(
                run.stats.resyncs > 0,
                "slow consumers must trigger resyncs, not buffering"
            );
        }
    }

    let path = out_dir("serve_bench")?.join("serve_bench.csv");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(csv.as_bytes())?;
    println!("\nwrote {}", path.display());
    Ok(())
}
