//! Live-serving benchmark: query throughput and subscription lag of the
//! serve plane (`Coupling::Serving`) under concurrent clients.
//!
//! Instrumented applications stream into a serving analyzer while client
//! partitions hammer it simultaneously: *queriers* issue point queries
//! (profile + per-rank density) in a closed loop and *subscribers*
//! consume the per-shard snapshot-then-deltas stream, measuring the
//! publication-to-consumption lag of every update on the shared
//! in-process clock. Scenarios cover the slow-consumer resync path
//! (`laggy`), wide fan-out at ≥256 subscribers delivered either as
//! per-subscriber unicast chains (`unicast256`) or down the TBON
//! replication tree (`tree256`), and a greedy tenant pinned by a
//! subscription quota while compliant tenants ride along undisturbed.
//!
//! Every subscriber folds its update stream and digests the resulting
//! bytes per `(shard, version)`; the run asserts zero divergences across
//! subscribers *and* against the server's stored snapshots — the delta
//! chains must be byte-identical everywhere.
//!
//! Reports queries/sec plus p50/p99 subscription lag per scenario; CSV
//! lands in `out/serve_bench/`. Pass `--quick` for a CI-sized smoke run
//! (64-subscriber tree + quota scenario included).

use opmr_bench::{out_dir, row};
use opmr_core::session::{Coupling, Session};
use opmr_serve::proto::QuotaKind;
use opmr_serve::{ServeConfig, ServeError, ServeStats, TenantQuota};
use opmr_vmpi::{Balance, StreamConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Scenario {
    name: &'static str,
    rounds: i32,
    /// Instrumented ring applications (2 ranks each); >1 populates
    /// multiple store shards.
    apps: usize,
    serving: usize,
    subscribers: usize,
    queriers: usize,
    /// Subscriber ranks under the quota-pinned "greedy" tenant.
    greedy: usize,
    serve: ServeConfig,
    /// Artificial per-update consumer delay (the slow-consumer knob).
    subscriber_delay: Duration,
}

struct Run {
    wall_s: f64,
    queries: u64,
    /// Subscription lags in nanoseconds, unsorted.
    lags: Vec<u64>,
    updates: u64,
    deltas: u64,
    stats: ServeStats,
    versions: u64,
    /// `(shard, version)` digest mismatches across subscribers or against
    /// the server's stored snapshots. The acceptance bar is zero.
    divergences: u64,
    /// Greedy-tenant subscriptions refused with the typed quota signal.
    rejected: u64,
    /// `reduce_fanout_records_total` movement across this scenario.
    fanout_records: u64,
}

/// FNV-1a over the folded snapshot bytes: cheap, deterministic, and
/// collision-resistant enough to catch any real chain divergence.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn aggregate(per_rank: &[(usize, ServeStats)]) -> ServeStats {
    let mut total = ServeStats::default();
    for (_, s) in per_rank {
        total.clients += s.clients;
        total.queries += s.queries;
        total.subscribes += s.subscribes;
        total.snapshots_sent += s.snapshots_sent;
        total.deltas_sent += s.deltas_sent;
        total.resyncs += s.resyncs;
        total.acks += s.acks;
        total.bad_requests += s.bad_requests;
        total.clients_lost += s.clients_lost;
        total.quota_rejections += s.quota_rejections;
        total.quota_throttles += s.quota_throttles;
        total.fanout_records += s.fanout_records;
    }
    total
}

fn run_scenario(sc: &Scenario) -> Result<Run, Box<dyn std::error::Error>> {
    let rounds = sc.rounds;
    let queries = Arc::new(Mutex::new(0u64));
    let lags = Arc::new(Mutex::new(Vec::<u64>::new()));
    let update_counts = Arc::new(Mutex::new((0u64, 0u64))); // (updates, deltas)
    let digests = Arc::new(Mutex::new(HashMap::<(u16, u64), u64>::new()));
    let divergences = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    let fanout_before = opmr_obs::registry()
        .snapshot()
        .counter_family("reduce_fanout_records_total");

    let subscriber = |delay: Duration| {
        let l_sink = Arc::clone(&lags);
        let u_sink = Arc::clone(&update_counts);
        let d_sink = Arc::clone(&digests);
        let div = Arc::clone(&divergences);
        let rej = Arc::clone(&rejected);
        move |c: &mut opmr_serve::ServeClient| -> Result<(), opmr_runtime::RankError> {
            c.subscribe()?;
            loop {
                let u = match c.next_update() {
                    Err(ServeError::QuotaExceeded(QuotaKind::Subscriptions)) => {
                        rej.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                    other => other?.ok_or("stream ended before final")?,
                };
                l_sink.lock().push(u.lag_ns);
                let mut counts = u_sink.lock();
                counts.0 += 1;
                counts.1 += u.delta as u64;
                drop(counts);
                // Chain audit: every subscriber must fold the exact same
                // bytes at every (shard, version) it observes.
                let held = c
                    .shard_report(u.shard)
                    .ok_or("update landed no shard report")?;
                let digest = fnv1a64(&held.encoded);
                let stale = d_sink
                    .lock()
                    .insert((u.shard, u.version), digest)
                    .is_some_and(|prev| prev != digest);
                if stale {
                    div.fetch_add(1, Ordering::Relaxed);
                }
                if u.finished {
                    break;
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            Ok(())
        }
    };

    let q_sink = Arc::clone(&queries);
    let mut builder = Session::builder()
        .analyzer_ranks(sc.serving)
        .coupling(Coupling::Serving)
        .serve_config(sc.serve.clone())
        .stream_config(StreamConfig::new(2048, 4, Balance::None));
    for app in 0..sc.apps.max(1) {
        builder = builder.app_try(&format!("workload-{app}"), 2, move |imp| {
            let w = imp.comm_world();
            let n = imp.size();
            let r = imp.rank();
            for round in 0..rounds {
                let req = imp.isend(&w, (r + 1) % n, round, vec![7u8; 512])?;
                imp.recv(
                    &w,
                    opmr_runtime::Src::Rank((r + n - 1) % n),
                    opmr_runtime::TagSel::Tag(round),
                )?;
                imp.wait(req)?;
                // Pace the stream so serving happens *during* the run.
                imp.compute(Duration::from_micros(100))?;
            }
            imp.barrier(&w)?;
            Ok(())
        });
    }
    builder = builder.client_try("queriers", sc.queriers, move |c| {
        c.wait_version(1)?;
        let mut n = 0u64;
        loop {
            let info = c.version_info()?;
            let _ = c.query_profile(0, 0, 0, u32::MAX)?;
            let (_, _, _density) = c.query_density(0, 0, 0, u32::MAX)?;
            n += 3;
            if info.finished {
                break;
            }
        }
        *q_sink.lock() += n;
        Ok(())
    });
    let polite = subscriber(sc.subscriber_delay);
    builder = builder.client_try("subscribers", sc.subscribers, polite);
    if sc.greedy > 0 {
        builder = builder.client_try("greedy", sc.greedy, subscriber(Duration::ZERO));
    }
    let outcome = builder.run()?;

    let store = outcome
        .snapshot_store
        .ok_or("serving session lost its snapshot store")?;
    // Second half of the audit: the digests the subscribers agreed on
    // must match the server's stored bytes wherever the ring kept them.
    let mut divergences = divergences.load(Ordering::Relaxed);
    for (&(shard, version), &digest) in digests.lock().iter() {
        if let Some(entry) = store.shard(shard as usize).get(version) {
            if fnv1a64(&entry.encoded) != digest {
                divergences += 1;
            }
        }
    }

    let fanout_after = opmr_obs::registry()
        .snapshot()
        .counter_family("reduce_fanout_records_total");
    let (updates, deltas) = *update_counts.lock();
    let queries = *queries.lock();
    let lags = lags.lock().clone();
    Ok(Run {
        wall_s: outcome.wall_s,
        queries,
        lags,
        updates,
        deltas,
        stats: aggregate(&outcome.serve_stats),
        versions: store.stats().published,
        divergences,
        rejected: rejected.load(Ordering::Relaxed),
        fanout_records: fanout_after.saturating_sub(fanout_before),
    })
}

fn percentile_ms(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64 / 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 60 } else { 300 };
    let wide = if quick { 2 } else { 4 };
    // A tenant allowed one subscription per serving rank: with more
    // greedy ranks than serving ranks, the surplus must be refused with
    // the typed signal while everyone else rides along.
    let pinned = |sub_limit: u32| TenantQuota {
        max_subscriptions: sub_limit,
        max_queries_per_sec: 0,
        max_delta_bytes_per_sec: 0,
    };

    let mut scenarios = vec![
        // ≥4 concurrent clients, consumers keeping pace.
        Scenario {
            name: "smooth",
            rounds,
            apps: 1,
            serving: 2,
            subscribers: wide,
            queriers: wide,
            greedy: 0,
            serve: ServeConfig {
                publish_every_packs: 2,
                ring: 256,
                ..ServeConfig::default()
            },
            subscriber_delay: Duration::ZERO,
        },
        // Same load, but slow consumers against a two-deep ring: the
        // server degrades them to snapshot resyncs instead of buffering.
        Scenario {
            name: "laggy",
            rounds,
            apps: 1,
            serving: 2,
            subscribers: wide,
            queriers: wide,
            greedy: 0,
            serve: ServeConfig {
                publish_every_packs: 1,
                ring: 2,
                subscriber_credits: 1,
                ..ServeConfig::default()
            },
            subscriber_delay: Duration::from_millis(3),
        },
    ];
    if quick {
        // CI smoke: 64 subscribers on a fanout-2 tree over 3 serving
        // ranks, two store shards, plus a quota-pinned greedy tenant.
        scenarios.push(Scenario {
            name: "tree64",
            rounds,
            apps: 2,
            serving: 3,
            subscribers: 64,
            queriers: 4,
            greedy: 8,
            serve: ServeConfig {
                publish_every_packs: 4,
                ring: 4096,
                shards: 2,
                fan_out: Some(2),
                tenant_quotas: vec![("greedy".to_string(), pinned(1))],
                ..ServeConfig::default()
            },
            subscriber_delay: Duration::ZERO,
        });
    } else {
        // The tentpole comparison: the same 256-subscriber load served
        // as per-subscriber unicast chains vs. TBON tree replication
        // (root frames each delta once, the frontier fans it out).
        for (name, fan_out) in [("unicast256", None), ("tree256", Some(4))] {
            scenarios.push(Scenario {
                name,
                rounds,
                apps: 2,
                serving: 5,
                subscribers: 256,
                queriers: 8,
                greedy: 8,
                serve: ServeConfig {
                    publish_every_packs: 4,
                    ring: 4096,
                    shards: 2,
                    fan_out,
                    tenant_quotas: vec![("greedy".to_string(), pinned(1))],
                    ..ServeConfig::default()
                },
                subscriber_delay: Duration::ZERO,
            });
        }
    }

    let widths = [10, 8, 9, 10, 9, 8, 8, 8, 11, 11];
    row(
        &[
            "scenario".into(),
            "clients".into(),
            "versions".into(),
            "queries".into(),
            "qps".into(),
            "updates".into(),
            "deltas".into(),
            "resyncs".into(),
            "lag p50 ms".into(),
            "lag p99 ms".into(),
        ],
        &widths,
    );

    let mut p99_by_name: HashMap<&'static str, f64> = HashMap::new();
    let mut csv = format!("{}\n", opmr_bench::SERVE_BENCH_CSV_HEADER);
    for sc in &scenarios {
        let mut run = run_scenario(sc)?;
        run.lags.sort_unstable();
        let clients = sc.subscribers + sc.queriers + sc.greedy;
        let qps = run.queries as f64 / run.wall_s.max(1e-9);
        let p50 = percentile_ms(&run.lags, 50.0);
        let p99 = percentile_ms(&run.lags, 99.0);
        p99_by_name.insert(sc.name, p99);
        row(
            &[
                sc.name.into(),
                format!("{clients}"),
                format!("{}", run.versions),
                format!("{}", run.queries),
                format!("{qps:.0}"),
                format!("{}", run.updates),
                format!("{}", run.deltas),
                format!("{}", run.stats.resyncs),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
            ],
            &widths,
        );
        csv.push_str(&format!(
            "{},{clients},{},{},{qps:.1},{},{},{},{p50:.4},{p99:.4}\n",
            sc.name, run.versions, run.queries, run.updates, run.deltas, run.stats.resyncs
        ));

        assert!(run.queries > 0, "queriers issued no queries");
        assert!(run.updates > 0, "subscribers saw no updates");
        assert_eq!(
            run.divergences, 0,
            "{}: delta chains diverged across subscribers or from the store",
            sc.name
        );
        assert_eq!(run.stats.clients as usize, clients);
        assert_eq!(run.stats.clients_lost, 0, "clients must part cleanly");
        if sc.name == "laggy" {
            assert!(
                run.stats.resyncs > 0,
                "slow consumers must trigger resyncs, not buffering"
            );
        }
        if sc.serve.fan_out.is_some() {
            assert!(
                run.fanout_records > 0,
                "{}: reduce_fanout_records_total never moved",
                sc.name
            );
            assert!(
                run.stats.fanout_records > 0,
                "{}: the root never published onto the tree",
                sc.name
            );
        }
        if sc.greedy > 0 {
            assert!(
                run.rejected > 0,
                "{}: the greedy tenant was never refused",
                sc.name
            );
            assert!(
                run.stats.quota_rejections >= run.rejected,
                "{}: wire rejections outnumber the counted ones",
                sc.name
            );
        }
    }

    if !quick {
        let unicast = p99_by_name["unicast256"];
        let tree = p99_by_name["tree256"];
        println!("\ntree p99 {tree:.3} ms vs unicast p99 {unicast:.3} ms at 256 subscribers");
        assert!(
            tree < unicast,
            "tree fan-out must beat unicast p99 lag at 256 subscribers \
             ({tree:.3} ms >= {unicast:.3} ms)"
        );
    }

    let path = out_dir("serve_bench")?.join("serve_bench.csv");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(csv.as_bytes())?;
    println!("\nwrote {}", path.display());
    Ok(())
}
