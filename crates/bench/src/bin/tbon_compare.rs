//! Related-work comparison (Section V): sustainable event bandwidth of the
//! paper's direct partition mapping vs an MRNet-style TBON, on the same
//! analysis-resource budget.
//!
//! The paper's argument: TBONs excel at *reductions*, but full-event
//! analysis (ρ = 1, no filtering) funnels everything through the root,
//! while the direct mapping "maximises the bisection bandwidth between
//! partitions". This harness quantifies both regimes.

use opmr_bench::{out_dir, row};
use opmr_netsim::tbon::{direct_mapping_capacity_bps, TbonConfig};
use opmr_netsim::tera100;
use std::io::Write as _;

const LEAVES: [usize; 5] = [64, 256, 1024, 2560, 8192];

fn main() {
    let m = tera100();
    let dir = out_dir("tbon");
    let mut csv = String::from("leaves,reduction,tbon_gbs,direct_gbs,internal_nodes\n");

    println!("Direct partition mapping vs TBON — sustainable leaf bandwidth (GB/s)\n");
    for (title, rho) in [
        ("unreduced event streams (ρ = 1.0)", 1.0f64),
        ("mild filtering (ρ = 0.5)", 0.5),
        ("aggressive reduction filters (ρ = 1/fanout)", 1.0 / 16.0),
    ] {
        println!("-- {title}");
        row(
            &[
                "leaves".into(),
                "tbon".into(),
                "direct".into(),
                "nodes".into(),
                "winner".into(),
            ],
            &[8, 10, 10, 8, 8],
        );
        for &leaves in &LEAVES {
            let tbon = TbonConfig::mrnet_like(&m, 16, rho);
            let nodes = tbon.internal_nodes(leaves);
            let t = tbon.capacity_bps(leaves) / 1e9;
            let d = direct_mapping_capacity_bps(&m, leaves, nodes) / 1e9;
            row(
                &[
                    leaves.to_string(),
                    format!("{t:.2}"),
                    format!("{d:.2}"),
                    nodes.to_string(),
                    if d > t {
                        "direct".into()
                    } else {
                        "tbon".into()
                    },
                ],
                &[8, 10, 10, 8, 8],
            );
            csv.push_str(&format!("{leaves},{rho},{t:.3},{d:.3},{nodes}\n"));
        }
        println!();
    }
    println!("shape: for ρ=1 the TBON is root-bound (flat) while the direct mapping");
    println!("scales with the analyzer partition — the paper's bisection argument.");

    let path = dir.join("tbon_compare.csv");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(csv.as_bytes()))
        .expect("write csv");
    println!("\nwrote {}", path.display());
}
