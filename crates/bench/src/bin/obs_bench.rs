//! Micro-benchmark for the observability registry hot paths.
//!
//! The instrumentation idiom caches metric handles in per-module
//! `OnceLock` structs, so the steady-state cost of counting is one
//! relaxed `fetch_add` — the acceptance bar is ~10 ns per counter
//! increment on a laptop core. This binary measures that directly (no
//! criterion: the loop is too tight to need statistics machinery) along
//! with the other paths a layer can hit: gauge updates, histogram
//! records, the `OnceLock` re-read, and the mutex-guarded registry
//! lookup that the idiom keeps off the hot path.
//!
//! ```sh
//! cargo run --release --bin obs_bench
//! ```

use opmr_obs::{registry, Counter, Gauge, Histogram, Registry};
use std::hint::black_box;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

const ITERS: u64 = 20_000_000;
const LOOKUP_ITERS: u64 = 200_000;

fn ns_per_op(iters: u64, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    // Dedicated registry so the numbers are not skewed by whatever the
    // process registered before; the global `registry()` is measured
    // separately for the lookup path.
    let reg = Registry::new();
    let counter: Arc<Counter> = reg.counter("bench_counter_total");
    let gauge: Arc<Gauge> = reg.gauge("bench_gauge");
    let hist: Arc<Histogram> = reg.histogram("bench_hist");

    println!("obs registry hot paths ({ITERS} iterations each)\n");

    let c = ns_per_op(ITERS, || {
        for _ in 0..ITERS {
            black_box(&counter).inc();
        }
    });
    println!("  counter.inc()            {c:7.2} ns/op   (bar: <= ~10 ns)");

    let a = ns_per_op(ITERS, || {
        for i in 0..ITERS {
            black_box(&counter).add(i & 7);
        }
    });
    println!("  counter.add(n)           {a:7.2} ns/op");

    let g = ns_per_op(ITERS, || {
        for i in 0..ITERS {
            let gr = black_box(&gauge);
            if i & 1 == 0 {
                gr.inc();
            } else {
                gr.dec();
            }
        }
    });
    println!("  gauge.inc()/dec()        {g:7.2} ns/op");

    let h = ns_per_op(ITERS, || {
        for i in 0..ITERS {
            black_box(&hist).record(i);
        }
    });
    println!("  histogram.record(v)      {h:7.2} ns/op");

    // The idiom's per-call overhead on top of the raw atomic: reading the
    // initialized OnceLock that caches the handle struct.
    static CACHED: OnceLock<Arc<Counter>> = OnceLock::new();
    let global = registry();
    CACHED.get_or_init(|| global.counter("obs_bench_cached_total"));
    let o = ns_per_op(ITERS, || {
        for _ in 0..ITERS {
            if let Some(c) = black_box(CACHED.get()) {
                c.inc();
            }
        }
    });
    println!("  OnceLock handle + inc()  {o:7.2} ns/op");

    // The cold path the idiom avoids: a by-name registry lookup (mutex +
    // hash) per increment. Printed as the "why handles are cached" datum.
    let l = ns_per_op(LOOKUP_ITERS, || {
        for _ in 0..LOOKUP_ITERS {
            global.counter("obs_bench_lookup_total").inc();
        }
    });
    println!("  registry lookup + inc()  {l:7.2} ns/op   ({LOOKUP_ITERS} iterations)");

    let snap_t0 = Instant::now();
    let snap = global.snapshot();
    println!(
        "\n  snapshot(): {} metrics in {:.1} us",
        snap.counters.len() + snap.gauges.len() + snap.histograms.len(),
        snap_t0.elapsed().as_nanos() as f64 / 1e3
    );

    assert_eq!(counter.get(), ITERS + ITERS / 8 * 28); // keep the loops honest
    let _ = black_box(gauge.get());
    let _ = black_box(hist.count());
}
