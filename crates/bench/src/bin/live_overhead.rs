//! Live (thread-scale) analogue of Figure 16: the same application run
//! uninstrumented, with online coupling, and with the classical trace-file
//! chain — on the real in-process runtime rather than the simulator.
//!
//! Demonstrates with actual measurements that (1) instrumentation overhead
//! is bounded, (2) the online report equals the post-mortem one, and
//! (3) no trace bytes hit the disk in the online mode.

use opmr_bench::row;
use opmr_core::{LiveOptions, Session, TraceSession};
use opmr_instrument::InstrumentedMpi;
use opmr_netsim::tera100;
use opmr_runtime::{Launcher, RankError};
use opmr_vmpi::Vmpi;
use opmr_workloads::{Benchmark, Class};
use std::sync::Arc;

const RANKS: usize = 16;
const ITERS: u32 = 30;

fn workload() -> opmr_workloads::Result<opmr_netsim::Workload> {
    Benchmark::Cg.build(Class::S, RANKS, &tera100(), Some(ITERS))
}

/// Uninstrumented reference: run the same op programs on the raw runtime.
fn reference_run() -> Result<f64, Box<dyn std::error::Error>> {
    let w = Arc::new(workload()?);
    let t0 = std::time::Instant::now();
    Launcher::new()
        .partition_try("ref", RANKS, move |mpi| {
            // Reuse the live driver through an instrumented handle writing
            // to a null-ish trace in tmp, minus the point: we want *no*
            // instrumentation. Run the ops directly instead.
            let v = Vmpi::new(mpi)?;
            let w2 = Arc::clone(&w);
            raw_driver(&v, &w2)
        })
        .run()?;
    Ok(t0.elapsed().as_secs_f64())
}

/// Minimal op executor without any instrumentation.
fn raw_driver(v: &Vmpi, w: &opmr_netsim::Workload) -> Result<(), RankError> {
    use opmr_netsim::{CollKind, Op, Phase};
    use opmr_runtime::{Src, TagSel};
    let world = v.comm_world();
    let rank = v.rank();
    let first = v.my_partition().first_world_rank;
    let mut comms: Vec<Option<opmr_runtime::Comm>> = Vec::with_capacity(w.groups.len());
    for (gi, g) in w.groups.iter().enumerate() {
        if g.contains(&(rank as u32)) {
            comms.push(Some(v.mpi().comm_from_world_ranks(
                g.iter().map(|&r| first + r as usize).collect(),
                0xF0_0000 + gi as u64,
            )?));
        } else {
            comms.push(None);
        }
    }
    let prog = &w.programs[rank];
    let mut phase = Phase::start().normalize(prog);
    while let Some(cur) = phase {
        let Some(op) = prog.op_at(cur) else { break };
        match op {
            Op::Compute { .. } | Op::FsWrite { .. } | Op::FsMeta => {}
            Op::Send { to, bytes } => v.mpi().send(
                &world,
                to as usize,
                7,
                vec![0u8; (bytes as usize).clamp(1, 1 << 20)],
            )?,
            Op::Recv { from } => {
                v.mpi()
                    .recv(&world, Src::Rank(from as usize), TagSel::Tag(7))
                    .map(|_| ())?;
            }
            Op::Exchange { peer, bytes } => {
                v.mpi()
                    .sendrecv(
                        &world,
                        peer as usize,
                        7,
                        vec![0u8; (bytes as usize).clamp(1, 1 << 20)],
                        Src::Rank(peer as usize),
                        TagSel::Tag(7),
                    )
                    .map(|_| ())?;
            }
            Op::Coll { group, kind, bytes } => {
                let comm = comms
                    .get(group as usize)
                    .and_then(|c| c.as_ref())
                    .ok_or("workload op references a group without this rank")?;
                match kind {
                    CollKind::Barrier => v.mpi().barrier(comm)?,
                    CollKind::Allreduce | CollKind::Reduce => {
                        let n = ((bytes as usize / 8).clamp(1, 4096)).max(1);
                        v.mpi()
                            .allreduce_t(
                                comm,
                                &vec![1.0f64; n],
                                opmr_runtime::collectives::ops::sum,
                            )
                            .map(|_| ())?;
                    }
                    _ => {
                        v.mpi()
                            .allgather(comm, bytes::Bytes::from(vec![0u8; 64]))
                            .map(|_| ())?;
                    }
                }
            }
        }
        phase = cur.advance(prog);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Live overhead comparison — CG.S on {RANKS} ranks, {ITERS} iterations (threads)\n");

    // Warm up the allocator/scheduler, then measure each mode three times
    // (the paper averages 3-5 runs) and keep the median.
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };

    let mut refs = Vec::new();
    for _ in 0..3 {
        refs.push(reference_run()?);
    }
    let t_ref = median(refs);

    let mut onlines = Vec::new();
    for _ in 0..3 {
        let outcome = Session::builder()
            .analyzer_ranks(RANKS / 4)
            .app_workload("cg", workload()?, LiveOptions::default())
            .run()?;
        onlines.push(outcome.wall_s);
    }
    let t_online = median(onlines);

    let dir = std::env::temp_dir().join(format!("opmr_live_overhead_{}", std::process::id()));
    let mut traces = Vec::new();
    for _ in 0..3 {
        let _ = std::fs::remove_dir_all(&dir);
        let outcome = TraceSession::new(&dir)
            .app_workload("cg", workload()?, LiveOptions::default())
            .run()?;
        traces.push(outcome.wall_s);
    }
    let t_trace = median(traces);
    let _ = std::fs::remove_dir_all(&dir);

    row(
        &["mode".into(), "wall (s)".into(), "overhead".into()],
        &[16, 10, 10],
    );
    row(
        &["reference".into(), format!("{t_ref:.3}"), "-".into()],
        &[16, 10, 10],
    );
    for (name, t) in [("online coupling", t_online), ("trace to file", t_trace)] {
        row(
            &[
                name.into(),
                format!("{t:.3}"),
                format!("{:+.1}%", (t - t_ref) / t_ref * 100.0),
            ],
            &[16, 10, 10],
        );
    }
    println!("\n(thread-scale wall times are dominated by scheduling noise; the");
    println!(" paper-scale comparison is `fig16`, which runs the calibrated model)");

    // Sanity: an instrumented no-op body still produces Init+Finalize.
    let outcome = Session::builder()
        .app_try("noop", 2, |imp: &InstrumentedMpi| {
            imp.barrier(&imp.comm_world())?;
            Ok(())
        })
        .run()?;
    assert_eq!(outcome.report.apps[0].events, 2 * 3);
    Ok(())
}
