//! Figure 14 — global throughput of VMPI Streams when writing 1 GB per
//! process at various writer/reader ratios.
//!
//! The paper's surface plot becomes a table: rows are writer counts,
//! columns are ratios; cells are global throughput in GB/s on the Tera 100
//! model. The file-system comparison and the ~1:25 crossover are printed
//! below, and a live thread-scale validation run exercises the real
//! stream implementation.

use opmr_bench::{out_dir, row};
use opmr_netsim::stream_model::{crossover_ratio, evaluate, readers_for};
use opmr_netsim::tera100;
use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{Balance, Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, WriteStream};
use std::io::Write as _;

const RATIOS: [f64; 10] = [1.0, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0, 25.0, 32.0, 70.0];
const WRITERS: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 2560];
const GB: f64 = 1e9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = tera100();
    let dir = out_dir("fig14")?;
    let mut csv = String::from("writers,ratio,readers,throughput_gbs\n");

    println!("Figure 14 — VMPI Stream global throughput (GB/s), Tera 100 model");
    println!("1 GB per writer, 1 MB blocks, NA=3, round-robin balancing\n");
    let mut header = vec!["writers".to_string()];
    header.extend(RATIOS.iter().map(|r| format!("1:{r:.0}")));
    let widths = vec![8; header.len()];
    row(&header, &widths);
    for &writers in &WRITERS {
        let mut cells = vec![writers.to_string()];
        for &ratio in &RATIOS {
            let p = evaluate(&m, writers, ratio, 1 << 30);
            cells.push(format!("{:.1}", p.throughput_bps / GB));
            csv.push_str(&format!(
                "{writers},{ratio},{},{:.3}\n",
                p.readers,
                p.throughput_bps / GB
            ));
        }
        row(&cells, &widths);
    }

    let peak = evaluate(&m, 2560, 1.0, 1 << 30);
    println!(
        "\npeak @2560 writers, ratio 1:1 : {:.1} GB/s  (paper: 98.5 GB/s)",
        peak.throughput_bps / GB
    );
    println!(
        "file-system share for 2560 cores: {:.1} GB/s  (paper: 9.1 GB/s)",
        m.fs_share_bps(2560) / GB
    );
    let x = crossover_ratio(&m, 2560);
    println!("stream/file-system crossover   : 1 reader per ~{x:.0} writers (paper: ~25)");
    println!(
        "practical trade-off band        : ratios 1:1 .. 1:32, 1:10 recommended; \
         readers at 1:10 = {}",
        readers_for(2560, 10.0)
    );

    // Live thread-scale validation of the real stream implementation.
    println!("\nLive validation (in-process, 64 MB per writer):");
    row(
        &["writers".into(), "readers".into(), "GB/s".into()],
        &[8, 8, 8],
    );
    for (writers, readers) in [(1usize, 1usize), (2, 1), (4, 1), (4, 2), (4, 4)] {
        let gbs = live_throughput(writers, readers, 64 << 20)?;
        row(
            &[
                writers.to_string(),
                readers.to_string(),
                format!("{gbs:.2}"),
            ],
            &[8, 8, 8],
        );
        csv.push_str(&format!("live_{writers},{readers},{readers},{gbs:.3}\n"));
    }

    let path = dir.join("fig14.csv");
    std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// Runs the Figure 11/12 coupling live and measures end-to-end throughput.
fn live_throughput(
    writers: usize,
    readers: usize,
    bytes_per_writer: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let cfg = StreamConfig::new(1 << 20, 3, Balance::RoundRobin);
    let start = std::time::Instant::now();
    Launcher::new()
        .partition_try("writers", writers, move |mpi| {
            let v = Vmpi::new(mpi)?;
            let analyzer = v
                .partition_by_name("Analyzer")
                .ok_or("no Analyzer partition")?;
            let analyzer_id = analyzer.id;
            let mut map = Map::new();
            map_partitions(&v, analyzer_id, MapPolicy::RoundRobin, &mut map)?;
            let mut st = WriteStream::open_map(&v, &map, cfg, 1)?;
            let block = vec![0u8; 1 << 20];
            for _ in 0..bytes_per_writer >> 20 {
                st.write(&block)?;
            }
            st.close()?;
            Ok(())
        })
        .partition_try("Analyzer", readers, move |mpi| {
            let v = Vmpi::new(mpi)?;
            let mut map = Map::new();
            for pid in 0..v.partition_count() {
                if pid != v.partition_id() {
                    map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map)?;
                }
            }
            if map.is_empty() {
                return Ok(());
            }
            let mut st = ReadStream::open_map(&v, &map, cfg, 1)?;
            while st.read(ReadMode::Blocking)?.is_some() {}
            Ok(())
        })
        .run()?;
    let total = (writers * bytes_per_writer) as f64;
    Ok(total / start.elapsed().as_secs_f64() / GB)
}
