//! Figure 18 — sample outputs from the density-map module.
//!
//! Panels at paper scale:
//! (a) LU.D @1024 — `MPI_Send` hits per rank (the 2/3/4-neighbour
//!     gradient), (b) LU.D @1024 — point-to-point total size,
//! (c) BT.D @8281 — time in collectives, (d) BT.D @8281 — time in
//!     point-to-point waits, (e) BT.D @8281 — point-to-point total size.
//!
//! Hits/sizes come from the static pattern; times come from the
//! discrete-event simulation's per-rank accounting. Each map is written as
//! a PGM image and summarized (min/max/mean/cv) like the paper's caption
//! values.

use opmr_analysis::DensityMap;
use opmr_bench::{out_dir, shape};
use opmr_netsim::{simulate, tera100, ToolModel};
use opmr_workloads::{Benchmark, Class};

fn dump(dir: &std::path::Path, tag: &str, map: &DensityMap) -> std::io::Result<()> {
    let s = map.stats();
    println!(
        "{tag:>28} : min {:.4e}  max {:.4e}  mean {:.4e}  cv {:.4}",
        s.min, s.max, s.mean, s.cv
    );
    std::fs::write(dir.join(format!("{tag}.pgm")), map.to_pgm(6))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = tera100();
    let dir = out_dir("fig18")?;
    println!("Figure 18 — density-map module outputs\n");

    // Panels (a)/(b): LU.D on 1024 cores, static pattern.
    let lu = Benchmark::Lu.build(Class::D, 1024, &m, Some(3))?;
    let (hits, bytes) = shape::send_maps(&lu);
    dump(
        &dir,
        "lu_d_1024_send_hits",
        &DensityMap::new("LU.D MPI_Send hits", hits),
    )?;
    dump(
        &dir,
        "lu_d_1024_p2p_size",
        &DensityMap::new("LU.D p2p total size", bytes),
    )?;

    // Panels (c)/(d)/(e): BT.D on 8281 cores — per-rank times from the DES.
    println!("\nsimulating BT.D on 8281 ranks (takes a moment)...");
    let bt = Benchmark::Bt.build(Class::D, 8281, &m, Some(2))?;
    let r = simulate(&bt, &m, &ToolModel::None)?;
    dump(
        &dir,
        "bt_d_8281_coll_time",
        &DensityMap::new("BT.D collective time", r.per_rank_coll_ns.clone()),
    )?;
    dump(
        &dir,
        "bt_d_8281_wait_time",
        &DensityMap::new("BT.D p2p wait time", r.per_rank_p2p_ns.clone()),
    )?;
    let send_bytes: Vec<f64> = r.per_rank_send_bytes.iter().map(|&b| b as f64).collect();
    dump(
        &dir,
        "bt_d_8281_p2p_size",
        &DensityMap::new("BT.D p2p total size", send_bytes),
    )?;

    // The paper's reading of panel (e): a small total-size imbalance
    // (blue 660.93 MB vs red 664.87 MB ≈ 0.6 %); report ours.
    let sb = DensityMap::new(
        "BT.D p2p size",
        r.per_rank_send_bytes.iter().map(|&b| b as f64).collect(),
    );
    let st = sb.stats();
    println!(
        "\nBT.D p2p size spread: {:.1}% (paper: ~0.6% between 660.93 MB and 664.87 MB)",
        (st.max - st.min) / st.mean * 100.0
    );

    println!("\nwrote PGM maps under {}", dir.display());
    Ok(())
}
