//! Figure 17 — sample outputs from the topological module: communication
//! matrices and Graphviz topologies.
//!
//! Reproduces every panel at the paper's exact scales:
//! (a) CG.D matrix @128, (b) CG.D topology @128, (c) EulerMHD @2048,
//! (d) SP @2025, (e) LU @1024 — all weighted in total size, plus hits and
//! time variants. A live thread-scale CG session validates that the
//! statically derived pattern matches what the real online pipeline
//! observes.

use opmr_analysis::WeightKind;
use opmr_bench::{out_dir, shape};
use opmr_core::Session;
use opmr_netsim::tera100;
use opmr_workloads::{Benchmark, Class};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = tera100();
    let dir = out_dir("fig17")?;

    let panels: [(&str, Benchmark, Class, usize); 4] = [
        ("cg_d_128", Benchmark::Cg, Class::D, 128),
        ("eulermhd_2048", Benchmark::EulerMhd, Class::D, 2048),
        ("sp_2025", Benchmark::Sp, Class::D, 2025),
        ("lu_1024", Benchmark::Lu, Class::D, 1024),
    ];

    println!("Figure 17 — topological module outputs\n");
    for (tag, bench, class, ranks) in panels {
        let w = bench.build(class, ranks, &m, Some(3))?;
        let topo = shape::topology_of(&w);
        println!(
            "{:>14} : {} ranks, {} edges, mean degree {:.2}, symmetric(hits)={}",
            tag,
            topo.ranks(),
            topo.edge_count(),
            topo.mean_degree(),
            topo.is_symmetric_in_hits()
        );
        std::fs::write(
            dir.join(format!("{tag}_topology_size.dot")),
            topo.to_dot(tag, WeightKind::Bytes),
        )?;
        std::fs::write(
            dir.join(format!("{tag}_topology_hits.dot")),
            topo.to_dot(tag, WeightKind::Hits),
        )?;
        if ranks <= 256 {
            // Figure 17(a): the dense matrix form.
            std::fs::write(
                dir.join(format!("{tag}_matrix_size.txt")),
                topo.matrix_text(WeightKind::Bytes),
            )?;
        }
    }

    // Live validation: run CG on the real online pipeline at thread scale
    // and compare the observed edge set with the static pattern.
    println!("\nLive validation: CG class S on 16 ranks through the full online pipeline");
    let live_w = Benchmark::Cg.build(Class::S, 16, &m, Some(2))?;
    let static_topo = shape::topology_of(&live_w);
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app_workload("cg", live_w, opmr_core::LiveOptions::default())
        .run()?;
    let live_topo = &outcome.report.apps[0].topology;
    let mut matching_edges = 0;
    for ((s, d), _w) in static_topo.sorted_edges() {
        if live_topo.edge(s, d).is_some() || live_topo.edge(d, s).is_some() {
            matching_edges += 1;
        }
    }
    println!(
        "  static edges: {}, observed live edges: {}, static covered: {}/{}",
        static_topo.edge_count(),
        live_topo.edge_count(),
        matching_edges,
        static_topo.edge_count()
    );
    std::fs::write(
        dir.join("cg_s_16_live_topology_size.dot"),
        live_topo.to_dot("cg_live", WeightKind::Bytes),
    )?;

    println!("\nwrote artifacts under {}", dir.display());
    println!(
        "render with: dot -Tpng {}/cg_d_128_topology_size.dot -o cg.png",
        dir.display()
    );
    Ok(())
}
