//! In-text table — instrumentation-data bandwidth `Bi` and measurement
//! volumes (Section IV-C).
//!
//! Paper anchors: `Bi(SP.C) = 2.37 GB/s` and `Bi(SP.D) = 334.99 MB/s` at
//! 900 cores; online-coupling volumes for SP.D growing from 923.93 MB (64
//! ranks) to 333.22 GB (4096 ranks).

use opmr_bench::{out_dir, row};
use opmr_netsim::{simulate, tera100, ToolModel};
use opmr_workloads::{Benchmark, Class};
use std::io::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = tera100();
    let dir = out_dir("bi_table")?;
    let mut csv = String::from("bench,class,ranks,bi_mbs,volume_gb,elapsed_s\n");

    println!("In-text Bi table — SP on the Tera 100 model (online coupling, 1:1)\n");
    row(
        &[
            "series".into(),
            "ranks".into(),
            "Bi".into(),
            "volume(full)".into(),
            "paper".into(),
        ],
        &[8, 8, 14, 14, 22],
    );

    let cases = [
        (Class::C, 900usize, 10u32, "Bi=2.37 GB/s"),
        (Class::D, 900, 10, "Bi=334.99 MB/s"),
        (Class::D, 64, 10, "volume 923.93 MB"),
        (Class::D, 1024, 10, "(interpolates)"),
        (Class::D, 4096, 10, "volume 333.22 GB"),
    ];
    for (class, ranks, iters, paper) in cases {
        let w = Benchmark::Sp.build(class, ranks, &m, Some(iters))?;
        let r = simulate(&w, &m, &ToolModel::online_coupling(1.0))?;
        let nominal = Benchmark::Sp.nominal_iters(class) as f64 / iters as f64;
        let volume_gb = r.stats.event_bytes as f64 * nominal / 1e9;
        let bi = r.bi_bps();
        let bi_str = if bi >= 1e9 {
            format!("{:.2} GB/s", bi / 1e9)
        } else {
            format!("{:.1} MB/s", bi / 1e6)
        };
        row(
            &[
                format!("SP.{class}"),
                ranks.to_string(),
                bi_str,
                format!("{volume_gb:.2} GB"),
                paper.to_string(),
            ],
            &[8, 8, 14, 14, 22],
        );
        csv.push_str(&format!(
            "SP,{class},{ranks},{:.2},{volume_gb:.3},{:.4}\n",
            bi / 1e6,
            r.elapsed_s
        ));
    }

    println!("\nBi(C)/Bi(D) ratio must exceed ~5 (paper: 2.37 GB / 335 MB ≈ 7.1).");
    let path = dir.join("bi_table.csv");
    std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))?;
    println!("wrote {}", path.display());
    Ok(())
}
