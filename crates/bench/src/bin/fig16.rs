//! Figure 16 — relative overhead of different tools for NAS SP.D on the
//! Curie model: Reference, Scalasca (summary), Score-P profile, Score-P
//! trace (+SIONlib through the file-system model) and Online Coupling.
//!
//! Shape targets: the online coupling stays below the file-based trace at
//! every scale, the trace chain's overhead grows with rank count (FS
//! contention), profile-only tools sit in between.

use opmr_bench::{out_dir, row};
use opmr_netsim::{curie, simulate, ToolModel};
use opmr_workloads::{Benchmark, Class};
use std::io::Write as _;

const RANKS: [usize; 5] = [64, 256, 1024, 2025, 4096];
const ITERS: u32 = 10;

fn tools() -> Vec<(&'static str, ToolModel)> {
    vec![
        ("Reference", ToolModel::None),
        ("Scalasca", ToolModel::scalasca()),
        ("ScoreP profile", ToolModel::scorep_profile()),
        ("ScoreP trace", ToolModel::scorep_trace()),
        ("Online Coupling", ToolModel::online_coupling(1.0)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = curie();
    let dir = out_dir("fig16")?;
    let mut csv = String::from("tool,ranks,t_s,overhead_pct\n");

    println!("Figure 16 — relative overhead (%) for SP.D, Curie model\n");
    let mut header = vec!["tool".to_string()];
    header.extend(RANKS.iter().map(|r| r.to_string()));
    let widths: Vec<usize> = std::iter::once(16usize)
        .chain(RANKS.iter().map(|_| 8))
        .collect();
    row(&header, &widths);

    // Reference times first.
    let mut t_ref = Vec::new();
    for &ranks in &RANKS {
        let w = Benchmark::Sp.build(Class::D, ranks, &m, Some(ITERS))?;
        let r = simulate(&w, &m, &ToolModel::None)?;
        t_ref.push(r.elapsed_s);
    }

    for (name, tool) in tools() {
        let mut cells = vec![name.to_string()];
        for (i, &ranks) in RANKS.iter().enumerate() {
            let w = Benchmark::Sp.build(Class::D, ranks, &m, Some(ITERS))?;
            let r = simulate(&w, &m, &tool)?;
            let overhead = (r.elapsed_s - t_ref[i]) / t_ref[i] * 100.0;
            cells.push(format!("{overhead:.1}"));
            csv.push_str(&format!(
                "{name},{ranks},{:.4},{overhead:.2}\n",
                r.elapsed_s
            ));
        }
        row(&cells, &widths);
    }

    // The in-text volume comparison: measurement-data growth 64 → 4096
    // ranks, extrapolated from simulated iterations to the nominal 500.
    println!("\nMeasurement data volumes (extrapolated to the full 500 iterations):");
    let nominal = Benchmark::Sp.nominal_iters(Class::D) as f64 / ITERS as f64;
    for &ranks in &[64usize, 4096] {
        let w = Benchmark::Sp.build(Class::D, ranks, &m, Some(ITERS))?;
        let online = simulate(&w, &m, &ToolModel::online_coupling(1.0))?;
        let vol = online.stats.event_bytes as f64 * nominal;
        println!(
            "  {ranks:>5} ranks : {:.2} GB streamed (paper: 0.92 GB @64 → 333 GB @4096)",
            vol / 1e9
        );
        csv.push_str(&format!("volume,{ranks},{:.3},0\n", vol / 1e9));
    }

    let path = dir.join("fig16.csv");
    std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))?;
    println!("\nwrote {}", path.display());
    Ok(())
}
