//! Golden-shape regression tests for the bench binaries' CSV artifacts.
//!
//! `serve_bench` and `tbon_compare` write CSVs that external dashboards
//! and the CI smoke scripts scrape by column name. The cheap tests pin
//! the header strings; the `#[ignore]`d tests (run by the nightly
//! `--include-ignored` job) execute the binaries in `--quick` mode and
//! verify the emitted files actually match the pinned shape — header
//! first, rectangular rows, numeric columns that parse.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_bench::{CODEC_BENCH_CSV_HEADER, SERVE_BENCH_CSV_HEADER, TBON_COMPARE_CSV_HEADER};
use std::path::PathBuf;
use std::process::Command;

#[test]
fn serve_bench_csv_header_is_pinned() {
    // Renaming/reordering a column is a breaking change for every
    // consumer of out/serve_bench/serve_bench.csv; change it here only
    // together with those consumers.
    assert_eq!(
        SERVE_BENCH_CSV_HEADER,
        "scenario,clients,versions,queries,qps,updates,deltas,resyncs,lag_p50_ms,lag_p99_ms"
    );
}

#[test]
fn tbon_compare_csv_header_is_pinned() {
    assert_eq!(
        TBON_COMPARE_CSV_HEADER,
        "source,leaves,reduction,tbon_gbs,direct_gbs,internal_nodes"
    );
}

#[test]
fn codec_bench_csv_header_is_pinned() {
    // The nightly golden-number CI step scrapes bytes_per_event and
    // events_per_sec by column name; change them only together.
    assert_eq!(
        CODEC_BENCH_CSV_HEADER,
        "workload,class,ranks,events,encoding,events_per_sec,bytes_per_event,reduction_vs_fixed"
    );
}

#[test]
fn metrics_bench_csv_header_is_pinned() {
    // The canonical per-window series header (`MetricsSeries::to_csv`),
    // written by metrics_bench and scraped by the CI metrics smoke step.
    assert_eq!(
        opmr_metrics::WINDOW_CSV_HEADER,
        "window,start_ns,ranks,lb_eff,comm_eff,ser_frac,xfer_frac,wait_frac,bytes,hits"
    );
}

/// Runs a bench binary with `--quick` into a scratch OPMR_OUT and returns
/// the CSV it wrote.
fn run_quick(bin: &str, rel_csv: &str) -> String {
    let label = std::path::Path::new(bin)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    let out = std::env::temp_dir().join(format!("opmr_golden_{}_{}", label, std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let status = Command::new(bin)
        .arg("--quick")
        .env("OPMR_OUT", &out)
        .status()
        .expect("spawn bench binary");
    assert!(status.success(), "{bin} --quick failed: {status}");
    let path: PathBuf = out.join(rel_csv);
    let csv =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let _ = std::fs::remove_dir_all(&out);
    csv
}

/// Shape check: pinned header, rectangular rows, numeric data columns.
fn check_shape(csv: &str, header: &str, text_cols: &[usize], min_rows: usize) {
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(header), "header drifted");
    let cols = header.split(',').count();
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), cols, "row {i} is not rectangular: {line:?}");
        for (c, f) in fields.iter().enumerate() {
            if text_cols.contains(&c) {
                assert!(!f.is_empty(), "row {i} col {c} empty");
            } else {
                f.parse::<f64>()
                    .unwrap_or_else(|e| panic!("row {i} col {c} ({f:?}) not numeric: {e}"));
            }
        }
        rows += 1;
    }
    assert!(
        rows >= min_rows,
        "expected >= {min_rows} data rows, got {rows}"
    );
}

#[test]
#[ignore = "executes the serve_bench binary; run via --include-ignored"]
fn serve_bench_quick_emits_the_pinned_shape() {
    let csv = run_quick(
        env!("CARGO_BIN_EXE_serve_bench"),
        "serve_bench/serve_bench.csv",
    );
    // Column 0 (scenario) is text; everything else is numeric.
    check_shape(&csv, SERVE_BENCH_CSV_HEADER, &[0], 2);
    // The quick run still covers the scenarios the dashboard keys on.
    assert!(csv.contains("\nlaggy,"), "laggy scenario row missing");
}

#[test]
#[ignore = "executes the metrics_bench binary; run via --include-ignored"]
fn metrics_bench_quick_emits_the_pinned_shape() {
    let csv = run_quick(
        env!("CARGO_BIN_EXE_metrics_bench"),
        "metrics_bench/metrics_windows.csv",
    );
    // Every column of the window series is numeric.
    check_shape(&csv, opmr_metrics::WINDOW_CSV_HEADER, &[], 2);
}

#[test]
#[ignore = "executes the codec_bench binary; run via --include-ignored"]
fn codec_bench_quick_emits_the_pinned_shape() {
    let csv = run_quick(env!("CARGO_BIN_EXE_codec_bench"), "codec/codec_bench.csv");
    // Columns 0/1/4 (workload, class, encoding) are text; the rest numeric.
    check_shape(&csv, CODEC_BENCH_CSV_HEADER, &[0, 1, 4], 12);
    // The acceptance bar: the delta layout alone moves >= 3x fewer bytes
    // per event than fixed on every catalog workload in the table.
    for line in csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f[4] != "fixed" {
            let reduction: f64 = f[7].parse().unwrap();
            assert!(
                reduction >= 3.0,
                "{} {} reduced only {reduction:.2}x vs fixed",
                f[0],
                f[4]
            );
        }
    }
}

#[test]
#[ignore = "executes the tbon_compare binary; run via --include-ignored"]
fn tbon_compare_quick_emits_the_pinned_shape() {
    let csv = run_quick(env!("CARGO_BIN_EXE_tbon_compare"), "tbon/tbon_compare.csv");
    // Column 0 (source) is text; everything else, the reduction ratio
    // included, is numeric.
    check_shape(&csv, TBON_COMPARE_CSV_HEADER, &[0], 2);
    // Both the calibrated model and the executable overlay contribute.
    assert!(csv.contains("\nmodel,"), "model rows missing");
    assert!(csv.contains("\nmeasured-"), "measured rows missing");
}
