//! Property tests: the blackboard never loses or double-fires a job, for
//! arbitrary KS topologies, entry orders and worker counts.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use bytes::Bytes;
use opmr_blackboard::{type_id, Blackboard, BlackboardConfig, DataEntry, KnowledgeSource};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-sensitivity KSs fire exactly once per posted entry of their
    /// type, whatever the posting order and parallelism.
    #[test]
    fn exactly_once_per_entry(
        counts in proptest::collection::vec(0usize..200, 1..5),
        workers in 0usize..5,
        queues in 1usize..10,
    ) {
        let bb = Blackboard::new(BlackboardConfig { queues, workers });
        let hits: Vec<Arc<AtomicUsize>> =
            (0..counts.len()).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let tys: Vec<u64> = (0..counts.len())
            .map(|i| type_id("prop", &format!("t{i}")))
            .collect();
        for (i, ty) in tys.iter().enumerate() {
            let h = Arc::clone(&hits[i]);
            bb.register(KnowledgeSource::new(&format!("k{i}"), vec![*ty], move |_bb, es| {
                assert_eq!(es.len(), 1);
                h.fetch_add(1, Ordering::SeqCst);
            }));
        }
        if workers > 0 {
            bb.start();
        }
        // Interleave posts across types.
        let max = counts.iter().copied().max().unwrap_or(0);
        for round in 0..max {
            for (i, &c) in counts.iter().enumerate() {
                if round < c {
                    bb.post(DataEntry::bytes(tys[i], Bytes::new()));
                }
            }
        }
        if workers > 0 {
            bb.stop();
        } else {
            bb.run_inline();
        }
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(hits[i].load(Ordering::SeqCst), c, "type {}", i);
        }
        prop_assert_eq!(
            bb.stats().jobs_executed,
            counts.iter().map(|&c| c as u64).sum::<u64>()
        );
    }

    /// Join KSs (one sensitivity per type) fire exactly
    /// `min(posted_a, posted_b)` times.
    #[test]
    fn join_fires_min_of_inputs(
        a in 0usize..60,
        b in 0usize..60,
        interleave in any::<bool>(),
        workers in 0usize..4,
    ) {
        let bb = Blackboard::new(BlackboardConfig { queues: 4, workers });
        let (ta, tb) = (type_id("p", "a"), type_id("p", "b"));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        bb.register(KnowledgeSource::new("join", vec![ta, tb], move |_bb, es| {
            assert_eq!(es.len(), 2);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        if workers > 0 {
            bb.start();
        }
        if interleave {
            for i in 0..a.max(b) {
                if i < a { bb.post(DataEntry::bytes(ta, Bytes::new())); }
                if i < b { bb.post(DataEntry::bytes(tb, Bytes::new())); }
            }
        } else {
            for _ in 0..a { bb.post(DataEntry::bytes(ta, Bytes::new())); }
            for _ in 0..b { bb.post(DataEntry::bytes(tb, Bytes::new())); }
        }
        if workers > 0 { bb.stop(); } else { bb.run_inline(); }
        prop_assert_eq!(hits.load(Ordering::SeqCst), a.min(b));
    }

    /// Cascades conserve mass: N packs × fanout K = K·N leaf jobs, under
    /// any worker count.
    #[test]
    fn cascade_conservation(
        packs in 1usize..80,
        fanout in 1usize..20,
        workers in 1usize..5,
    ) {
        let bb = Blackboard::new(BlackboardConfig { queues: 8, workers });
        let (tp, te) = (type_id("c", "pack"), type_id("c", "event"));
        let leafs = Arc::new(AtomicUsize::new(0));
        let l2 = Arc::clone(&leafs);
        bb.register(KnowledgeSource::new("expand", vec![tp], move |bb, _es| {
            for _ in 0..fanout {
                bb.post(DataEntry::bytes(te, Bytes::new()));
            }
        }));
        bb.register(KnowledgeSource::new("leaf", vec![te], move |_bb, _es| {
            l2.fetch_add(1, Ordering::SeqCst);
        }));
        bb.start();
        for _ in 0..packs {
            bb.post(DataEntry::bytes(tp, Bytes::new()));
        }
        bb.stop();
        prop_assert_eq!(leafs.load(Ordering::SeqCst), packs * fanout);
        prop_assert_eq!(bb.stats().entries_dropped, 0);
    }
}
