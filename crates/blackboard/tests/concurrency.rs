//! Concurrency tests for registry mutation racing the data path: external
//! `remove` while posters hammer the board, and knowledge sources that
//! register/remove *themselves* from inside their operation (the paper's
//! opportunistic-reasoning hook) while multiple workers execute jobs.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_blackboard::{type_id, Blackboard, BlackboardConfig, DataEntry, KnowledgeSource, KsId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

fn board(workers: usize) -> Blackboard {
    Blackboard::new(BlackboardConfig { queues: 4, workers })
}

fn counter_ks(name: &str, ty: u64, fired: &Arc<AtomicU64>) -> KnowledgeSource {
    let fired = Arc::clone(fired);
    KnowledgeSource::new(name, vec![ty], move |_bb, _es| {
        fired.fetch_add(1, Ordering::Relaxed);
    })
}

#[test]
fn remove_races_with_multithreaded_post() {
    let ty = type_id("race", "pack");
    let bb = board(4);
    let fired = Arc::new(AtomicU64::new(0));
    let victim = bb.register(counter_ks("victim", ty, &fired));
    let survivor_fired = Arc::new(AtomicU64::new(0));
    bb.register(counter_ks("survivor", ty, &survivor_fired));
    bb.start();

    const POSTERS: usize = 4;
    const PER_POSTER: u64 = 2_000;
    let gate = Arc::new(Barrier::new(POSTERS + 1));
    let posters: Vec<_> = (0..POSTERS)
        .map(|_| {
            let bb = bb.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                for i in 0..PER_POSTER {
                    bb.post(DataEntry::value(ty, i));
                }
            })
        })
        .collect();

    // Rip the victim out mid-flood, from a thread of its own.
    let remover = {
        let bb = bb.clone();
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            gate.wait();
            std::thread::yield_now();
            assert!(bb.remove(victim), "victim was registered");
            assert!(!bb.remove(victim), "second removal must report absence");
        })
    };
    for p in posters {
        p.join().unwrap();
    }
    remover.join().unwrap();
    bb.drain();
    bb.stop();

    let total = (POSTERS as u64) * PER_POSTER;
    assert_eq!(
        survivor_fired.load(Ordering::Relaxed),
        total,
        "the surviving KS must see every post"
    );
    assert!(
        fired.load(Ordering::Relaxed) <= total,
        "the removed KS cannot fire more often than entries were posted"
    );
    assert_eq!(bb.ks_count(), 1);
    assert_eq!(bb.stats().entries_posted, total);
}

#[test]
fn self_removing_ks_fires_boundedly_under_workers() {
    // A KS that removes *itself* from inside its operation: jobs already
    // queued at removal time may still run (documented semantics), but
    // entries posted *after* the removal is visible must never reach it.
    let ty = type_id("race", "self-remove");
    let bb = board(4);
    let fired = Arc::new(AtomicU64::new(0));
    let id_cell: Arc<Mutex<Option<KsId>>> = Arc::new(Mutex::new(None));
    let fired2 = Arc::clone(&fired);
    let cell2 = Arc::clone(&id_cell);
    let suicidal = KnowledgeSource::new("suicidal", vec![ty], move |bb, _es| {
        if fired2.fetch_add(1, Ordering::Relaxed) == 2 {
            let id = cell2.lock().unwrap().expect("id published before start");
            bb.remove(id);
        }
    });
    *id_cell.lock().unwrap() = Some(bb.register(suicidal));
    bb.start();

    // Feed the board until the self-removal lands (workers race us here).
    let mut posted_before = 0u64;
    while bb.ks_count() > 0 {
        bb.post(DataEntry::value(ty, posted_before));
        posted_before += 1;
        std::thread::yield_now();
    }
    // Everything posted from now on targets an empty registry.
    const AFTER: u64 = 4_000;
    for i in 0..AFTER {
        bb.post(DataEntry::value(ty, i));
    }
    bb.drain();
    bb.stop();

    let fired = fired.load(Ordering::Relaxed);
    assert!(fired >= 3, "the KS must reach its self-removal firing");
    assert!(
        fired <= posted_before,
        "post-removal entries must not fire the KS \
         ({fired} fired, {posted_before} posted before removal)"
    );
    assert_eq!(bb.ks_count(), 0);
    assert_eq!(bb.stats().entries_posted, posted_before + AFTER);
}

#[test]
fn ks_chain_registration_from_inside_operations() {
    // Opportunistic reasoning under load: a bootstrap KS registers a
    // second-stage KS from inside its operation while posts keep flowing;
    // the stage-2 KS must start firing for entries posted after its
    // registration, and churning register/remove in parallel must neither
    // deadlock nor corrupt counts.
    let trigger = type_id("chain", "trigger");
    let work = type_id("chain", "work");
    let bb = board(4);
    let stage2_fired = Arc::new(AtomicU64::new(0));

    let s2 = Arc::clone(&stage2_fired);
    let boot = KnowledgeSource::new("boot", vec![trigger], move |bb, _es| {
        let s2 = Arc::clone(&s2);
        bb.register(KnowledgeSource::new(
            "stage2",
            vec![work],
            move |_bb, _es| {
                s2.fetch_add(1, Ordering::Relaxed);
            },
        ));
    });
    let boot_id = bb.register(boot);
    bb.start();

    // Parallel churn: repeatedly register and remove throwaway KSs while
    // the chain is being exercised.
    let churn = {
        let bb = bb.clone();
        std::thread::spawn(move || {
            for _ in 0..500 {
                let id = bb.register(KnowledgeSource::new("churn", vec![work], |_bb, _es| {}));
                assert!(bb.remove(id));
            }
        })
    };

    bb.post(DataEntry::value(trigger, 0u64));
    bb.drain(); // stage2 is registered once the trigger job ran
    assert!(bb.ks_count() >= 2, "stage2 must be on the board");
    const WORK: u64 = 1_000;
    for i in 0..WORK {
        bb.post(DataEntry::value(work, i));
    }
    churn.join().unwrap();
    bb.drain();
    bb.stop();

    assert_eq!(
        stage2_fired.load(Ordering::Relaxed),
        WORK,
        "stage2 must see every post after its registration"
    );
    assert!(bb.remove(boot_id));
    assert_eq!(bb.ks_count(), 1, "only stage2 remains");
    let stats = bb.stats();
    assert_eq!(stats.entries_posted, 1 + WORK);
    assert!(stats.jobs_executed > WORK, "trigger + work jobs all ran");
}
