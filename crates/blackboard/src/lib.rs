//! # opmr-blackboard — the parallel multi-level blackboard engine
//!
//! Reproduction of the paper's distributed analysis engine core
//! (Sections II-B and III-B). The blackboard is a data-centric task engine:
//!
//! * a **data entry** is a tuple `{Type, Size, Payload}` ([`DataEntry`]);
//! * a **knowledge source** (KS) is `{{Sensitivities}, Operation}`
//!   ([`KnowledgeSource`]): a set of entry types that *trigger* a function
//!   over the collected inputs. A KS may carry several sensitivities of the
//!   same type, may submit any entry, and may register or remove any KS —
//!   including itself — giving the simplified opportunistic control the
//!   paper describes;
//! * when an entry is posted, matching sensitivities are looked up in the
//!   **sensitivity hash table**; once a KS's *last unsatisfied sensitivity*
//!   is filled, a **job** `{{Data entries}, Operation}` is created and
//!   pushed onto one of an **array of individually-locked FIFOs** (chosen at
//!   random to reduce contention);
//! * a **worker pool** sweeps the FIFOs from random starting points, with a
//!   progressive back-off when no job is available;
//! * entries are read-mostly and reference-counted; payloads are writable
//!   only while uniquely owned ([`DataEntry::payload_mut`] semantics come
//!   from `Arc::get_mut`);
//! * the **multi-level** blackboard of Figure 5 is obtained by hashing the
//!   level name into the entry type id ([`type_id`]), so identical KS sets
//!   can coexist per instrumented application.

pub mod engine;
pub mod entry;
pub mod ks;

pub use engine::{Blackboard, BlackboardConfig, BlackboardStats};
pub use entry::{type_id, DataEntry, Payload, TypeId};
pub use ks::{KnowledgeSource, KsId, Operation};
