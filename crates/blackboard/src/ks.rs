//! Knowledge sources: sensitivities + operation.

use crate::engine::Blackboard;
use crate::entry::{DataEntry, TypeId};
use std::sync::Arc;

/// Identifier of a registered knowledge source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KsId(pub u64);

/// The function triggered when a KS's sensitivities are satisfied.
///
/// Receives the blackboard handle (for posting new entries and for
/// registering/removing knowledge sources — the paper's simplified
/// opportunistic reasoning) and exactly one entry per declared sensitivity,
/// in declaration order.
pub type Operation = Arc<dyn Fn(&Blackboard, &[DataEntry]) + Send + Sync>;

/// A knowledge source: `{{Sensitivities}, Operation}`.
#[derive(Clone)]
pub struct KnowledgeSource {
    name: String,
    sensitivities: Vec<TypeId>,
    op: Operation,
}

impl KnowledgeSource {
    /// Builds a KS triggered by one entry of each listed type.
    /// Repeating a type requires that many entries of it per firing.
    pub fn new(
        name: &str,
        sensitivities: Vec<TypeId>,
        op: impl Fn(&Blackboard, &[DataEntry]) + Send + Sync + 'static,
    ) -> KnowledgeSource {
        assert!(
            !sensitivities.is_empty(),
            "a knowledge source needs at least one sensitivity"
        );
        KnowledgeSource {
            name: name.to_string(),
            sensitivities,
            op: Arc::new(op),
        }
    }

    /// Human-readable name (reports, diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared sensitivities, in order.
    pub fn sensitivities(&self) -> &[TypeId] {
        &self.sensitivities
    }

    pub(crate) fn operation(&self) -> Operation {
        Arc::clone(&self.op)
    }
}

impl std::fmt::Debug for KnowledgeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeSource")
            .field("name", &self.name)
            .field("sensitivities", &self.sensitivities.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_exposes_declaration() {
        let ks = KnowledgeSource::new("k", vec![1, 2, 2], |_bb, _es| {});
        assert_eq!(ks.name(), "k");
        assert_eq!(ks.sensitivities(), &[1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one sensitivity")]
    fn empty_sensitivities_rejected() {
        let _ = KnowledgeSource::new("bad", vec![], |_bb, _es| {});
    }
}
