//! Data entries: the typed, reference-counted values living on the board.

use bytes::Bytes;
use std::any::Any;
use std::sync::Arc;

/// Entry type identifier: a hash of `(level, type name)`.
///
/// Hashing the blackboard *level* (one level per instrumented application,
/// Figure 5) into the id is what lets identical knowledge sources and data
/// types coexist across applications.
pub type TypeId = u64;

/// FNV-1a over level and name with a separator, as a stable 64-bit id.
pub fn type_id(level: &str, name: &str) -> TypeId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(level.as_bytes());
    eat(&[0x1f]); // unit separator: ("ab","c") != ("a","bc")
    eat(name.as_bytes());
    h
}

/// Entry payload: either a raw byte blob (as streamed off the wire) or a
/// typed in-memory value produced by a knowledge source.
pub enum Payload {
    /// Raw bytes (e.g. an encoded event pack).
    Bytes(Bytes),
    /// Arbitrary typed value.
    Value(Box<dyn Any + Send + Sync>),
}

impl Payload {
    /// Byte view, if this is a byte payload.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Value(_) => None,
        }
    }

    /// Typed view, if this is a value payload of type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match self {
            Payload::Bytes(_) => None,
            Payload::Value(v) => v.downcast_ref::<T>(),
        }
    }

    /// Payload size in bytes (0 for typed values of unknown size — the
    /// paper's `Size` field describes wire blobs).
    pub fn size(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Value(_) => 0,
        }
    }
}

/// A reference-counted entry. Cloning shares the payload.
#[derive(Clone)]
pub struct DataEntry {
    ty: TypeId,
    payload: Arc<Payload>,
}

impl DataEntry {
    /// Entry holding raw bytes.
    pub fn bytes(ty: TypeId, data: Bytes) -> DataEntry {
        DataEntry {
            ty,
            payload: Arc::new(Payload::Bytes(data)),
        }
    }

    /// Entry holding a typed value.
    pub fn value<T: Any + Send + Sync>(ty: TypeId, value: T) -> DataEntry {
        DataEntry {
            ty,
            payload: Arc::new(Payload::Value(Box::new(value))),
        }
    }

    /// The entry's type id.
    pub fn ty(&self) -> TypeId {
        self.ty
    }

    /// The entry's payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        self.payload.size()
    }

    /// Current number of references to the payload.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.payload)
    }

    /// Mutable access to the payload — only while this is the sole owner
    /// (the paper's "a data being writable only if its ref-counter is equal
    /// to one").
    pub fn payload_mut(&mut self) -> Option<&mut Payload> {
        Arc::get_mut(&mut self.payload)
    }

    /// Shorthand: typed view of a value payload.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for DataEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataEntry")
            .field("ty", &self.ty)
            .field("size", &self.size())
            .field("refs", &self.ref_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_id_separates_levels_and_names() {
        assert_ne!(type_id("app0", "event"), type_id("app1", "event"));
        assert_ne!(type_id("app0", "event"), type_id("app0", "pack"));
        assert_eq!(type_id("app0", "event"), type_id("app0", "event"));
        // The separator prevents concatenation collisions.
        assert_ne!(type_id("ab", "c"), type_id("a", "bc"));
    }

    #[test]
    fn bytes_payload_size_and_view() {
        let e = DataEntry::bytes(1, Bytes::from_static(b"hello"));
        assert_eq!(e.size(), 5);
        assert_eq!(&e.payload().as_bytes().unwrap()[..], b"hello");
        assert!(e.downcast_ref::<u32>().is_none());
    }

    #[test]
    fn value_payload_downcast() {
        let e = DataEntry::value(2, vec![1u32, 2, 3]);
        assert_eq!(e.downcast_ref::<Vec<u32>>().unwrap(), &vec![1, 2, 3]);
        assert!(e.downcast_ref::<String>().is_none());
        assert!(e.payload().as_bytes().is_none());
        assert_eq!(e.size(), 0);
    }

    #[test]
    fn writable_only_when_unique() {
        let mut e = DataEntry::bytes(3, Bytes::from_static(b"x"));
        assert_eq!(e.ref_count(), 1);
        assert!(e.payload_mut().is_some());
        let shared = e.clone();
        assert_eq!(e.ref_count(), 2);
        assert!(e.payload_mut().is_none(), "shared entry must be read-only");
        drop(shared);
        assert!(e.payload_mut().is_some(), "unique again after drop");
    }
}
