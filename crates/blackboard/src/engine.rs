//! The parallel blackboard engine (Figure 13).
//!
//! Entry flow: `post` looks the entry's type up in the sensitivity hash
//! table; the entry is appended to the pending slots of every sensitive KS;
//! a KS whose last unsatisfied sensitivity just filled produces a job
//! `{entries, operation}` pushed onto a randomly chosen lock-striped FIFO.
//! Workers sweep the FIFO array from random starting points with
//! progressive back-off.

use crate::entry::{DataEntry, TypeId};
use crate::ks::{KnowledgeSource, KsId, Operation};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// Blackboard pressure metrics for the self-monitoring snapshot: posts,
// drops, KS invocations, and the job backlog depth seen at enqueue time.
mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct BoardMetrics {
        pub posted: Arc<Counter>,
        pub dropped: Arc<Counter>,
        pub ks_invocations: Arc<Counter>,
        pub ks_panics: Arc<Counter>,
        pub worker_failures: Arc<Counter>,
        pub backlog: Arc<Histogram>,
    }

    pub(super) fn m() -> &'static BoardMetrics {
        static M: OnceLock<BoardMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            BoardMetrics {
                posted: r.counter("blackboard_entries_posted_total"),
                dropped: r.counter("blackboard_entries_dropped_total"),
                ks_invocations: r.counter("blackboard_ks_invocations_total"),
                ks_panics: r.counter("blackboard_ks_panics_total"),
                worker_failures: r.counter("blackboard_worker_failures_total"),
                backlog: r.histogram("blackboard_job_backlog"),
            }
        })
    }
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlackboardConfig {
    /// Number of individually-locked job FIFOs (contention striping).
    pub queues: usize,
    /// Number of worker threads started by [`Blackboard::start`].
    pub workers: usize,
}

impl Default for BlackboardConfig {
    fn default() -> Self {
        BlackboardConfig {
            queues: 8,
            workers: 4,
        }
    }
}

/// Counters exposed for tests, reports and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlackboardStats {
    /// Entries submitted via [`Blackboard::post`].
    pub entries_posted: u64,
    /// Entries that matched no sensitivity (freed immediately).
    pub entries_dropped: u64,
    /// Jobs executed to completion.
    pub jobs_executed: u64,
}

struct Job {
    entries: Vec<DataEntry>,
    op: Operation,
}

struct KsState {
    ks: KnowledgeSource,
    /// One FIFO per declared sensitivity position.
    slots: Mutex<Vec<VecDeque<DataEntry>>>,
}

#[derive(Default)]
struct Registry {
    ks: HashMap<KsId, Arc<KsState>>,
    /// The sensitivity hash table: type → sensitive KSs (deduplicated).
    index: HashMap<TypeId, Vec<KsId>>,
}

struct Inner {
    config: BlackboardConfig,
    registry: RwLock<Registry>,
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs enqueued or executing; 0 ⇒ quiescent.
    outstanding: AtomicUsize,
    shutdown: AtomicBool,
    /// Worker/drain parking.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    next_ks: AtomicU64,
    queue_pick: AtomicUsize,
    stat_posted: AtomicU64,
    stat_dropped: AtomicU64,
    stat_jobs: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Worker threads currently running their loop. When this is zero
    /// (never started, all spawns failed, or every worker died), `drain`
    /// falls back to executing jobs inline so it cannot hang.
    live_workers: AtomicUsize,
}

/// The engine handle (cheap to clone; all clones share one board).
#[derive(Clone)]
pub struct Blackboard {
    inner: Arc<Inner>,
}

impl Blackboard {
    /// Creates an idle blackboard (no workers yet).
    pub fn new(config: BlackboardConfig) -> Blackboard {
        assert!(config.queues > 0, "need at least one job FIFO");
        Blackboard {
            inner: Arc::new(Inner {
                queues: (0..config.queues)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                config,
                registry: RwLock::new(Registry::default()),
                outstanding: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                sleep_lock: Mutex::new(()),
                sleep_cv: Condvar::new(),
                next_ks: AtomicU64::new(1),
                queue_pick: AtomicUsize::new(0),
                stat_posted: AtomicU64::new(0),
                stat_dropped: AtomicU64::new(0),
                stat_jobs: AtomicU64::new(0),
                workers: Mutex::new(Vec::new()),
                live_workers: AtomicUsize::new(0),
            }),
        }
    }

    /// Registers a knowledge source; returns its id.
    pub fn register(&self, ks: KnowledgeSource) -> KsId {
        let id = KsId(self.inner.next_ks.fetch_add(1, Ordering::Relaxed));
        let slots = vec![VecDeque::new(); ks.sensitivities().len()];
        let mut types: Vec<TypeId> = ks.sensitivities().to_vec();
        types.sort_unstable();
        types.dedup();
        let state = Arc::new(KsState {
            ks,
            slots: Mutex::new(slots),
        });
        let mut reg = self.inner.registry.write();
        for ty in types {
            reg.index.entry(ty).or_default().push(id);
        }
        reg.ks.insert(id, state);
        id
    }

    /// Removes a knowledge source. Jobs already queued still run; pending
    /// slot contents are discarded.
    pub fn remove(&self, id: KsId) -> bool {
        let mut reg = self.inner.registry.write();
        if reg.ks.remove(&id).is_none() {
            return false;
        }
        for list in reg.index.values_mut() {
            list.retain(|&k| k != id);
        }
        reg.index.retain(|_, l| !l.is_empty());
        true
    }

    /// Number of registered knowledge sources.
    pub fn ks_count(&self) -> usize {
        self.inner.registry.read().ks.len()
    }

    /// Posts a data entry onto the board.
    pub fn post(&self, entry: DataEntry) {
        self.inner.stat_posted.fetch_add(1, Ordering::Relaxed);
        obs::m().posted.inc();
        // Snapshot the sensitive KSs under the read lock, fill slots after.
        let targets: Vec<Arc<KsState>> = {
            let reg = self.inner.registry.read();
            match reg.index.get(&entry.ty()) {
                None => Vec::new(),
                Some(ids) => ids
                    .iter()
                    .filter_map(|id| reg.ks.get(id).map(Arc::clone))
                    .collect(),
            }
        };
        if targets.is_empty() {
            self.inner.stat_dropped.fetch_add(1, Ordering::Relaxed);
            obs::m().dropped.inc();
            return;
        }
        for state in targets {
            let job = {
                let mut slots = state.slots.lock();
                // Append to the emptiest slot matching this type (relevant
                // when a KS repeats a type in its sensitivities).
                let sens = state.ks.sensitivities();
                let slot_idx = (0..sens.len())
                    .filter(|&i| sens[i] == entry.ty())
                    .min_by_key(|&i| slots[i].len());
                let Some(slot_idx) = slot_idx else {
                    // Index and sensitivity list disagree — a registry
                    // inconsistency. Drop the entry for this KS (counted)
                    // rather than aborting the engine.
                    self.inner.stat_dropped.fetch_add(1, Ordering::Relaxed);
                    obs::m().dropped.inc();
                    continue;
                };
                slots[slot_idx].push_back(entry.clone());
                if slots.iter().all(|s| !s.is_empty()) {
                    // Last unsatisfied sensitivity filled: build a job.
                    let entries = slots.iter_mut().filter_map(|s| s.pop_front()).collect();
                    Some(Job {
                        entries,
                        op: state.ks.operation(),
                    })
                } else {
                    None
                }
            };
            if let Some(job) = job {
                self.enqueue(job);
            }
        }
    }

    fn enqueue(&self, job: Job) {
        let backlog = self.inner.outstanding.fetch_add(1, Ordering::SeqCst);
        obs::m().backlog.record(backlog as u64);
        // "Jobs are randomly pushed in an array of FIFOs": a striding
        // counter spreads jobs without a shared RNG.
        let pick = self.inner.queue_pick.fetch_add(1, Ordering::Relaxed);
        let qi = (pick.wrapping_mul(0x9E37_79B9) >> 8) % self.inner.queues.len();
        self.inner.queues[qi].lock().push_back(job);
        self.inner.sleep_cv.notify_one();
    }

    /// Tries to pop and execute one job; true if one ran.
    fn try_run_one(&self, start: usize) -> bool {
        let n = self.inner.queues.len();
        // First pass: opportunistic try_lock sweep from `start`.
        for off in 0..n {
            let qi = (start + off) % n;
            if let Some(mut q) = self.inner.queues[qi].try_lock() {
                if let Some(job) = q.pop_front() {
                    drop(q);
                    self.execute(job);
                    return true;
                }
            }
        }
        // Second pass: honest locks so no job is missed behind contention.
        for off in 0..n {
            let qi = (start + off) % n;
            let job = self.inner.queues[qi].lock().pop_front();
            if let Some(job) = job {
                self.execute(job);
                return true;
            }
        }
        false
    }

    fn execute(&self, job: Job) {
        // A panicking knowledge source must not take down its worker (and
        // with it the whole drain protocol): catch, count, move on. The
        // board's own state is lock-per-operation, so a KS that unwound
        // mid-operation cannot leave engine structures inconsistent.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (job.op)(self, &job.entries)
        }));
        if outcome.is_err() {
            obs::m().ks_panics.inc();
        }
        self.inner.stat_jobs.fetch_add(1, Ordering::Relaxed);
        obs::m().ks_invocations.inc();
        if self.inner.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Possibly quiescent: wake drainers.
            self.inner.sleep_cv.notify_all();
        }
    }

    /// Spawns the worker pool (idempotent-ish: call once). A worker the OS
    /// refuses to spawn is counted in `blackboard_worker_failures_total`;
    /// the engine stays functional with fewer workers, down to zero (in
    /// which case [`Blackboard::drain`] executes jobs inline).
    pub fn start(&self) {
        let mut workers = self.inner.workers.lock();
        assert!(workers.is_empty(), "workers already started");
        for w in 0..self.inner.config.workers {
            let bb = self.clone();
            let seed = w.wrapping_mul(7919) + 13;
            self.inner.live_workers.fetch_add(1, Ordering::SeqCst);
            match std::thread::Builder::new()
                .name(format!("bb-worker-{w}"))
                .spawn(move || bb.worker_loop(seed))
            {
                Ok(handle) => workers.push(handle),
                Err(_) => {
                    self.inner.live_workers.fetch_sub(1, Ordering::SeqCst);
                    obs::m().worker_failures.inc();
                }
            }
        }
    }

    fn worker_loop(&self, seed: usize) {
        // Keep the live count honest even if the loop unwinds, so drain's
        // inline fallback engages once no worker survives.
        struct LiveGuard<'a>(&'a AtomicUsize);
        impl Drop for LiveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _guard = LiveGuard(&self.inner.live_workers);
        self.worker_loop_inner(seed)
    }

    fn worker_loop_inner(&self, seed: usize) {
        let mut sweep = seed;
        let mut idle: u32 = 0;
        loop {
            sweep = sweep
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (sweep >> 33) % self.inner.queues.len();
            if self.try_run_one(start) {
                idle = 0;
                continue;
            }
            if self.inner.shutdown.load(Ordering::SeqCst)
                && self.inner.outstanding.load(Ordering::SeqCst) == 0
            {
                return;
            }
            // Progressive back-off: spin, yield, park (prevents spinning
            // over the locks in the absence of jobs).
            idle += 1;
            if idle < 32 {
                std::hint::spin_loop();
            } else if idle < 128 {
                std::thread::yield_now();
            } else {
                let mut g = self.inner.sleep_lock.lock();
                self.inner
                    .sleep_cv
                    .wait_for(&mut g, Duration::from_micros(500));
            }
        }
    }

    /// Blocks until no job is queued or executing. Only meaningful once all
    /// external producers have finished posting.
    pub fn drain(&self) {
        loop {
            if self.inner.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            // No live worker (never started, spawns failed, or all died):
            // execute the backlog on this thread so drain cannot hang.
            if self.inner.live_workers.load(Ordering::SeqCst) == 0 {
                self.run_inline();
                continue;
            }
            let mut g = self.inner.sleep_lock.lock();
            if self.inner.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.inner
                .sleep_cv
                .wait_for(&mut g, Duration::from_micros(500));
        }
    }

    /// Drains, stops and joins the worker pool. Must not be called from
    /// inside an operation.
    pub fn stop(&self) {
        self.drain();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.sleep_cv.notify_all();
        let workers = {
            let mut g = self.inner.workers.lock();
            std::mem::take(&mut *g)
        };
        for w in workers {
            // A worker that unwound anyway (e.g. allocation failure) is
            // counted; the engine has already drained so no job is lost.
            if w.join().is_err() {
                obs::m().worker_failures.inc();
            }
        }
    }

    /// Runs queued jobs on the calling thread until quiescent (useful for
    /// single-threaded tests and deterministic replays).
    pub fn run_inline(&self) {
        while self.try_run_one(0) {}
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BlackboardStats {
        BlackboardStats {
            entries_posted: self.inner.stat_posted.load(Ordering::Relaxed),
            entries_dropped: self.inner.stat_dropped.load(Ordering::Relaxed),
            jobs_executed: self.inner.stat_jobs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::type_id;
    use bytes::Bytes;

    fn bb() -> Blackboard {
        Blackboard::new(BlackboardConfig {
            queues: 4,
            workers: 0,
        })
    }

    #[test]
    fn single_sensitivity_fires_per_entry() {
        let board = bb();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let ty = type_id("L", "a");
        board.register(KnowledgeSource::new("count", vec![ty], move |_bb, es| {
            assert_eq!(es.len(), 1);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..5 {
            board.post(DataEntry::bytes(ty, Bytes::new()));
        }
        board.run_inline();
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(board.stats().jobs_executed, 5);
    }

    #[test]
    fn join_two_types_fires_on_last_unsatisfied() {
        let board = bb();
        let (ta, tb) = (type_id("L", "a"), type_id("L", "b"));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        board.register(KnowledgeSource::new(
            "join",
            vec![ta, tb],
            move |_bb, es| {
                assert_eq!(es[0].ty(), ta);
                assert_eq!(es[1].ty(), tb);
                h.fetch_add(1, Ordering::SeqCst);
            },
        ));
        board.post(DataEntry::bytes(ta, Bytes::new()));
        board.run_inline();
        assert_eq!(hits.load(Ordering::SeqCst), 0, "b still unsatisfied");
        board.post(DataEntry::bytes(tb, Bytes::new()));
        board.run_inline();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn repeated_type_needs_two_entries() {
        let board = bb();
        let ty = type_id("L", "pair");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        board.register(KnowledgeSource::new(
            "pairs",
            vec![ty, ty],
            move |_bb, es| {
                assert_eq!(es.len(), 2);
                h.fetch_add(1, Ordering::SeqCst);
            },
        ));
        for _ in 0..5 {
            board.post(DataEntry::bytes(ty, Bytes::new()));
        }
        board.run_inline();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            2,
            "5 entries = 2 pairs + 1 leftover"
        );
    }

    #[test]
    fn unmatched_entries_are_dropped() {
        let board = bb();
        board.post(DataEntry::bytes(type_id("L", "nobody"), Bytes::new()));
        assert_eq!(board.stats().entries_dropped, 1);
    }

    #[test]
    fn cascade_unpack_then_process() {
        // Figure 4 in miniature: packs unpack into events, events feed a
        // second KS.
        let board = bb();
        let t_pack = type_id("app", "pack");
        let t_event = type_id("app", "event");
        let processed = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&processed);
        board.register(KnowledgeSource::new(
            "unpacker",
            vec![t_pack],
            move |bb, es| {
                let n = es[0].size();
                for _ in 0..n {
                    bb.post(DataEntry::bytes(t_event, Bytes::new()));
                }
            },
        ));
        board.register(KnowledgeSource::new(
            "profiler",
            vec![t_event],
            move |_bb, _es| {
                p.fetch_add(1, Ordering::SeqCst);
            },
        ));
        board.post(DataEntry::bytes(t_pack, Bytes::from(vec![0u8; 7])));
        board.run_inline();
        assert_eq!(processed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn op_can_register_and_remove_ks() {
        let board = bb();
        let t_boot = type_id("L", "boot");
        let t_work = type_id("L", "work");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let boot_id = Arc::new(Mutex::new(None::<KsId>));
        let boot_id2 = Arc::clone(&boot_id);
        let id = board.register(KnowledgeSource::new(
            "boot",
            vec![t_boot],
            move |bb, _es| {
                let h = Arc::clone(&h);
                bb.register(KnowledgeSource::new(
                    "worker",
                    vec![t_work],
                    move |_bb, _es| {
                        h.fetch_add(1, Ordering::SeqCst);
                    },
                ));
                // Remove ourselves: opportunistic one-shot KS.
                if let Some(me) = *boot_id2.lock() {
                    bb.remove(me);
                }
            },
        ));
        *boot_id.lock() = Some(id);
        board.post(DataEntry::bytes(t_boot, Bytes::new()));
        board.run_inline();
        assert_eq!(board.ks_count(), 1, "boot removed itself, worker remains");
        board.post(DataEntry::bytes(t_work, Bytes::new()));
        board.run_inline();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multi_level_isolation() {
        let board = bb();
        let hits0 = Arc::new(AtomicUsize::new(0));
        let hits1 = Arc::new(AtomicUsize::new(0));
        for (level, hits) in [("app0", &hits0), ("app1", &hits1)] {
            let h = Arc::clone(hits);
            board.register(KnowledgeSource::new(
                &format!("prof-{level}"),
                vec![type_id(level, "event")],
                move |_bb, _es| {
                    h.fetch_add(1, Ordering::SeqCst);
                },
            ));
        }
        for _ in 0..3 {
            board.post(DataEntry::bytes(type_id("app0", "event"), Bytes::new()));
        }
        board.post(DataEntry::bytes(type_id("app1", "event"), Bytes::new()));
        board.run_inline();
        assert_eq!(hits0.load(Ordering::SeqCst), 3);
        assert_eq!(hits1.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_workers_process_everything() {
        let board = Blackboard::new(BlackboardConfig {
            queues: 8,
            workers: 4,
        });
        let ty = type_id("L", "x");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        board.register(KnowledgeSource::new("sink", vec![ty], move |_bb, _es| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        board.start();
        for _ in 0..10_000 {
            board.post(DataEntry::bytes(ty, Bytes::new()));
        }
        board.stop();
        assert_eq!(hits.load(Ordering::SeqCst), 10_000);
        assert_eq!(board.stats().jobs_executed, 10_000);
    }

    #[test]
    fn parallel_cascade_with_drain() {
        let board = Blackboard::new(BlackboardConfig {
            queues: 8,
            workers: 3,
        });
        let (tp, te) = (type_id("L", "p"), type_id("L", "e"));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        board.register(KnowledgeSource::new("expand", vec![tp], move |bb, _es| {
            for _ in 0..10 {
                bb.post(DataEntry::bytes(te, Bytes::new()));
            }
        }));
        board.register(KnowledgeSource::new("count", vec![te], move |_bb, _es| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        board.start();
        for _ in 0..100 {
            board.post(DataEntry::bytes(tp, Bytes::new()));
        }
        board.drain();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1000,
            "drain waits for cascades"
        );
        board.stop();
    }

    #[test]
    fn two_ks_same_type_both_fire() {
        let board = bb();
        let ty = type_id("L", "shared");
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        board.register(KnowledgeSource::new("A", vec![ty], move |_bb, _es| {
            a2.fetch_add(1, Ordering::SeqCst);
        }));
        board.register(KnowledgeSource::new("B", vec![ty], move |_bb, _es| {
            b2.fetch_add(1, Ordering::SeqCst);
        }));
        board.post(DataEntry::bytes(ty, Bytes::new()));
        board.run_inline();
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn removed_ks_no_longer_fires() {
        let board = bb();
        let ty = type_id("L", "t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = board.register(KnowledgeSource::new("once", vec![ty], move |_bb, _es| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        board.post(DataEntry::bytes(ty, Bytes::new()));
        board.run_inline();
        assert!(board.remove(id));
        assert!(!board.remove(id), "double remove is false");
        board.post(DataEntry::bytes(ty, Bytes::new()));
        board.run_inline();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(board.stats().entries_dropped, 1);
    }
}
