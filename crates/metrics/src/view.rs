//! Presentation-time derivation of the standard metrics from the integer
//! cells. Nothing here is encoded or merged — floats stay out of the wire
//! format by construction.

use crate::series::MetricsSeries;

/// CSV header of [`MetricsSeries::to_csv`] (pinned by the bench
/// golden-shape tests, like the serve/TBON bench headers).
pub const WINDOW_CSV_HEADER: &str =
    "window,start_ns,ranks,lb_eff,comm_eff,ser_frac,xfer_frac,wait_frac,bytes,hits";

/// The derived standard metrics of one window.
///
/// Conventions (POP-style, over the ranks the series has seen):
/// * *useful* time of a rank = window width − its MPI time (clamped);
///   ranks with no cell in a window count as fully useful.
/// * [`WindowMetrics::lb_efficiency`] = mean(useful) / max(useful) —
///   1.0 when perfectly balanced, small when stragglers dominate.
/// * [`WindowMetrics::comm_efficiency`] = max(useful) / window width —
///   the ceiling communication imposes even on the best rank.
/// * [`WindowMetrics::serialization_fraction`] /
///   [`WindowMetrics::transfer_fraction`] decompose MPI time into
///   wait-family and data-movement shares.
/// * [`WindowMetrics::wait_fraction`] = waiting share of the *total*
///   window time across ranks (the waitstate fraction of this window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMetrics {
    /// Window index (start = `window * window_ns`).
    pub window: u64,
    /// Window start, nanoseconds of application time.
    pub start_ns: u64,
    /// Ranks the whole series has seen (the denominator population).
    pub ranks: u32,
    pub lb_efficiency: f64,
    pub comm_efficiency: f64,
    pub serialization_fraction: f64,
    pub transfer_fraction: f64,
    pub wait_fraction: f64,
    /// Payload bytes of calls beginning in this window.
    pub bytes: u64,
    /// MPI calls beginning in this window.
    pub hits: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl MetricsSeries {
    /// Derives the standard metrics for every window, in time order.
    pub fn window_metrics(&self) -> Vec<WindowMetrics> {
        let ranks = self.ranks();
        let wn = self.window_ns();
        self.window_indices()
            .map(|w| self.one_window(w, ranks, wn))
            .collect()
    }

    fn one_window(&self, w: u64, ranks: u32, wn: u64) -> WindowMetrics {
        let empty = std::collections::BTreeMap::new();
        let cells = self.window(w).unwrap_or(&empty);
        let mut useful_sum = 0u64;
        let mut useful_max = 0u64;
        let mut mpi_sum = 0u64;
        let mut wait_sum = 0u64;
        let mut xfer_sum = 0u64;
        let mut bytes = 0u64;
        let mut hits = 0u64;
        for r in 0..ranks {
            let (mpi, wait, xfer) = cells
                .get(&r)
                .map(|c| (c.mpi_ns, c.wait_ns, c.xfer_ns))
                .unwrap_or((0, 0, 0));
            let useful = wn.saturating_sub(mpi);
            useful_sum += useful;
            useful_max = useful_max.max(useful);
            mpi_sum += mpi;
            wait_sum += wait;
            xfer_sum += xfer;
        }
        for c in cells.values() {
            bytes += c.bytes;
            hits += c.hits;
        }
        let lb = if useful_max == 0 {
            1.0
        } else {
            useful_sum as f64 / ranks.max(1) as f64 / useful_max as f64
        };
        WindowMetrics {
            window: w,
            start_ns: w.saturating_mul(wn),
            ranks,
            lb_efficiency: lb,
            comm_efficiency: ratio(useful_max, wn),
            serialization_fraction: ratio(wait_sum, mpi_sum),
            transfer_fraction: ratio(xfer_sum, mpi_sum),
            wait_fraction: ratio(wait_sum, wn.saturating_mul(ranks as u64)),
            bytes,
            hits,
        }
    }

    /// Renders the derived series as CSV under [`WINDOW_CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(WINDOW_CSV_HEADER);
        out.push('\n');
        for m in self.window_metrics() {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{}",
                m.window,
                m.start_ns,
                m.ranks,
                m.lb_efficiency,
                m.comm_efficiency,
                m.serialization_fraction,
                m.transfer_fraction,
                m.wait_fraction,
                m.bytes,
                m.hits
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use opmr_events::{Event, EventKind};

    fn ev(kind: EventKind, rank: u32, t: u64, d: u64) -> Event {
        Event::basic(kind, rank, t, d)
    }

    #[test]
    fn balanced_window_scores_one() {
        let mut s = MetricsSeries::new(1000);
        for r in 0..4 {
            s.add(&ev(EventKind::Send, r, 0, 100));
        }
        let m = &s.window_metrics()[0];
        assert!((m.lb_efficiency - 1.0).abs() < 1e-12);
        assert!((m.comm_efficiency - 0.9).abs() < 1e-12);
    }

    #[test]
    fn straggler_depresses_lb_efficiency() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Send, 0, 0, 900)); // straggler: 100 useful
        s.add(&ev(EventKind::Send, 1, 0, 100)); // 900 useful
        let m = &s.window_metrics()[0];
        // mean useful = 500, max useful = 900.
        assert!((m.lb_efficiency - 500.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    fn idle_rank_counts_as_fully_useful() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Send, 0, 0, 500));
        s.add(&ev(EventKind::Send, 1, 1000, 10)); // rank 1 idle in window 0
        let m = &s.window_metrics()[0];
        assert_eq!(m.ranks, 2);
        // useful: rank0 = 500, rank1 = 1000 → lb = 750/1000.
        assert!((m.lb_efficiency - 0.75).abs() < 1e-12);
        assert!((m.comm_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposition_fractions() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Wait, 0, 0, 300));
        s.add(&ev(EventKind::Allreduce, 0, 300, 500));
        s.add(&ev(EventKind::Init, 0, 800, 200)); // neither wait nor transfer
        let m = &s.window_metrics()[0];
        assert!((m.serialization_fraction - 0.3).abs() < 1e-12);
        assert!((m.transfer_fraction - 0.5).abs() < 1e-12);
        assert!((m.wait_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_shape_matches_header() {
        let mut s = MetricsSeries::new(100);
        s.add(&ev(EventKind::Send, 0, 0, 10));
        s.add(&ev(EventKind::Send, 1, 250, 10));
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), WINDOW_CSV_HEADER);
        let cols = WINDOW_CSV_HEADER.split(',').count();
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2, "one row per non-empty window");
        for row in rows {
            assert_eq!(row.split(',').count(), cols, "row shape: {row}");
        }
    }
}
