//! # opmr-metrics — time-resolved standard metrics
//!
//! The report plane (`opmr-analysis`) answers *"what did the run do
//! overall"*; this crate answers *"when did it go wrong"*. It folds the
//! same event stream into fixed-width time windows and keeps, per window
//! and per rank, a handful of integer accumulators — enough to derive the
//! standard efficiency metrics of trace-based analyses (POP-style load
//! balance, communication efficiency, the serialization/transfer
//! decomposition, waitstate fraction) without retaining a trace, the same
//! discipline as `analysis::timeline`.
//!
//! Two design rules make the series safe to ship through every coupling
//! mode (direct engine, TBON reduction, serve-plane snapshots):
//!
//! 1. **Pure integer fold.** [`MetricsSeries::add`] splits an event's
//!    duration exactly at window boundaries and adds nanosecond chunks
//!    into `u64` cells. No floats are stored or encoded, so online
//!    (pack-by-pack) and offline (whole-trace) folds are bit-identical,
//!    and a seeded chaos replay that re-delivers the same events in any
//!    order produces the same bytes.
//! 2. **Order-independent merge.** [`MetricsSeries::merge`] is cell-wise
//!    addition over a canonically ordered map, so a TBON tree merging
//!    partial series in any shape equals the flat computation, byte for
//!    byte.
//!
//! Derived efficiencies ([`WindowMetrics`]) are computed from the integer
//! cells at presentation time only and never travel on the wire.

mod series;
mod view;

pub use series::{MetricsConfig, MetricsSeries, MetricsWireError, WindowCell, DEFAULT_WINDOW_NS};
pub use view::{WindowMetrics, WINDOW_CSV_HEADER};

pub(crate) mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(crate) struct MetricsObs {
        /// Windows opened by the fold (first event landing in a window).
        pub windows_opened: Arc<Counter>,
        /// Events folded into some series.
        pub events_folded: Arc<Counter>,
        /// Series merges that had to drop the other side because its
        /// window width differed (misconfigured reduction tree).
        pub merge_mismatches: Arc<Counter>,
        /// Per-pack fold cost, nanoseconds.
        pub fold_ns: Arc<Histogram>,
    }

    pub(crate) fn m() -> &'static MetricsObs {
        static M: OnceLock<MetricsObs> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            MetricsObs {
                windows_opened: r.counter("metrics_windows_opened_total"),
                events_folded: r.counter("metrics_events_folded_total"),
                merge_mismatches: r.counter("metrics_merge_mismatch_total"),
                fold_ns: r.histogram("metrics_fold_ns"),
            }
        })
    }
}
