//! The windowed integer fold, its wire codec and the order-independent
//! merge.

use bytes::{Buf, BufMut};
use opmr_events::Event;
use std::collections::BTreeMap;

/// Default window width: 1 ms of application time.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

/// Configuration of the windowed fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Window width in nanoseconds of application time (clamped to ≥ 1).
    pub window_ns: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            window_ns: DEFAULT_WINDOW_NS,
        }
    }
}

/// Per-(window, rank) integer accumulators. Everything the derived
/// efficiency metrics need, nothing an individual event could be
/// reconstructed from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCell {
    /// Nanoseconds spent inside MPI calls overlapping this window.
    pub mpi_ns: u64,
    /// Subset of [`WindowCell::mpi_ns`] spent in `MPI_Wait`-family calls
    /// (the serialization half of the decomposition).
    pub wait_ns: u64,
    /// Subset of [`WindowCell::mpi_ns`] spent in data-movement calls
    /// (point-to-point or collective — the transfer half).
    pub xfer_ns: u64,
    /// Payload bytes of calls that *began* in this window.
    pub bytes: u64,
    /// MPI calls that began in this window.
    pub hits: u64,
}

impl WindowCell {
    fn absorb(&mut self, other: &WindowCell) {
        self.mpi_ns += other.mpi_ns;
        self.wait_ns += other.wait_ns;
        self.xfer_ns += other.xfer_ns;
        self.bytes += other.bytes;
        self.hits += other.hits;
    }

    fn is_zero(&self) -> bool {
        *self == WindowCell::default()
    }
}

/// Decode failure of a [`MetricsSeries`] wire image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsWireError {
    /// Buffer ended before the advertised content.
    Truncated,
}

impl std::fmt::Display for MetricsWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsWireError::Truncated => write!(f, "truncated metrics series"),
        }
    }
}

impl std::error::Error for MetricsWireError {}

/// A time-resolved metric series: per-window, per-rank integer cells over
/// a fixed window width. Windows are kept in a canonically ordered map so
/// the encoding of a given logical state is unique — the property every
/// byte-identity acceptance test in the serve and reduce planes leans on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSeries {
    window_ns: u64,
    /// `windows[window_index][rank]` — both levels ordered.
    windows: BTreeMap<u64, BTreeMap<u32, WindowCell>>,
}

fn need(buf: &impl Buf, n: usize) -> Result<(), MetricsWireError> {
    if buf.remaining() < n {
        Err(MetricsWireError::Truncated)
    } else {
        Ok(())
    }
}

impl MetricsSeries {
    /// An empty series with the given window width (clamped to ≥ 1 ns).
    pub fn new(window_ns: u64) -> MetricsSeries {
        MetricsSeries {
            window_ns: window_ns.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// Window width, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of windows holding at least one cell.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no event has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Distinct ranks seen across all windows.
    pub fn ranks(&self) -> u32 {
        self.windows
            .values()
            .flat_map(|cells| cells.keys())
            .copied()
            .max()
            .map_or(0, |r| r + 1)
    }

    /// Ordered iteration over `(window_index, rank, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (u64, u32, &WindowCell)> {
        self.windows
            .iter()
            .flat_map(|(w, cells)| cells.iter().map(move |(r, c)| (*w, *r, c)))
    }

    /// The cell of one window/rank, if any event touched it.
    pub fn cell(&self, window: u64, rank: u32) -> Option<&WindowCell> {
        self.windows.get(&window).and_then(|cells| cells.get(&rank))
    }

    /// Ordered window indices.
    pub fn window_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.windows.keys().copied()
    }

    /// One window's ordered per-rank cells.
    pub fn window(&self, window: u64) -> Option<&BTreeMap<u32, WindowCell>> {
        self.windows.get(&window)
    }

    /// Replaces one window's cells wholesale (the serve plane's sparse
    /// delta application: windows are replacement values, like profile
    /// cells). An empty replacement removes the window.
    pub fn replace_window(&mut self, window: u64, cells: BTreeMap<u32, WindowCell>) {
        if cells.is_empty() {
            self.windows.remove(&window);
        } else {
            self.windows.insert(window, cells);
        }
    }

    fn cell_mut(&mut self, window: u64, rank: u32) -> &mut WindowCell {
        let cells = self.windows.entry(window).or_insert_with(|| {
            crate::obs::m().windows_opened.inc();
            BTreeMap::new()
        });
        cells.entry(rank).or_default()
    }

    /// Folds one event. MPI calls only; the duration is split exactly at
    /// window boundaries (integer arithmetic, no rounding), bytes and hit
    /// count go to the window the call began in. Zero-duration events
    /// still count a hit.
    pub fn add(&mut self, e: &Event) {
        if !e.kind.is_mpi() {
            return;
        }
        let wn = self.window_ns;
        {
            let cell = self.cell_mut(e.time_ns / wn, e.rank);
            cell.hits += 1;
            cell.bytes += e.bytes;
        }
        let wait = e.kind.is_wait();
        let xfer = e.kind.is_transfer();
        let mut t = e.time_ns;
        let end = e.end_ns();
        while t < end {
            let w = t / wn;
            let w_end = (w + 1).saturating_mul(wn).max(t + 1);
            let stop = end.min(w_end);
            let chunk = stop - t;
            let cell = self.cell_mut(w, e.rank);
            cell.mpi_ns += chunk;
            if wait {
                cell.wait_ns += chunk;
            }
            if xfer {
                cell.xfer_ns += chunk;
            }
            t = w_end;
        }
    }

    /// Folds a pack's worth of events, recording the fold cost and event
    /// count into the observability registry.
    pub fn fold_pack(&mut self, events: &[Event]) {
        let t0 = std::time::Instant::now();
        for e in events {
            self.add(e);
        }
        let o = crate::obs::m();
        o.events_folded.add(events.len() as u64);
        o.fold_ns.record(t0.elapsed().as_nanos() as u64);
    }

    /// Cell-wise addition — commutative and associative, so any merge
    /// tree (TBON shapes, distributed analyzer ranks) yields the same
    /// series as the flat fold. A mismatched window width cannot be
    /// combined meaningfully: when `self` already holds data the other
    /// side is dropped (counted in `metrics_merge_mismatch_total`); an
    /// empty `self` adopts the other side's width instead.
    pub fn merge(&mut self, other: &MetricsSeries) {
        if self.window_ns != other.window_ns {
            if self.windows.is_empty() {
                self.window_ns = other.window_ns;
            } else if other.windows.is_empty() {
                return;
            } else {
                crate::obs::m().merge_mismatches.inc();
                return;
            }
        }
        for (w, cells) in &other.windows {
            for (r, c) in cells {
                self.cell_mut(*w, *r).absorb(c);
            }
        }
    }

    /// The sub-series of ranks accepted by `keep` (serve-plane rank-range
    /// queries). Empty windows disappear; the window width is preserved.
    pub fn filter_ranks(&self, keep: impl Fn(u32) -> bool) -> MetricsSeries {
        let mut out = MetricsSeries::new(self.window_ns);
        for (w, cells) in &self.windows {
            let kept: BTreeMap<u32, WindowCell> = cells
                .iter()
                .filter(|(r, _)| keep(**r))
                .map(|(r, c)| (*r, *c))
                .collect();
            if !kept.is_empty() {
                out.windows.insert(*w, kept);
            }
        }
        out
    }

    /// Exact size of [`MetricsSeries::encode_into`]'s output, bytes.
    pub fn encoded_size(&self) -> usize {
        12 + self
            .windows
            .values()
            .map(|cells| 12 + cells.len() * 44)
            .sum::<usize>()
    }

    /// Appends the canonical wire image:
    ///
    /// ```text
    /// u64 window_ns · u32 n_windows
    ///   per window: u64 index · u32 n_ranks
    ///     per rank: u32 rank · u64 mpi_ns · u64 wait_ns · u64 xfer_ns ·
    ///               u64 bytes · u64 hits
    /// ```
    ///
    /// Both map levels iterate in ascending key order, so equal series
    /// always produce equal bytes.
    pub fn encode_into(&self, out: &mut impl BufMut) {
        out.put_u64_le(self.window_ns);
        out.put_u32_le(self.windows.len() as u32);
        for w in self.windows.keys() {
            self.encode_window_into(*w, out);
        }
    }

    /// Appends one window in the same per-window layout as
    /// [`MetricsSeries::encode_into`] (`u64 index · u32 n_ranks · cells`)
    /// — the unit the serve plane's sparse deltas travel in. A window the
    /// series does not hold encodes as zero ranks.
    pub fn encode_window_into(&self, window: u64, out: &mut impl BufMut) {
        let empty = BTreeMap::new();
        let cells = self.windows.get(&window).unwrap_or(&empty);
        out.put_u64_le(window);
        out.put_u32_le(cells.len() as u32);
        for (r, c) in cells {
            out.put_u32_le(*r);
            out.put_u64_le(c.mpi_ns);
            out.put_u64_le(c.wait_ns);
            out.put_u64_le(c.xfer_ns);
            out.put_u64_le(c.bytes);
            out.put_u64_le(c.hits);
        }
    }

    /// Decodes one window image written by
    /// [`MetricsSeries::encode_window_into`], advancing `view` past it.
    /// Zero cells are dropped so the result is canonical.
    pub fn decode_window(
        view: &mut impl Buf,
    ) -> Result<(u64, BTreeMap<u32, WindowCell>), MetricsWireError> {
        need(view, 12)?;
        let w = view.get_u64_le();
        let n_ranks = view.get_u32_le() as usize;
        need(view, n_ranks * 44)?;
        let mut cells = BTreeMap::new();
        for _ in 0..n_ranks {
            let rank = view.get_u32_le();
            let cell = WindowCell {
                mpi_ns: view.get_u64_le(),
                wait_ns: view.get_u64_le(),
                xfer_ns: view.get_u64_le(),
                bytes: view.get_u64_le(),
                hits: view.get_u64_le(),
            };
            if !cell.is_zero() {
                cells.insert(rank, cell);
            }
        }
        Ok((w, cells))
    }

    /// The canonical wire image as a standalone buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one wire image, advancing `view` past it.
    pub fn decode(view: &mut impl Buf) -> Result<MetricsSeries, MetricsWireError> {
        need(view, 12)?;
        let window_ns = view.get_u64_le().max(1);
        let n_windows = view.get_u32_le() as usize;
        let mut windows = BTreeMap::new();
        for _ in 0..n_windows {
            let (w, cells) = MetricsSeries::decode_window(view)?;
            if !cells.is_empty() {
                windows.insert(w, cells);
            }
        }
        Ok(MetricsSeries { window_ns, windows })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use opmr_events::EventKind;
    use proptest::prelude::*;

    fn ev(kind: EventKind, rank: u32, t: u64, d: u64, bytes: u64) -> Event {
        Event {
            time_ns: t,
            duration_ns: d,
            kind,
            rank,
            peer: -1,
            tag: -1,
            comm: 0,
            bytes,
        }
    }

    #[test]
    fn event_is_split_exactly_at_window_boundaries() {
        let mut s = MetricsSeries::new(100);
        // 250..=420: 50 ns in window 2, 100 in window 3, 20 in window 4.
        s.add(&ev(EventKind::Send, 1, 250, 170, 64));
        assert_eq!(s.cell(2, 1).unwrap().mpi_ns, 50);
        assert_eq!(s.cell(3, 1).unwrap().mpi_ns, 100);
        assert_eq!(s.cell(4, 1).unwrap().mpi_ns, 20);
        // Hits and bytes only in the starting window.
        assert_eq!(s.cell(2, 1).unwrap().hits, 1);
        assert_eq!(s.cell(2, 1).unwrap().bytes, 64);
        assert_eq!(s.cell(3, 1).unwrap().hits, 0);
        let total: u64 = s.cells().map(|(_, _, c)| c.mpi_ns).sum();
        assert_eq!(total, 170, "no nanosecond lost or invented");
    }

    #[test]
    fn wait_and_transfer_classification() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Wait, 0, 0, 100, 0));
        s.add(&ev(EventKind::Allreduce, 0, 100, 200, 8));
        s.add(&ev(EventKind::Init, 0, 300, 50, 0));
        let c = s.cell(0, 0).unwrap();
        assert_eq!(c.mpi_ns, 350);
        assert_eq!(c.wait_ns, 100);
        assert_eq!(c.xfer_ns, 200);
        assert_eq!(c.hits, 3);
    }

    #[test]
    fn non_mpi_events_are_ignored() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Compute, 0, 0, 500, 0));
        s.add(&ev(EventKind::PosixWrite, 0, 0, 500, 4096));
        s.add(&ev(EventKind::Marker, 0, 0, 0, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn zero_duration_event_still_counts_a_hit() {
        let mut s = MetricsSeries::new(1000);
        s.add(&ev(EventKind::Probe, 2, 1500, 0, 0));
        let c = s.cell(1, 2).unwrap();
        assert_eq!((c.hits, c.mpi_ns), (1, 0));
    }

    #[test]
    fn merge_equals_flat_fold_regardless_of_split() {
        let events: Vec<Event> = (0..200)
            .map(|i| {
                ev(
                    if i % 3 == 0 {
                        EventKind::Wait
                    } else {
                        EventKind::Isend
                    },
                    i % 5,
                    (i as u64) * 37,
                    (i as u64 % 11) * 13,
                    i as u64,
                )
            })
            .collect();
        let mut flat = MetricsSeries::new(64);
        for e in &events {
            flat.add(e);
        }
        for split in [1usize, 7, 50, 199] {
            let mut acc = MetricsSeries::new(64);
            for chunk in events.chunks(split) {
                let mut part = MetricsSeries::new(64);
                for e in chunk {
                    part.add(e);
                }
                acc.merge(&part);
            }
            assert_eq!(acc, flat, "chunk size {split}");
            assert_eq!(acc.encode(), flat.encode(), "chunk size {split} bytes");
        }
    }

    #[test]
    fn mismatched_window_width_is_dropped_not_mixed() {
        let mut a = MetricsSeries::new(100);
        a.add(&ev(EventKind::Send, 0, 10, 10, 1));
        let mut b = MetricsSeries::new(200);
        b.add(&ev(EventKind::Send, 0, 10, 10, 1));
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before, "mismatched width must not corrupt the series");
        // An empty series adopts the other side's width.
        let mut empty = MetricsSeries::new(100);
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn codec_roundtrips_and_size_is_exact() {
        let mut s = MetricsSeries::new(250);
        for i in 0..50u64 {
            s.add(&ev(EventKind::Sendrecv, (i % 3) as u32, i * 100, 80, 32));
        }
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_size());
        let mut view: &[u8] = &bytes;
        let back = MetricsSeries::decode(&mut view).unwrap();
        assert_eq!(back, s);
        assert!(view.is_empty(), "decode must consume exactly one image");
        assert_eq!(back.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut s = MetricsSeries::new(100);
        s.add(&ev(EventKind::Send, 0, 0, 50, 8));
        let bytes = s.encode();
        for cut in 0..bytes.len() {
            let mut view = &bytes[..cut];
            assert_eq!(
                MetricsSeries::decode(&mut view),
                Err(MetricsWireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn filter_ranks_preserves_width_and_drops_empty_windows() {
        let mut s = MetricsSeries::new(100);
        s.add(&ev(EventKind::Send, 0, 0, 10, 1));
        s.add(&ev(EventKind::Send, 5, 500, 10, 1));
        let only5 = s.filter_ranks(|r| r == 5);
        assert_eq!(only5.window_ns(), 100);
        assert_eq!(only5.len(), 1);
        assert!(only5.cell(5, 5).is_some());
        assert!(only5.cell(0, 0).is_none());
    }

    proptest! {
        /// Fold order and batching never change the series bytes, and the
        /// folded nanoseconds are conserved.
        #[test]
        fn fold_is_order_independent_and_mass_conserving(
            mut times in proptest::collection::vec((0u64..50_000, 0u64..5_000, 0u32..6), 1..80),
            window in 1u64..10_000,
        ) {
            let events: Vec<Event> = times
                .iter()
                .map(|&(t, d, r)| ev(EventKind::Isend, r, t, d, 1))
                .collect();
            let mut forward = MetricsSeries::new(window);
            for e in &events {
                forward.add(e);
            }
            times.reverse();
            let mut backward = MetricsSeries::new(window);
            for &(t, d, r) in &times {
                backward.add(&ev(EventKind::Isend, r, t, d, 1));
            }
            prop_assert_eq!(forward.encode(), backward.encode());
            let mass: u64 = forward.cells().map(|(_, _, c)| c.mpi_ns).sum();
            let expect: u64 = times.iter().map(|&(_, d, _)| d).sum();
            prop_assert_eq!(mass, expect);
        }
    }
}
