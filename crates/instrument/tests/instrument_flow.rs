//! End-to-end instrumentation tests: instrumented ranks stream event packs
//! that an analyzer partition decodes and checks against ground truth.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_events::{EventKind, EventPack};
use opmr_instrument::InstrumentedMpi;
use opmr_runtime::{Launcher, Src, TagSel};
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{Balance, Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn cfg() -> StreamConfig {
    StreamConfig::new(4096, 3, Balance::RoundRobin)
}

/// Analyzer partition body: drain every mapped stream, decode packs.
fn analyzer_collect(mpi: opmr_runtime::Mpi, sink: Arc<Mutex<Vec<EventPack>>>) {
    let v = Vmpi::new(mpi).unwrap();
    let mut map = Map::new();
    for pid in 0..v.partition_count() {
        if pid != v.partition_id() {
            map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map).unwrap();
        }
    }
    if map.is_empty() {
        return;
    }
    let mut st = ReadStream::open_map(&v, &map, cfg(), 0).unwrap();
    while let Some(block) = st.read(ReadMode::Blocking).unwrap() {
        let pack = EventPack::decode(&block.data).expect("block is one pack");
        sink.lock().unwrap().push(pack);
    }
}

#[test]
fn events_arrive_with_correct_shape() {
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    Launcher::new()
        .partition("app", 2, |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 0).unwrap();
            let w = imp.comm_world();
            if imp.rank() == 0 {
                imp.send(&w, 1, 42, &[1u8, 2, 3][..]).unwrap();
            } else {
                let (st, data) = imp.recv(&w, Src::Any, TagSel::Any).unwrap();
                assert_eq!(st.tag, 42);
                assert_eq!(data.len(), 3);
            }
            imp.barrier(&w).unwrap();
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            analyzer_collect(mpi, Arc::clone(&p2))
        })
        .run()
        .unwrap();

    let packs = packs.lock().unwrap();
    let all: Vec<_> = packs
        .iter()
        .flat_map(|p| p.events.iter().copied())
        .collect();
    // Per rank: Init, one p2p op, Barrier, Finalize.
    let sends: Vec<_> = all.iter().filter(|e| e.kind == EventKind::Send).collect();
    let recvs: Vec<_> = all.iter().filter(|e| e.kind == EventKind::Recv).collect();
    assert_eq!(sends.len(), 1);
    assert_eq!(recvs.len(), 1);
    assert_eq!(sends[0].peer, 1);
    assert_eq!(sends[0].bytes, 3);
    assert_eq!(sends[0].tag, 42);
    assert_eq!(recvs[0].peer, 0);
    assert_eq!(recvs[0].bytes, 3);
    assert_eq!(all.iter().filter(|e| e.kind == EventKind::Init).count(), 2);
    assert_eq!(
        all.iter().filter(|e| e.kind == EventKind::Finalize).count(),
        2
    );
    assert_eq!(
        all.iter().filter(|e| e.kind == EventKind::Barrier).count(),
        2
    );
    // Pack metadata: app 0, ranks 0 and 1.
    for p in packs.iter() {
        assert_eq!(p.header.app_id, 0);
        assert!(p.header.rank < 2);
        assert_eq!(p.header.count as usize, p.events.len());
    }
}

#[test]
fn event_counts_scale_with_activity() {
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    const ROUNDS: usize = 200;
    Launcher::new()
        .partition("app", 4, |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 3).unwrap();
            let w = imp.comm_world();
            let r = imp.rank();
            let n = imp.size();
            for i in 0..ROUNDS {
                let dst = (r + 1) % n;
                let src = (r + n - 1) % n;
                let sreq = imp.isend(&w, dst, i as i32, vec![0u8; 64]).unwrap();
                let (_st, _d) = imp.recv(&w, Src::Rank(src), TagSel::Tag(i as i32)).unwrap();
                imp.wait(sreq).unwrap();
            }
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 2, move |mpi| {
            analyzer_collect(mpi, Arc::clone(&p2))
        })
        .run()
        .unwrap();

    let packs = packs.lock().unwrap();
    let all: Vec<_> = packs
        .iter()
        .flat_map(|p| p.events.iter().copied())
        .collect();
    assert_eq!(
        all.iter().filter(|e| e.kind == EventKind::Isend).count(),
        4 * ROUNDS
    );
    assert_eq!(
        all.iter().filter(|e| e.kind == EventKind::Recv).count(),
        4 * ROUNDS
    );
    assert_eq!(
        all.iter().filter(|e| e.kind == EventKind::Wait).count(),
        4 * ROUNDS
    );
    // Sequence numbers per producer are gapless.
    for rank in 0..4u32 {
        let mut seqs: Vec<u32> = packs
            .iter()
            .filter(|p| p.header.rank == rank)
            .map(|p| p.header.seq)
            .collect();
        seqs.sort_unstable();
        let expect: Vec<u32> = (0..seqs.len() as u32).collect();
        assert_eq!(seqs, expect, "rank {rank} pack sequence");
    }
    // Timestamps are monotone per rank within packs of one producer.
    for rank in 0..4u32 {
        let mut last = 0u64;
        let mut seq_packs: Vec<_> = packs.iter().filter(|p| p.header.rank == rank).collect();
        seq_packs.sort_by_key(|p| p.header.seq);
        for p in seq_packs {
            for e in &p.events {
                assert!(e.time_ns >= last, "time went backwards on rank {rank}");
                last = e.time_ns;
            }
        }
    }
}

#[test]
fn hooks_observe_every_event() {
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = Arc::clone(&seen);
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    Launcher::new()
        .partition("app", 1, move |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 0).unwrap();
            let s = Arc::clone(&seen2);
            imp.add_hook(move |_e| {
                s.fetch_add(1, Ordering::SeqCst);
            });
            let w = imp.comm_world();
            imp.barrier(&w).unwrap();
            imp.marker(7).unwrap();
            imp.compute(std::time::Duration::from_micros(100)).unwrap();
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            analyzer_collect(mpi, Arc::clone(&p2))
        })
        .run()
        .unwrap();
    // Hook added after Init: sees Barrier, Marker, Compute, Finalize.
    assert_eq!(seen.load(Ordering::SeqCst), 4);
}

#[test]
fn collectives_and_posix_recorded() {
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    Launcher::new()
        .partition("app", 3, |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 0).unwrap();
            let w = imp.comm_world();
            let data = if imp.rank() == 1 {
                Some(bytes::Bytes::from(vec![5u8; 100]))
            } else {
                None
            };
            let got = imp.bcast(&w, 1, data).unwrap();
            assert_eq!(got.len(), 100);
            let s = imp.allreduce_sum(&w, &[imp.rank() as u64]).unwrap();
            assert_eq!(s, vec![3]);
            imp.posix(
                EventKind::PosixWrite,
                4096,
                std::time::Duration::from_micros(10),
            )
            .unwrap();
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            analyzer_collect(mpi, Arc::clone(&p2))
        })
        .run()
        .unwrap();
    let packs = packs.lock().unwrap();
    let all: Vec<_> = packs
        .iter()
        .flat_map(|p| p.events.iter().copied())
        .collect();
    let bcasts: Vec<_> = all.iter().filter(|e| e.kind == EventKind::Bcast).collect();
    assert_eq!(bcasts.len(), 3);
    assert!(bcasts.iter().all(|e| e.peer == 1 && e.bytes == 100));
    assert_eq!(
        all.iter()
            .filter(|e| e.kind == EventKind::Allreduce)
            .count(),
        3
    );
    let writes: Vec<_> = all
        .iter()
        .filter(|e| e.kind == EventKind::PosixWrite)
        .collect();
    assert_eq!(writes.len(), 3);
    assert!(writes.iter().all(|e| e.bytes == 4096));
}

#[test]
fn finalize_twice_errors() {
    Launcher::new()
        .partition("app", 1, |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 0).unwrap();
            imp.finalize().unwrap();
            assert!(imp.finalize().is_err());
            assert!(imp.marker(0).is_err());
        })
        .partition("Analyzer", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, cfg(), 0).unwrap();
            while st.read(ReadMode::Blocking).unwrap().is_some() {}
        })
        .run()
        .unwrap();
}

#[test]
fn packs_split_exactly_at_capacity() {
    // Block size chosen so each pack holds exactly 4 events:
    // header (24) + 4 × 48 = 216 ≤ block < 264.
    let small = StreamConfig::new(230, 3, Balance::RoundRobin);
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    Launcher::new()
        .partition("app", 1, move |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", small, 0, 0).unwrap();
            // Init + 9 markers + Finalize = 11 events → packs of 4/4/3.
            for i in 0..9 {
                imp.marker(i).unwrap();
            }
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions(&v, 0, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, small, 0).unwrap();
            while let Some(block) = st.read(ReadMode::Blocking).unwrap() {
                p2.lock()
                    .unwrap()
                    .push(EventPack::decode(&block.data).unwrap());
            }
        })
        .run()
        .unwrap();
    let mut packs = packs.lock().unwrap().clone();
    packs.sort_by_key(|p| p.header.seq);
    let counts: Vec<usize> = packs.iter().map(|p| p.events.len()).collect();
    assert_eq!(counts, vec![4, 4, 3]);
    assert_eq!(
        EventPack::capacity_for_block(230),
        4,
        "block capacity drives the split"
    );
}

#[test]
fn waitall_aggregates_pending_requests() {
    let packs = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&packs);
    Launcher::new()
        .partition("app", 2, move |mpi| {
            let imp = InstrumentedMpi::init(mpi, "Analyzer", cfg(), 0, 0).unwrap();
            let w = imp.comm_world();
            if imp.rank() == 0 {
                let reqs: Vec<_> = (0..5)
                    .map(|i| imp.isend(&w, 1, i, vec![0u8; 100]).unwrap())
                    .collect();
                imp.waitall(reqs).unwrap();
            } else {
                let reqs: Vec<_> = (0..5)
                    .map(|i| imp.irecv(&w, Src::Rank(0), TagSel::Tag(i)).unwrap())
                    .collect();
                let out = imp.waitall(reqs).unwrap();
                assert!(out.iter().all(|o| o.is_some()));
            }
            imp.finalize().unwrap();
        })
        .partition("Analyzer", 1, move |mpi| {
            analyzer_collect(mpi, Arc::clone(&p2))
        })
        .run()
        .unwrap();
    let packs = packs.lock().unwrap();
    let all: Vec<_> = packs
        .iter()
        .flat_map(|p| p.events.iter().copied())
        .collect();
    let waitalls: Vec<_> = all
        .iter()
        .filter(|e| e.kind == EventKind::Waitall)
        .collect();
    assert_eq!(waitalls.len(), 2);
    // The receiver's waitall carries the total received bytes.
    assert!(waitalls.iter().any(|e| e.bytes == 500));
}
