//! SIONlib-style multiplexed trace container.
//!
//! The paper's trace-based comparisons use SIONlib ("Scalable massively
//! parallel I/O to task-local files"): all ranks write into *one* shared
//! container file with per-rank chunks, so the file system sees one file
//! instead of `P` — trading metadata pressure for coordination. This
//! module implements that container for the trace baseline:
//!
//! ```text
//! [magic u32 "OPSN"] [ranks u32]
//! repeat: [rank u32] [len u32] [payload bytes]
//! ```
//!
//! Writers share a handle; each `write` appends one framed chunk under a
//! short lock (the in-process equivalent of SIONlib's pre-reserved block
//! ranges). Readers demultiplex chunks back per rank, preserving each
//! rank's write order.

use bytes::Bytes;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u32 = u32::from_le_bytes(*b"OPSN");

/// Shared writer for one multiplexed container file.
#[derive(Clone)]
pub struct SionFile {
    inner: Arc<SionInner>,
}

struct SionInner {
    path: PathBuf,
    state: Mutex<SionState>,
}

struct SionState {
    file: Option<std::io::BufWriter<std::fs::File>>,
    chunks: u64,
    bytes: u64,
    open_ranks: u32,
}

impl SionFile {
    /// Creates the container for `ranks` writers.
    pub fn create(path: impl Into<PathBuf>, ranks: u32) -> std::io::Result<SionFile> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        file.write_all(&MAGIC.to_le_bytes())?;
        file.write_all(&ranks.to_le_bytes())?;
        Ok(SionFile {
            inner: Arc::new(SionInner {
                path,
                state: Mutex::new(SionState {
                    file: Some(file),
                    chunks: 0,
                    bytes: 0,
                    open_ranks: ranks,
                }),
            }),
        })
    }

    /// Appends one chunk for `rank`.
    pub fn write(&self, rank: u32, payload: &[u8]) -> std::io::Result<()> {
        let mut st = self.inner.state.lock();
        let file = st.file.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "sion container closed")
        })?;
        file.write_all(&rank.to_le_bytes())?;
        file.write_all(&(payload.len() as u32).to_le_bytes())?;
        file.write_all(payload)?;
        st.chunks += 1;
        st.bytes += payload.len() as u64 + 8;
        Ok(())
    }

    /// One writer detaches; the container flushes and closes when the last
    /// writer leaves.
    pub fn close_rank(&self) -> std::io::Result<()> {
        let mut st = self.inner.state.lock();
        st.open_ranks = st.open_ranks.saturating_sub(1);
        if st.open_ranks == 0 {
            if let Some(mut f) = st.file.take() {
                f.flush()?;
            }
        }
        Ok(())
    }

    /// Container path.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// `(chunks, payload+framing bytes)` written so far.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.state.lock();
        (st.chunks, st.bytes)
    }
}

/// Demultiplexes a container: per-rank chunk lists in write order.
pub fn read_sion(path: &Path) -> std::io::Result<Vec<Vec<Bytes>>> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    if data.len() < 8 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "sion container too short",
        ));
    }
    let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    if magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad sion magic",
        ));
    }
    let ranks = u32::from_le_bytes([data[4], data[5], data[6], data[7]]) as usize;
    let mut out = vec![Vec::new(); ranks];
    let mut off = 8usize;
    while off + 8 <= data.len() {
        let rank =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        let len = u32::from_le_bytes([data[off + 4], data[off + 5], data[off + 6], data[off + 7]])
            as usize;
        off += 8;
        if off + len > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated sion chunk",
            ));
        }
        if rank >= ranks {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("chunk for rank {rank} of {ranks}"),
            ));
        }
        out[rank].push(Bytes::copy_from_slice(&data[off..off + len]));
        off += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("opmr_sion_{name}_{}", std::process::id()))
    }

    #[test]
    fn multiplex_roundtrip_preserves_per_rank_order() {
        let path = tmp("order");
        let sion = SionFile::create(&path, 3).unwrap();
        // Interleaved writes from 3 "ranks".
        for i in 0..10u8 {
            for rank in 0..3u32 {
                sion.write(rank, &[rank as u8, i]).unwrap();
            }
        }
        for _ in 0..3 {
            sion.close_rank().unwrap();
        }
        let per_rank = read_sion(&path).unwrap();
        assert_eq!(per_rank.len(), 3);
        for (rank, chunks) in per_rank.iter().enumerate() {
            assert_eq!(chunks.len(), 10);
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(&c[..], &[rank as u8, i as u8]);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_writers_one_file() {
        let path = tmp("concurrent");
        let sion = SionFile::create(&path, 8).unwrap();
        let mut handles = Vec::new();
        for rank in 0..8u32 {
            let s = sion.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    s.write(rank, &i.to_le_bytes()).unwrap();
                }
                s.close_rank().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (chunks, _bytes) = sion.stats();
        assert_eq!(chunks, 400);
        let per_rank = read_sion(&path).unwrap();
        for chunks in &per_rank {
            assert_eq!(chunks.len(), 50);
            // Per-rank order preserved even under interleaving.
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(u32::from_le_bytes([c[0], c[1], c[2], c[3]]), i as u32);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_after_close_fails() {
        let path = tmp("closed");
        let sion = SionFile::create(&path, 1).unwrap();
        sion.write(0, b"x").unwrap();
        sion.close_rank().unwrap();
        assert!(sion.write(0, b"y").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_containers_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"NOPE1234").unwrap();
        assert!(read_sion(&path).is_err());
        std::fs::write(&path, []).unwrap();
        assert!(read_sion(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn one_file_many_ranks_is_the_point() {
        // The metadata argument: 64 writers, still one inode.
        let path = tmp("inode");
        let sion = SionFile::create(&path, 64).unwrap();
        for rank in 0..64u32 {
            sion.write(rank, &[0u8; 100]).unwrap();
        }
        for _ in 0..64 {
            sion.close_rank().unwrap();
        }
        assert!(path.is_file());
        assert_eq!(read_sion(&path).unwrap().len(), 64);
        std::fs::remove_file(&path).unwrap();
    }
}
