//! Event recorder: batches events into packs and streams them out.

use crate::sink::PackSink;
use opmr_events::{Event, EventPack};
use opmr_vmpi::Result;

/// Recorder sizing.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Application id stamped into every pack (blackboard level selector).
    pub app_id: u16,
    /// Partition-local rank of the producer.
    pub rank: u32,
    /// Maximum events per pack. Must keep the encoded pack within the
    /// stream's block size so one pack maps to one block.
    pub events_per_pack: usize,
}

impl RecorderConfig {
    /// Largest pack that fits one stream block.
    pub fn for_block_size(app_id: u16, rank: u32, block_size: usize) -> RecorderConfig {
        let cap = EventPack::capacity_for_block(block_size).max(1);
        RecorderConfig {
            app_id,
            rank,
            events_per_pack: cap,
        }
    }
}

/// Counters a finished recorder reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events recorded.
    pub events: u64,
    /// Packs flushed downstream.
    pub packs: u64,
    /// Encoded bytes handed to the stream.
    pub wire_bytes: u64,
}

/// Batches events and writes one pack per sink block.
pub struct Recorder {
    cfg: RecorderConfig,
    sink: PackSink,
    buf: Vec<Event>,
    seq: u32,
    stats: RecorderStats,
}

impl Recorder {
    /// Wraps an open pack sink (stream for online coupling, file for the
    /// classical trace baseline).
    pub fn new(cfg: RecorderConfig, sink: PackSink) -> Recorder {
        assert!(cfg.events_per_pack > 0);
        Recorder {
            buf: Vec::with_capacity(cfg.events_per_pack),
            cfg,
            sink,
            seq: 0,
            stats: RecorderStats::default(),
        }
    }

    /// Records one event, flushing a pack when the batch is full.
    pub fn record(&mut self, event: Event) -> Result<()> {
        self.buf.push(event);
        self.stats.events += 1;
        if self.buf.len() >= self.cfg.events_per_pack {
            self.flush_pack()?;
        }
        Ok(())
    }

    /// Flushes the current partial pack, if any, as one stream block.
    pub fn flush_pack(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let events = std::mem::take(&mut self.buf);
        let pack = EventPack::new(self.cfg.app_id, self.cfg.rank, self.seq, events);
        self.seq += 1;
        let encoded = pack.encode();
        self.stats.packs += 1;
        self.stats.wire_bytes += encoded.len() as u64;
        self.sink.put(&encoded)?;
        self.buf = Vec::with_capacity(self.cfg.events_per_pack);
        Ok(())
    }

    /// Flushes and closes the sink, returning the final counters.
    pub fn finish(mut self) -> Result<RecorderStats> {
        self.flush_pack()?;
        let stats = self.stats;
        self.sink.close()?;
        Ok(stats)
    }

    /// Counters so far.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// Events waiting in the current partial pack.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}
