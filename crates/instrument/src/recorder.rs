//! Event recorder: batches events into packs and streams them out.
//!
//! The hot path is allocation-free in steady state: the event batch and
//! the encode scratch buffer are both reused across packs (`clear()`, not
//! reallocation), with the scratch checked out of the process-wide
//! [`opmr_events::global_pool`] so successive recorders in one process
//! recycle each other's buffers.

use crate::sink::PackSink;
use opmr_events::{Event, EventPack, PackEncoding};
use opmr_vmpi::Result;

mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct RecorderMetrics {
        pub encode_ns: Arc<Histogram>,
        pub packs: Arc<Counter>,
    }

    pub(super) fn m() -> &'static RecorderMetrics {
        static M: OnceLock<RecorderMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            RecorderMetrics {
                encode_ns: r.histogram("instrument_encode_ns"),
                packs: r.counter("instrument_packs_encoded_total"),
            }
        })
    }
}

/// Recorder sizing.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Application id stamped into every pack (blackboard level selector).
    pub app_id: u16,
    /// Partition-local rank of the producer.
    pub rank: u32,
    /// Maximum events per pack. Must keep the encoded pack within the
    /// stream's block size so one pack maps to one block — computed from
    /// the encoding's *worst-case* per-event size, so a full pack can
    /// never overflow the block.
    pub events_per_pack: usize,
    /// Wire layout for encoded packs.
    pub encoding: PackEncoding,
}

impl RecorderConfig {
    /// Largest fixed-layout pack that fits one stream block.
    pub fn for_block_size(app_id: u16, rank: u32, block_size: usize) -> RecorderConfig {
        Self::for_block(app_id, rank, block_size, PackEncoding::Fixed)
    }

    /// Largest pack under `encoding` guaranteed to fit one stream block.
    pub fn for_block(
        app_id: u16,
        rank: u32,
        block_size: usize,
        encoding: PackEncoding,
    ) -> RecorderConfig {
        let cap = EventPack::capacity_for_block_with(block_size, encoding).max(1);
        RecorderConfig {
            app_id,
            rank,
            events_per_pack: cap,
            encoding,
        }
    }
}

/// Counters a finished recorder reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events recorded.
    pub events: u64,
    /// Packs flushed downstream.
    pub packs: u64,
    /// Encoded bytes handed to the stream.
    pub wire_bytes: u64,
}

/// Batches events and writes one pack per sink block.
pub struct Recorder {
    cfg: RecorderConfig,
    sink: PackSink,
    buf: Vec<Event>,
    scratch: bytes::BytesMut,
    seq: u32,
    stats: RecorderStats,
}

impl Recorder {
    /// Wraps an open pack sink (stream for online coupling, file for the
    /// classical trace baseline).
    pub fn new(cfg: RecorderConfig, sink: PackSink) -> Recorder {
        assert!(cfg.events_per_pack > 0);
        let scratch_cap = opmr_events::PACK_HEADER_SIZE
            + cfg.events_per_pack * cfg.encoding.max_event_wire_size();
        Recorder {
            buf: Vec::with_capacity(cfg.events_per_pack),
            scratch: opmr_events::global_pool().get(scratch_cap),
            cfg,
            sink,
            seq: 0,
            stats: RecorderStats::default(),
        }
    }

    /// Records one event, flushing a pack when the batch is full.
    pub fn record(&mut self, event: Event) -> Result<()> {
        self.buf.push(event);
        self.stats.events += 1;
        if self.buf.len() >= self.cfg.events_per_pack {
            self.flush_pack()?;
        }
        Ok(())
    }

    /// Flushes the current partial pack, if any, as one stream block.
    /// Steady state reuses both the event batch and the encode scratch —
    /// no allocation per pack.
    pub fn flush_pack(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let events = std::mem::take(&mut self.buf);
        let pack = EventPack::new(self.cfg.app_id, self.cfg.rank, self.seq, events);
        self.seq += 1;
        let t0 = std::time::Instant::now();
        self.scratch.clear();
        let n = pack.encode_into(self.cfg.encoding, &mut self.scratch);
        let m = obs::m();
        m.encode_ns.record(t0.elapsed().as_nanos() as u64);
        m.packs.inc();
        self.stats.packs += 1;
        self.stats.wire_bytes += n as u64;
        let res = self.sink.put(&self.scratch);
        // Hand the event Vec back to the batch so its allocation lives on.
        self.buf = pack.events;
        self.buf.clear();
        res
    }

    /// Flushes and closes the sink, returning the final counters.
    pub fn finish(mut self) -> Result<RecorderStats> {
        self.flush_pack()?;
        let stats = self.stats;
        opmr_events::global_pool().put(std::mem::take(&mut self.scratch));
        self.sink.close()?;
        Ok(stats)
    }

    /// Counters so far.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// Events waiting in the current partial pack.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}
