//! Pack sinks: where encoded event packs go.
//!
//! The paper's point is precisely the difference between these two sinks:
//! [`PackSink::Stream`] couples instrumentation to the online analyzer over
//! the interconnect; [`PackSink::File`] is the classical trace-to-disk
//! workflow kept as the comparison baseline (length-prefixed packs, one
//! file per rank — the "task-local files" pattern whose metadata pressure
//! the paper criticizes).

use bytes::Bytes;
use opmr_vmpi::{Result, VmpiError, WriteStream};
use std::io::Write;

/// Destination for encoded packs.
#[allow(clippy::large_enum_variant)] // one sink per rank, size is irrelevant
pub enum PackSink {
    /// Online coupling: one pack per stream block.
    Stream(WriteStream),
    /// Classical trace file: `[u32 little-endian length][pack bytes]*`.
    File {
        writer: std::io::BufWriter<std::fs::File>,
        path: std::path::PathBuf,
    },
    /// SIONlib-style shared container: all ranks multiplex into one file.
    Sion {
        file: crate::sion::SionFile,
        rank: u32,
    },
}

impl PackSink {
    /// Opens a per-rank trace file sink.
    pub fn file(path: impl Into<std::path::PathBuf>) -> std::io::Result<PackSink> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(&path)?;
        Ok(PackSink::File {
            writer: std::io::BufWriter::new(file),
            path,
        })
    }

    /// Writes one encoded pack.
    pub fn put(&mut self, pack: &[u8]) -> Result<()> {
        match self {
            PackSink::Stream(stream) => {
                stream.write(pack)?;
                // One pack == one block.
                stream.flush()
            }
            PackSink::File { writer, .. } => {
                let len = (pack.len() as u32).to_le_bytes();
                writer
                    .write_all(&len)
                    .and_then(|_| writer.write_all(pack))
                    .map_err(|_| VmpiError::StreamClosed)
            }
            PackSink::Sion { file, rank } => {
                file.write(*rank, pack).map_err(|_| VmpiError::StreamClosed)
            }
        }
    }

    /// Closes the sink (EOF markers for streams, flush for files).
    pub fn close(self) -> Result<()> {
        match self {
            PackSink::Stream(stream) => stream.close(),
            PackSink::File { mut writer, .. } => {
                writer.flush().map_err(|_| VmpiError::StreamClosed)
            }
            PackSink::Sion { file, .. } => file.close_rank().map_err(|_| VmpiError::StreamClosed),
        }
    }
}

/// Reads every length-prefixed pack back from a trace file.
pub fn read_trace_file(path: &std::path::Path) -> std::io::Result<Vec<Bytes>> {
    let data = std::fs::read(path)?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 4 <= data.len() {
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        off += 4;
        if off + len > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("truncated trace {path:?}"),
            ));
        }
        out.push(Bytes::copy_from_slice(&data[off..off + len]));
        off += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir().join(format!("opmr_sink_{}", std::process::id()));
        let path = dir.join("rank0.opmr");
        let mut sink = PackSink::file(&path).unwrap();
        let packs = [
            Bytes::from_static(b"first"),
            Bytes::from_static(b""),
            Bytes::from(vec![7u8; 1000]),
        ];
        for p in &packs {
            sink.put(p).unwrap();
        }
        sink.close().unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], packs[0]);
        assert_eq!(back[1], packs[1]);
        assert_eq!(back[2], packs[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_trace_detected() {
        let dir = std::env::temp_dir().join(format!("opmr_sink_tr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.opmr");
        std::fs::write(&path, [10, 0, 0, 0, 1, 2]).unwrap();
        assert!(read_trace_file(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
