//! The instrumented MPI façade (the PMPI wrapper stack equivalent).
//!
//! Every call: timestamp → delegate to the virtualized runtime → build an
//! [`Event`] → run interceptor hooks → push into the [`Recorder`], which
//! streams full packs to the analyzer. Instrumentation overhead is real
//! here: when the analyzer cannot drain fast enough, the stream's bounded
//! async window back-pressures the application exactly as in the paper.

use crate::recorder::{Recorder, RecorderConfig, RecorderStats};
use crate::sink::PackSink;
use bytes::Bytes;
use opmr_events::{Event, EventKind, PackEncoding};
use opmr_runtime::collectives::ops as reduce_ops;
use opmr_runtime::{Comm, CommId, Mpi, Pod, Src, Status, TagSel};
use opmr_vmpi::map::{map_partitions, map_partitions_directed};
use opmr_vmpi::{Map, MapPolicy, Result, StreamConfig, Vmpi, VmpiError, WriteStream};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Interceptor hook: observes every recorded event (PNMPI-module analogue).
pub type Hook = Box<dyn Fn(&Event) + Send>;

/// Handle for an in-flight instrumented non-blocking operation.
pub struct InstrRequest {
    inner: opmr_runtime::Request,
    peer: i32,
    tag: i32,
    comm: u32,
    bytes: u64,
}

/// The instrumented, virtualized MPI handle handed to application code.
pub struct InstrumentedMpi {
    vmpi: Vmpi,
    world: Comm,
    rec: Mutex<Option<Recorder>>,
    hooks: Mutex<Vec<Hook>>,
    comms: Mutex<HashMap<CommId, u32>>,
    t0: u64,
}

impl InstrumentedMpi {
    /// Instruments a rank: virtualizes it, maps its partition onto the
    /// analyzer partition (round-robin, as in Figure 10) and opens the
    /// event stream. Records the `MPI_Init` event.
    pub fn init(
        mpi: Mpi,
        analyzer_partition: &str,
        stream_cfg: StreamConfig,
        stream_id: u16,
        app_id: u16,
    ) -> Result<Self> {
        let t_start = mpi.wtime_ns();
        let vmpi = Vmpi::new(mpi)?;
        let analyzer = vmpi
            .partition_by_name(analyzer_partition)
            .ok_or_else(|| VmpiError::UnknownPartition(analyzer_partition.to_string()))?
            .clone();
        let mut map = Map::new();
        map_partitions(&vmpi, analyzer.id, MapPolicy::RoundRobin, &mut map)?;
        let stream = WriteStream::open_map(&vmpi, &map, stream_cfg, stream_id)?;
        Self::build(
            vmpi,
            PackSink::Stream(stream),
            app_id,
            stream_cfg.block_size,
            stream_cfg.pack_encoding,
            t_start,
        )
    }

    /// Instruments a rank like [`InstrumentedMpi::init`], but maps onto the
    /// analyzer partition with an explicit policy and with the *analyzer*
    /// side mastering the mapping regardless of partition sizes. Reduction
    /// overlays use this to attach leaves to specific tree nodes (the
    /// policy picks the frontier node for each arriving leaf).
    pub fn init_directed(
        mpi: Mpi,
        analyzer_partition: &str,
        policy: MapPolicy,
        stream_cfg: StreamConfig,
        stream_id: u16,
        app_id: u16,
    ) -> Result<Self> {
        let t_start = mpi.wtime_ns();
        let vmpi = Vmpi::new(mpi)?;
        let analyzer = vmpi
            .partition_by_name(analyzer_partition)
            .ok_or_else(|| VmpiError::UnknownPartition(analyzer_partition.to_string()))?
            .clone();
        let mut map = Map::new();
        map_partitions_directed(&vmpi, analyzer.id, analyzer.id, policy, &mut map)?;
        let stream = WriteStream::open_map(&vmpi, &map, stream_cfg, stream_id)?;
        Self::build(
            vmpi,
            PackSink::Stream(stream),
            app_id,
            stream_cfg.block_size,
            stream_cfg.pack_encoding,
            t_start,
        )
    }

    /// Instruments a rank writing the classical per-rank trace file instead
    /// of streaming (the baseline workflow of Figure 1). The trace lands in
    /// `dir/app<id>_rank<r>.opmr`.
    pub fn init_trace(
        mpi: Mpi,
        dir: &std::path::Path,
        app_id: u16,
        block_size: usize,
    ) -> Result<Self> {
        let t_start = mpi.wtime_ns();
        let vmpi = Vmpi::new(mpi)?;
        let path = dir.join(format!("app{app_id}_rank{}.opmr", vmpi.rank()));
        let sink = PackSink::file(path).map_err(|_| VmpiError::StreamClosed)?;
        // Trace baselines keep the fixed layout: they model the classical
        // workflow the paper compares against.
        Self::build(vmpi, sink, app_id, block_size, PackEncoding::Fixed, t_start)
    }

    /// Instruments a rank writing into a shared SIONlib-style container
    /// (one file for the whole application — the reduced-metadata trace
    /// baseline the paper's comparisons use via Score-P + SIONlib).
    pub fn init_sion(
        mpi: Mpi,
        container: crate::sion::SionFile,
        app_id: u16,
        block_size: usize,
    ) -> Result<Self> {
        let t_start = mpi.wtime_ns();
        let vmpi = Vmpi::new(mpi)?;
        let rank = vmpi.rank() as u32;
        let sink = PackSink::Sion {
            file: container,
            rank,
        };
        Self::build(vmpi, sink, app_id, block_size, PackEncoding::Fixed, t_start)
    }

    fn build(
        vmpi: Vmpi,
        sink: PackSink,
        app_id: u16,
        block_size: usize,
        encoding: PackEncoding,
        t_start: u64,
    ) -> Result<Self> {
        let rank = vmpi.rank() as u32;
        let rec = Recorder::new(
            RecorderConfig::for_block(app_id, rank, block_size, encoding),
            sink,
        );
        let world = vmpi.comm_world();
        let imp = InstrumentedMpi {
            vmpi,
            world,
            rec: Mutex::new(Some(rec)),
            hooks: Mutex::new(Vec::new()),
            comms: Mutex::new(HashMap::new()),
            t0: t_start,
        };
        let dur = imp.now_ns();
        imp.record(Event::basic(EventKind::Init, rank, 0, dur))?;
        Ok(imp)
    }

    /// Adds an interceptor layer observing every event.
    pub fn add_hook(&self, hook: impl Fn(&Event) + Send + 'static) {
        self.hooks.lock().push(Box::new(hook));
    }

    /// Nanoseconds since this rank's `init`.
    pub fn now_ns(&self) -> u64 {
        self.vmpi.mpi().wtime_ns().saturating_sub(self.t0)
    }

    /// The virtual world communicator of this application.
    pub fn comm_world(&self) -> Comm {
        self.world.clone()
    }

    /// The underlying virtualized handle.
    pub fn vmpi(&self) -> &Vmpi {
        &self.vmpi
    }

    /// Rank within the application.
    pub fn rank(&self) -> usize {
        self.vmpi.rank()
    }

    /// Application size.
    pub fn size(&self) -> usize {
        self.vmpi.size()
    }

    fn comm_index(&self, comm: &Comm) -> u32 {
        let mut g = self.comms.lock();
        let next = g.len() as u32;
        *g.entry(comm.id()).or_insert(next)
    }

    fn record(&self, event: Event) -> Result<()> {
        for hook in self.hooks.lock().iter() {
            hook(&event);
        }
        let mut g = self.rec.lock();
        match g.as_mut() {
            Some(rec) => rec.record(event),
            None => Err(VmpiError::StreamClosed),
        }
    }

    fn event(
        &self,
        kind: EventKind,
        start: u64,
        peer: i32,
        tag: i32,
        comm: u32,
        bytes: u64,
    ) -> Event {
        Event {
            time_ns: start,
            duration_ns: self.now_ns().saturating_sub(start),
            kind,
            rank: self.vmpi.rank() as u32,
            peer,
            tag,
            comm,
            bytes,
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point.
    // ------------------------------------------------------------------

    /// Instrumented `MPI_Send`.
    pub fn send(&self, comm: &Comm, dst: usize, tag: i32, data: impl Into<Bytes>) -> Result<()> {
        let data = data.into();
        let (ci, len) = (self.comm_index(comm), data.len() as u64);
        let start = self.now_ns();
        self.vmpi.mpi().send(comm, dst, tag, data)?;
        self.record(self.event(EventKind::Send, start, dst as i32, tag, ci, len))
    }

    /// Instrumented `MPI_Recv`.
    pub fn recv(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<(Status, Bytes)> {
        let ci = self.comm_index(comm);
        let start = self.now_ns();
        let (st, data) = self.vmpi.mpi().recv(comm, src, tag)?;
        self.record(self.event(
            EventKind::Recv,
            start,
            st.source as i32,
            st.tag,
            ci,
            data.len() as u64,
        ))?;
        Ok((st, data))
    }

    /// Instrumented `MPI_Isend`.
    pub fn isend(
        &self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        data: impl Into<Bytes>,
    ) -> Result<InstrRequest> {
        let data = data.into();
        let (ci, len) = (self.comm_index(comm), data.len() as u64);
        let start = self.now_ns();
        let inner = self.vmpi.mpi().isend(comm, dst, tag, data)?;
        self.record(self.event(EventKind::Isend, start, dst as i32, tag, ci, len))?;
        Ok(InstrRequest {
            inner,
            peer: dst as i32,
            tag,
            comm: ci,
            bytes: len,
        })
    }

    /// Instrumented `MPI_Irecv`.
    pub fn irecv(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<InstrRequest> {
        let ci = self.comm_index(comm);
        let start = self.now_ns();
        let inner = self.vmpi.mpi().irecv(comm, src, tag)?;
        let peer = match src {
            Src::Any => -1,
            Src::Rank(r) => r as i32,
        };
        let tag_v = match tag {
            TagSel::Any => -1,
            TagSel::Tag(t) => t,
        };
        self.record(self.event(EventKind::Irecv, start, peer, tag_v, ci, 0))?;
        Ok(InstrRequest {
            inner,
            peer,
            tag: tag_v,
            comm: ci,
            bytes: 0,
        })
    }

    /// Instrumented `MPI_Wait`.
    pub fn wait(&self, req: InstrRequest) -> Result<Option<(Status, Bytes)>> {
        let start = self.now_ns();
        let out = req.inner.wait()?;
        let bytes = out
            .as_ref()
            .map(|(_, d)| d.len() as u64)
            .unwrap_or(req.bytes);
        let peer = out
            .as_ref()
            .map(|(s, _)| s.source as i32)
            .unwrap_or(req.peer);
        self.record(self.event(EventKind::Wait, start, peer, req.tag, req.comm, bytes))?;
        Ok(out)
    }

    /// Instrumented `MPI_Waitall`.
    pub fn waitall(&self, reqs: Vec<InstrRequest>) -> Result<Vec<Option<(Status, Bytes)>>> {
        let start = self.now_ns();
        let ci = reqs.first().map(|r| r.comm).unwrap_or(0);
        let mut out = Vec::with_capacity(reqs.len());
        let mut total = 0u64;
        for r in reqs {
            let res = r.inner.wait()?;
            total += res.as_ref().map(|(_, d)| d.len() as u64).unwrap_or(r.bytes);
            out.push(res);
        }
        self.record(self.event(EventKind::Waitall, start, -1, -1, ci, total))?;
        Ok(out)
    }

    /// Instrumented `MPI_Sendrecv`.
    pub fn sendrecv(
        &self,
        comm: &Comm,
        dst: usize,
        send_tag: i32,
        data: impl Into<Bytes>,
        src: Src,
        recv_tag: TagSel,
    ) -> Result<(Status, Bytes)> {
        let data = data.into();
        let (ci, len) = (self.comm_index(comm), data.len() as u64);
        let start = self.now_ns();
        let (st, got) = self
            .vmpi
            .mpi()
            .sendrecv(comm, dst, send_tag, data, src, recv_tag)?;
        self.record(self.event(
            EventKind::Sendrecv,
            start,
            dst as i32,
            send_tag,
            ci,
            len + got.len() as u64,
        ))?;
        Ok((st, got))
    }

    /// Typed instrumented send.
    pub fn send_t<T: Pod>(&self, comm: &Comm, dst: usize, tag: i32, data: &[T]) -> Result<()> {
        self.send(comm, dst, tag, opmr_runtime::pod::bytes_of_slice(data))
    }

    /// Typed instrumented receive.
    pub fn recv_t<T: Pod>(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<(Status, Vec<T>)> {
        let (st, data) = self.recv(comm, src, tag)?;
        let v = opmr_runtime::pod::vec_from_bytes::<T>(&data).ok_or(VmpiError::Runtime(
            opmr_runtime::RtError::TypeSize {
                got: data.len(),
                elem: std::mem::size_of::<T>(),
            },
        ))?;
        Ok((st, v))
    }

    // ------------------------------------------------------------------
    // Collectives.
    // ------------------------------------------------------------------

    /// Instrumented `MPI_Barrier`.
    pub fn barrier(&self, comm: &Comm) -> Result<()> {
        let ci = self.comm_index(comm);
        let start = self.now_ns();
        self.vmpi.mpi().barrier(comm)?;
        self.record(self.event(EventKind::Barrier, start, -1, -1, ci, 0))
    }

    /// Instrumented `MPI_Bcast`.
    pub fn bcast(&self, comm: &Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        let ci = self.comm_index(comm);
        let start = self.now_ns();
        let out = self.vmpi.mpi().bcast(comm, root, data)?;
        self.record(self.event(
            EventKind::Bcast,
            start,
            root as i32,
            -1,
            ci,
            out.len() as u64,
        ))?;
        Ok(out)
    }

    /// Instrumented typed `MPI_Reduce`.
    pub fn reduce_sum<T: Pod + std::ops::Add<Output = T>>(
        &self,
        comm: &Comm,
        root: usize,
        local: &[T],
    ) -> Result<Option<Vec<T>>> {
        let ci = self.comm_index(comm);
        let bytes = std::mem::size_of_val(local) as u64;
        let start = self.now_ns();
        let out = self
            .vmpi
            .mpi()
            .reduce_t(comm, root, local, reduce_ops::sum)?;
        self.record(self.event(EventKind::Reduce, start, root as i32, -1, ci, bytes))?;
        Ok(out)
    }

    /// Instrumented typed `MPI_Allreduce` (sum).
    pub fn allreduce_sum<T: Pod + std::ops::Add<Output = T>>(
        &self,
        comm: &Comm,
        local: &[T],
    ) -> Result<Vec<T>> {
        let ci = self.comm_index(comm);
        let bytes = std::mem::size_of_val(local) as u64;
        let start = self.now_ns();
        let out = self.vmpi.mpi().allreduce_t(comm, local, reduce_ops::sum)?;
        self.record(self.event(EventKind::Allreduce, start, -1, -1, ci, bytes))?;
        Ok(out)
    }

    /// Instrumented typed `MPI_Allreduce` (max).
    pub fn allreduce_max<T: Pod + PartialOrd>(&self, comm: &Comm, local: &[T]) -> Result<Vec<T>> {
        let ci = self.comm_index(comm);
        let bytes = std::mem::size_of_val(local) as u64;
        let start = self.now_ns();
        let out = self.vmpi.mpi().allreduce_t(comm, local, reduce_ops::max)?;
        self.record(self.event(EventKind::Allreduce, start, -1, -1, ci, bytes))?;
        Ok(out)
    }

    /// Instrumented `MPI_Gather`.
    pub fn gather(&self, comm: &Comm, root: usize, local: Bytes) -> Result<Option<Vec<Bytes>>> {
        let ci = self.comm_index(comm);
        let bytes = local.len() as u64;
        let start = self.now_ns();
        let out = self.vmpi.mpi().gather(comm, root, local)?;
        self.record(self.event(EventKind::Gather, start, root as i32, -1, ci, bytes))?;
        Ok(out)
    }

    /// Instrumented `MPI_Allgather`.
    pub fn allgather(&self, comm: &Comm, local: Bytes) -> Result<Vec<Bytes>> {
        let ci = self.comm_index(comm);
        let bytes = local.len() as u64;
        let start = self.now_ns();
        let out = self.vmpi.mpi().allgather(comm, local)?;
        self.record(self.event(EventKind::Allgather, start, -1, -1, ci, bytes))?;
        Ok(out)
    }

    /// Instrumented `MPI_Scatter`.
    pub fn scatter(&self, comm: &Comm, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes> {
        let ci = self.comm_index(comm);
        let start = self.now_ns();
        let out = self.vmpi.mpi().scatter(comm, root, parts)?;
        self.record(self.event(
            EventKind::Scatter,
            start,
            root as i32,
            -1,
            ci,
            out.len() as u64,
        ))?;
        Ok(out)
    }

    /// Instrumented `MPI_Alltoall`.
    pub fn alltoall(&self, comm: &Comm, parts: Vec<Bytes>) -> Result<Vec<Bytes>> {
        let ci = self.comm_index(comm);
        let bytes: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let start = self.now_ns();
        let out = self.vmpi.mpi().alltoall(comm, parts)?;
        self.record(self.event(EventKind::Alltoall, start, -1, -1, ci, bytes))?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Synthetic application activity.
    // ------------------------------------------------------------------

    /// Simulated computation: occupies the rank for `d` and records a
    /// `Compute` event (workload kernels use this to reproduce their
    /// compute/communication ratio at live scale).
    pub fn compute(&self, d: Duration) -> Result<()> {
        let start = self.now_ns();
        if d >= Duration::from_micros(500) {
            std::thread::sleep(d);
        } else {
            let until = self.now_ns() + d.as_nanos() as u64;
            while self.now_ns() < until {
                std::hint::spin_loop();
            }
        }
        self.record(self.event(EventKind::Compute, start, -1, -1, 0, 0))
    }

    /// Records a simulated POSIX I/O call (density-map fodder).
    pub fn posix(&self, kind: EventKind, bytes: u64, d: Duration) -> Result<()> {
        assert!(kind.is_posix(), "posix() takes a POSIX event kind");
        let start = self.now_ns();
        let e = Event {
            time_ns: start,
            duration_ns: d.as_nanos() as u64,
            kind,
            rank: self.vmpi.rank() as u32,
            peer: -1,
            tag: -1,
            comm: 0,
            bytes,
        };
        self.record(e)
    }

    /// Records a user phase marker.
    pub fn marker(&self, id: i32) -> Result<()> {
        let now = self.now_ns();
        let e = Event {
            time_ns: now,
            duration_ns: 0,
            kind: EventKind::Marker,
            rank: self.vmpi.rank() as u32,
            peer: -1,
            tag: id,
            comm: 0,
            bytes: 0,
        };
        self.record(e)
    }

    /// Records one self-monitoring metric sample as a Marker-class event:
    /// `tag` carries the registry metric id, `bytes` the sampled value and
    /// `duration_ns` an auxiliary payload (sample sequence number, or the
    /// sum for histogram samples). The session self-monitor uses this to
    /// stream the
    /// process's own metrics through the same VMPI stream machinery those
    /// metrics measure, so the analysis engine sees its own runtime as
    /// one more instrumented application.
    pub fn metric(&self, metric_id: u32, value: u64, aux: u64) -> Result<()> {
        let now = self.now_ns();
        let e = Event {
            time_ns: now,
            duration_ns: aux,
            kind: EventKind::Marker,
            rank: self.vmpi.rank() as u32,
            peer: -1,
            tag: metric_id as i32,
            comm: 0,
            bytes: value,
        };
        self.record(e)
    }

    /// Records `MPI_Finalize`, flushes the last pack and closes the stream.
    pub fn finalize(&self) -> Result<RecorderStats> {
        let now = self.now_ns();
        self.record(Event::basic(
            EventKind::Finalize,
            self.vmpi.rank() as u32,
            now,
            0,
        ))?;
        let rec = self.rec.lock().take().ok_or(VmpiError::StreamClosed)?;
        rec.finish()
    }
}
