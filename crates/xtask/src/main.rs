//! Repository maintenance tasks.
//!
//! ```text
//! cargo run -p xtask -- panic-scan
//! ```
//!
//! `panic-scan` is the second half of the panic lint gate: clippy's
//! `unwrap_used`/`expect_used` deny catches unwraps at compile time, this
//! scanner additionally flags `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` in library sources (`crates/*/src`, `src/`) outside
//! `#[cfg(test)]` blocks. A site is allow-listed by a `// PANIC-OK:
//! <reason>` marker on the same line; the allow-list may shrink but any
//! growth past the committed baseline fails the scan, so new panicking
//! sites need a deliberate baseline bump in this file.

use std::error::Error;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Committed size of the `PANIC-OK` allow-list. Adding a marker without
/// bumping this (with review) fails CI; removing markers is always fine.
const ALLOWED_BASELINE: usize = 1;

struct Site {
    file: PathBuf,
    line: usize,
    text: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("panic-scan") => match panic_scan() {
            Ok(code) => code,
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- panic-scan");
            ExitCode::from(2)
        }
    }
}

fn panic_scan() -> Result<ExitCode, Box<dyn Error>> {
    let root = workspace_root()?;
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        // The scanner must not flag its own pattern table.
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let patterns: Vec<String> = ["panic", "unreachable", "todo", "unimplemented"]
        .iter()
        .map(|m| format!("{m}!("))
        .collect();
    let marker = format!("// {}: ", "PANIC-OK");

    let mut unmarked = Vec::new();
    let mut marked = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        for (idx, line) in non_test_lines(&src) {
            let code = strip_comment(line);
            if !patterns.iter().any(|p| code.contains(p.as_str())) {
                continue;
            }
            let site = Site {
                file: file.strip_prefix(&root).unwrap_or(file).to_path_buf(),
                line: idx,
                text: line.trim().to_string(),
            };
            if line.contains(&marker) {
                marked.push(site);
            } else {
                unmarked.push(site);
            }
        }
    }

    for s in &unmarked {
        eprintln!(
            "unmarked panic site {}:{}: {}",
            s.file.display(),
            s.line,
            s.text
        );
    }
    if !unmarked.is_empty() {
        // The scanner never walks its own sources, so naming the marker
        // inline here cannot self-match.
        eprintln!(
            "\npanic-scan: {} unmarked site(s); return a typed error instead, or \
             justify with `// PANIC-OK: <reason>`",
            unmarked.len(),
        );
        return Ok(ExitCode::FAILURE);
    }
    if marked.len() > ALLOWED_BASELINE {
        for s in &marked {
            eprintln!("allow-listed {}:{}: {}", s.file.display(), s.line, s.text);
        }
        eprintln!(
            "\npanic-scan: allow-list grew to {} sites (baseline {}); shrink it or \
             bump ALLOWED_BASELINE in crates/xtask/src/main.rs with review",
            marked.len(),
            ALLOWED_BASELINE
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "panic-scan: OK — {} files, 0 unmarked sites, {}/{} allow-listed",
        files.len(),
        marked.len(),
        ALLOWED_BASELINE
    );
    Ok(ExitCode::SUCCESS)
}

fn workspace_root() -> Result<PathBuf, Box<dyn Error>> {
    let mut dir = std::env::current_dir()?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("not inside the workspace (no Cargo.toml + crates/ found)".into());
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), Box<dyn Error>> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` items and
/// outside doc comments.
fn non_test_lines(src: &str) -> Vec<(usize, &str)> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Skip the attributed item: scan forward to its first `{` and
            // on to the matching close brace. Brace characters inside
            // char or string literals (`'{'`, `"}"`) would skew the
            // depth count, so they are masked out first.
            let mut depth = 0i32;
            let mut started = false;
            while i < lines.len() {
                let counted = lines[i]
                    .replace("'{'", "")
                    .replace("'}'", "")
                    .replace("\"{\"", "")
                    .replace("\"}\"", "");
                for ch in counted.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                i += 1;
                if started && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        let t = line.trim_start();
        if !t.starts_with("///") && !t.starts_with("//!") {
            out.push((i + 1, line));
        }
        i += 1;
    }
    out
}

/// Drops a trailing `//` comment (good enough for scanning: the marker is
/// looked up on the raw line before this runs).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}
