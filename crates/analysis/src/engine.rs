//! The analysis engine: blackboard wiring of the stock knowledge sources.
//!
//! Data flow (Figures 4 and 5):
//!
//! ```text
//! raw block ──▶ KS dispatcher ──▶ <level>/pack ──▶ KS unpacker ──▶ <level>/events
//!                (creates the level's KSs                      ├──▶ KS profiler
//!                 on first sight of an app)                    ├──▶ KS topology
//!                                                              └──▶ KS timeline
//! ```
//!
//! Each instrumented application gets its own blackboard *level* (type ids
//! are hashed over the level name), so identical knowledge sources coexist
//! per application and one engine concurrently profiles any number of
//! programs into a single multi-chapter report.

use crate::density::DensityMap;
use crate::profiler::{Metric, MpiProfile};
use crate::timeline::{AdaptiveTimeline, Timeline};
use crate::topology::Topology;
use crate::trace_proxy::{Selection, TraceProxy};
use crate::waitstate::{WaitStateAnalysis, WaitStats};
use bytes::Bytes;
use opmr_blackboard::{type_id, Blackboard, BlackboardConfig, DataEntry, KnowledgeSource};
use opmr_events::{codec, EventKind, EventPack};
use opmr_metrics::{MetricsConfig, MetricsSeries};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Engine sizing.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Blackboard worker threads.
    pub workers: usize,
    /// Lock-striped job FIFOs.
    pub queues: usize,
    /// Temporal-map bins.
    pub timeline_bins: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queues: 8,
            timeline_bins: 64,
        }
    }
}

#[derive(Default)]
struct AppData {
    profile: MpiProfile,
    topology: Topology,
    timeline: Option<AdaptiveTimeline>,
    waitstate: Option<WaitStateAnalysis>,
    metrics: Option<MetricsSeries>,
    proxy: Option<TraceProxy>,
    packs: u64,
    wire_bytes: u64,
    decode_errors: u64,
}

struct AppSlot {
    app_id: u16,
    name: Mutex<String>,
    data: Mutex<AppData>,
    /// Completes once the level's stock KSs have been registered. `Once`
    /// (rather than a flag) so racing dispatchers *block* until the wiring
    /// is done instead of posting packs into a not-yet-sensitive level.
    wired: std::sync::Once,
}

/// The per-application chapter of a finished report.
pub struct AppReport {
    pub app_id: u16,
    pub name: String,
    pub ranks: u32,
    pub events: u64,
    pub packs: u64,
    /// Encoded event bytes received (the "trace volume that never touched
    /// the file system").
    pub wire_bytes: u64,
    pub decode_errors: u64,
    pub profile: MpiProfile,
    pub topology: Topology,
    pub timeline: Option<Timeline>,
    pub density: Vec<DensityMap>,
    /// Wait-state analysis results, when enabled.
    pub waitstate: Option<WaitStats>,
    /// Time-resolved standard-metrics series, when enabled.
    pub metrics: Option<MetricsSeries>,
    /// Selective-trace proxy outcome `(path, seen, written)`, when enabled.
    pub proxy: Option<(std::path::PathBuf, u64, u64)>,
}

/// A multi-application report (one chapter per instrumented program).
pub struct MultiReport {
    pub apps: Vec<AppReport>,
}

impl MultiReport {
    /// Extracts the merge-able partial aggregates of every application
    /// (what a distributed analyzer rank ships to the merge root).
    pub fn to_partials(&self) -> Vec<crate::wire::AppPartial> {
        self.apps
            .iter()
            .map(|a| crate::wire::AppPartial {
                app_id: a.app_id,
                packs: a.packs,
                wire_bytes: a.wire_bytes,
                decode_errors: a.decode_errors,
                profile: a.profile.clone(),
                topology: a.topology.clone(),
                waitstate: a.waitstate.clone(),
                metrics: a.metrics.clone(),
            })
            .collect()
    }

    /// Rebuilds a report by merging partial aggregates from several
    /// analyzer ranks (Section VI's distributed analysis). Temporal maps
    /// are a per-rank view and are not merged.
    pub fn from_partials(
        partial_sets: Vec<Vec<crate::wire::AppPartial>>,
        names: &HashMap<u16, String>,
    ) -> MultiReport {
        let mut merged: HashMap<u16, crate::wire::AppPartial> = HashMap::new();
        for set in partial_sets {
            for p in set {
                match merged.entry(p.app_id) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let into = e.get_mut();
                        into.packs += p.packs;
                        into.wire_bytes += p.wire_bytes;
                        into.decode_errors += p.decode_errors;
                        into.profile.merge(&p.profile);
                        into.topology.merge(&p.topology);
                        match (&mut into.waitstate, p.waitstate) {
                            (Some(a), Some(b)) => crate::wire::merge_waitstats(a, &b),
                            (slot @ None, Some(b)) => *slot = Some(b),
                            _ => {}
                        }
                        match (&mut into.metrics, p.metrics) {
                            (Some(a), Some(b)) => a.merge(&b),
                            (slot @ None, Some(b)) => *slot = Some(b),
                            _ => {}
                        }
                    }
                }
            }
        }
        let mut apps: Vec<crate::wire::AppPartial> = merged.into_values().collect();
        apps.sort_by_key(|p| p.app_id);
        MultiReport {
            apps: apps
                .into_iter()
                .map(|p| {
                    let density = stock_density_maps(&p.profile);
                    AppReport {
                        app_id: p.app_id,
                        name: names
                            .get(&p.app_id)
                            .cloned()
                            .unwrap_or_else(|| level_name(p.app_id)),
                        ranks: p.profile.ranks(),
                        events: p.profile.events(),
                        packs: p.packs,
                        wire_bytes: p.wire_bytes,
                        decode_errors: p.decode_errors,
                        profile: p.profile,
                        topology: p.topology,
                        timeline: None,
                        density,
                        waitstate: p.waitstate,
                        metrics: p.metrics,
                        proxy: None,
                    }
                })
                .collect(),
        }
    }
}

/// Hook invoked with the engine's current partial aggregates at every
/// publication boundary (see [`AnalysisEngine::attach_snapshot_publisher`]).
pub type SnapshotHook = Arc<dyn Fn(Vec<crate::wire::AppPartial>) + Send + Sync>;

#[derive(Default)]
struct EngineExtras {
    /// Register the wait-state KS on every level.
    waitstate: bool,
    /// Register the windowed standard-metrics KS on every level.
    metrics: Option<MetricsConfig>,
    /// Attach a selective-trace proxy per level, writing under this dir.
    proxy: Option<(std::path::PathBuf, Selection)>,
    /// Publish a report snapshot every N unpacked packs.
    publisher: Option<(u64, SnapshotHook)>,
}

/// The distributed analysis engine of one analyzer rank.
#[derive(Clone)]
pub struct AnalysisEngine {
    bb: Blackboard,
    apps: Arc<Mutex<HashMap<u16, Arc<AppSlot>>>>,
    cfg: EngineConfig,
    extras: Arc<Mutex<EngineExtras>>,
    /// Packs unpacked across every level; drives the publication cadence.
    pack_ticker: Arc<std::sync::atomic::AtomicU64>,
    /// Serializes snapshot-taking with hook delivery. Two dispatcher
    /// workers can hit a publication boundary concurrently; without the
    /// gate the later worker can snapshot *newer* aggregates yet deliver
    /// them to the store *before* the earlier worker's older snapshot,
    /// making per-version series (metrics window counts) non-monotone.
    publish_gate: Arc<Mutex<()>>,
}

fn level_name(app_id: u16) -> String {
    format!("app{app_id}")
}

/// Type id of the raw (undispatched) block entries.
fn raw_ty() -> u64 {
    type_id("engine", "raw_block")
}

impl AnalysisEngine {
    /// Builds the engine and registers the dispatcher KS.
    pub fn new(cfg: EngineConfig) -> AnalysisEngine {
        let bb = Blackboard::new(BlackboardConfig {
            queues: cfg.queues,
            workers: cfg.workers,
        });
        let engine = AnalysisEngine {
            bb,
            apps: Arc::new(Mutex::new(HashMap::new())),
            cfg,
            extras: Arc::new(Mutex::new(EngineExtras::default())),
            pack_ticker: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            publish_gate: Arc::new(Mutex::new(())),
        };
        engine.register_dispatcher();
        engine
    }

    /// Enables online wait-state analysis (Section VI: late-sender /
    /// late-receiver attribution) on every application level. Call before
    /// any packs arrive.
    pub fn enable_waitstate(&self) {
        self.extras.lock().waitstate = true;
    }

    /// Enables the time-resolved standard-metrics KS on every application
    /// level: the event stream is folded into per-window, per-rank integer
    /// cells (see `opmr_metrics`). Call before any packs arrive.
    pub fn enable_metrics(&self, cfg: MetricsConfig) {
        self.extras.lock().metrics = Some(cfg);
    }

    /// Attaches a selective-trace IO proxy: events surviving `selection`
    /// are re-encoded into `dir/app<N>_selected.opmr`. Call before any
    /// packs arrive.
    pub fn attach_trace_proxy(&self, dir: impl Into<std::path::PathBuf>, selection: Selection) {
        self.extras.lock().proxy = Some((dir.into(), selection));
    }

    /// Publishes a report snapshot every `every_packs` unpacked packs: the
    /// hook runs on the unpacking worker with the engine's current partial
    /// aggregates (the serve-plane window boundary). Call before any packs
    /// arrive.
    pub fn attach_snapshot_publisher(&self, every_packs: u64, hook: SnapshotHook) {
        self.extras.lock().publisher = Some((every_packs.max(1), hook));
    }

    /// The engine's current per-application partial aggregates, taken
    /// mid-run without stopping the workers. Each slot is sampled under its
    /// own lock, so a single application's aggregate is internally
    /// consistent; cross-application skew is bounded by in-flight jobs.
    pub fn snapshot_partials(&self) -> Vec<crate::wire::AppPartial> {
        let mut slots: Vec<Arc<AppSlot>> = self.apps.lock().values().cloned().collect();
        slots.sort_by_key(|s| s.app_id);
        slots
            .into_iter()
            .map(|slot| {
                let data = slot.data.lock();
                crate::wire::AppPartial {
                    app_id: slot.app_id,
                    packs: data.packs,
                    wire_bytes: data.wire_bytes,
                    decode_errors: data.decode_errors,
                    profile: data.profile.clone(),
                    topology: data.topology.clone(),
                    waitstate: data.waitstate.as_ref().map(|ws| ws.snapshot_stats()),
                    metrics: data.metrics.clone(),
                }
            })
            .collect()
    }

    /// Names an application (otherwise reports say "app\<N\>").
    pub fn set_app_name(&self, app_id: u16, name: &str) {
        let slot = self.slot(app_id);
        *slot.name.lock() = name.to_string();
    }

    /// Underlying blackboard (for custom knowledge sources).
    pub fn blackboard(&self) -> &Blackboard {
        &self.bb
    }

    /// Starts the worker pool.
    pub fn start(&self) {
        self.bb.start();
    }

    /// Posts one received stream block (exactly one encoded event pack).
    pub fn post_block(&self, block: Bytes) {
        self.bb.post(DataEntry::bytes(raw_ty(), block));
    }

    fn slot(&self, app_id: u16) -> Arc<AppSlot> {
        let mut apps = self.apps.lock();
        if let Some(slot) = apps.get(&app_id) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(AppSlot {
            app_id,
            name: Mutex::new(level_name(app_id)),
            data: Mutex::new(AppData {
                timeline: Some(AdaptiveTimeline::new(
                    self.cfg.timeline_bins,
                    EventKind::is_mpi,
                )),
                ..AppData::default()
            }),
            wired: std::sync::Once::new(),
        });
        apps.insert(app_id, Arc::clone(&slot));
        slot
    }

    fn register_dispatcher(&self) {
        let engine = self.clone();
        self.bb.register(KnowledgeSource::new(
            "dispatcher",
            vec![raw_ty()],
            move |bb, entries| {
                let Some(bytes) = entries[0].payload().as_bytes() else {
                    return;
                };
                let mut view: &[u8] = bytes;
                // Any known wire version routes — the dispatcher only
                // needs the app id; the unpacker picks the event codec.
                let Ok((header, _version)) = codec::decode_header_any(&mut view) else {
                    // Unparseable block: account it to app 0's error count.
                    engine.slot(0).data.lock().decode_errors += 1;
                    return;
                };
                engine.ensure_level(header.app_id);
                let level = level_name(header.app_id);
                bb.post(DataEntry::bytes(type_id(&level, "pack"), bytes.clone()));
            },
        ));
    }

    /// Registers the per-level stock KSs once per application
    /// (the multi-level blackboard of Figure 5).
    fn ensure_level(&self, app_id: u16) {
        let slot = self.slot(app_id);
        // Exactly-once wiring, even when two dispatcher jobs race on the
        // first packs of a new application. `call_once` blocks the losers
        // until the winner has registered every KS: with a plain flag a
        // losing dispatcher could post its pack before the level was
        // sensitive to it, and the blackboard silently dropped the entry.
        slot.wired.call_once(|| self.wire_level(&slot, app_id));
    }

    fn wire_level(&self, slot: &Arc<AppSlot>, app_id: u16) {
        let level = level_name(app_id);
        let ty_pack = type_id(&level, "pack");
        let ty_events = type_id(&level, "events");
        // Unpacker: pack bytes → decoded EventPack entry. Also the
        // publication clock: every N packs (across all levels) the snapshot
        // hook fires with the engine's current aggregates. The hook runs
        // with no slot lock held (snapshot_partials re-locks each slot).
        let uslot = Arc::clone(slot);
        let uengine = self.clone();
        let publisher = self.extras.lock().publisher.clone();
        let ticker = Arc::clone(&self.pack_ticker);
        let unpacker = KnowledgeSource::new(
            &format!("unpacker/{level}"),
            vec![ty_pack],
            move |bb, entries| {
                let Some(bytes) = entries[0].payload().as_bytes() else {
                    return;
                };
                match EventPack::decode(bytes) {
                    Ok(pack) => {
                        {
                            let mut data = uslot.data.lock();
                            data.packs += 1;
                            data.wire_bytes += bytes.len() as u64;
                        }
                        bb.post(DataEntry::value(ty_events, pack));
                        if let Some((every, hook)) = &publisher {
                            let t = ticker.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                            if t.is_multiple_of(*every) {
                                // Snapshot and publish under the gate:
                                // aggregates only grow, so serializing
                                // take-then-deliver makes successive store
                                // versions monotone (in particular the
                                // metrics window counts) even when two
                                // workers hit the boundary at once.
                                let _publish = uengine.publish_gate.lock();
                                hook(uengine.snapshot_partials());
                            }
                        }
                    }
                    Err(_) => {
                        uslot.data.lock().decode_errors += 1;
                    }
                }
            },
        );
        // Profiler: events → per-call aggregates.
        let pslot = Arc::clone(slot);
        let profiler = KnowledgeSource::new(
            &format!("profiler/{level}"),
            vec![ty_events],
            move |_bb, entries| {
                if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                    pslot.data.lock().profile.add_all(&pack.events);
                }
            },
        );
        // Topology: events → communication matrix.
        let tslot = Arc::clone(slot);
        let topology = KnowledgeSource::new(
            &format!("topology/{level}"),
            vec![ty_events],
            move |_bb, entries| {
                if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                    tslot.data.lock().topology.add_all(&pack.events);
                }
            },
        );
        // Timeline: events → temporal map.
        let lslot = Arc::clone(slot);
        let timeline = KnowledgeSource::new(
            &format!("timeline/{level}"),
            vec![ty_events],
            move |_bb, entries| {
                if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                    let mut data = lslot.data.lock();
                    if let Some(tl) = data.timeline.as_mut() {
                        for e in &pack.events {
                            tl.add(e);
                        }
                    }
                }
            },
        );

        self.bb.register(unpacker);
        self.bb.register(profiler);
        self.bb.register(topology);
        self.bb.register(timeline);

        let extras = self.extras.lock();
        if extras.waitstate {
            slot.data.lock().waitstate = Some(WaitStateAnalysis::new());
            let wslot = Arc::clone(slot);
            self.bb.register(KnowledgeSource::new(
                &format!("waitstate/{level}"),
                vec![ty_events],
                move |_bb, entries| {
                    if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                        let mut data = wslot.data.lock();
                        if let Some(ws) = data.waitstate.as_mut() {
                            for e in &pack.events {
                                ws.add(e);
                            }
                        }
                    }
                },
            ));
        }
        if let Some(mcfg) = extras.metrics {
            slot.data.lock().metrics = Some(MetricsSeries::new(mcfg.window_ns));
            let mslot = Arc::clone(slot);
            self.bb.register(KnowledgeSource::new(
                &format!("metrics/{level}"),
                vec![ty_events],
                move |_bb, entries| {
                    if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                        let mut data = mslot.data.lock();
                        if let Some(m) = data.metrics.as_mut() {
                            m.fold_pack(&pack.events);
                        }
                    }
                },
            ));
        }
        if let Some((dir, selection)) = extras.proxy.clone() {
            let path = dir.join(format!("app{app_id}_selected.opmr"));
            if let Ok(proxy) = TraceProxy::create(&path, selection) {
                let handle = proxy.handle();
                slot.data.lock().proxy = Some(proxy);
                self.bb.register(KnowledgeSource::new(
                    &format!("trace-proxy/{level}"),
                    vec![ty_events],
                    move |_bb, entries| {
                        if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                            handle.offer(pack.header.app_id, &pack.events);
                        }
                    },
                ));
            }
        }
    }

    /// Waits for quiescence, stops the workers and assembles the report.
    pub fn finish(self) -> MultiReport {
        self.bb.stop();
        let mut apps: Vec<Arc<AppSlot>> = self.apps.lock().values().cloned().collect();
        apps.sort_by_key(|s| s.app_id);
        let reports = apps
            .into_iter()
            .map(|slot| {
                let name = slot.name.lock().clone();
                let mut data = slot.data.lock();
                let density = stock_density_maps(&data.profile);
                let waitstate = data.waitstate.as_mut().map(|ws| ws.finish().clone());
                let metrics = data.metrics.clone();
                let proxy = data.proxy.take().map(|p| {
                    let path = p.path().to_path_buf();
                    let (seen, written) = p.finish(slot.app_id).unwrap_or((0, 0));
                    (path, seen, written)
                });
                AppReport {
                    app_id: slot.app_id,
                    name,
                    ranks: data.profile.ranks(),
                    events: data.profile.events(),
                    packs: data.packs,
                    wire_bytes: data.wire_bytes,
                    decode_errors: data.decode_errors,
                    profile: data.profile.clone(),
                    topology: data.topology.clone(),
                    timeline: data.timeline.as_ref().map(|t| t.snapshot()),
                    density,
                    waitstate,
                    metrics,
                    proxy,
                }
            })
            .collect();
        MultiReport { apps: reports }
    }
}

/// The report's standard density-map set (Figure 18's kinds).
fn stock_density_maps(profile: &MpiProfile) -> Vec<DensityMap> {
    let mut maps = Vec::new();
    if profile.ranks() == 0 {
        return maps;
    }
    let mk = |title: &str, values: Vec<f64>| DensityMap::new(title, values);
    for (kind, metric, title) in [
        (EventKind::Send, Metric::Hits, "MPI_Send hits"),
        (EventKind::Send, Metric::Bytes, "MPI_Send total size"),
        (EventKind::Isend, Metric::Hits, "MPI_Isend hits"),
        (EventKind::Wait, Metric::TimeNs, "MPI_Wait time"),
    ] {
        let v = profile.rank_metric(kind, metric);
        if v.iter().any(|&x| x > 0.0) {
            maps.push(mk(title, v));
        }
    }
    let coll = profile.rank_class_time(|k| k.is_collective());
    if coll.iter().any(|&x| x > 0.0) {
        maps.push(mk("collective time", coll));
    }
    let p2p_bytes = {
        let mut v = vec![0.0; profile.ranks() as usize];
        for kind in [EventKind::Send, EventKind::Isend, EventKind::Sendrecv] {
            for (i, x) in profile.rank_metric(kind, Metric::Bytes).iter().enumerate() {
                v[i] += x;
            }
        }
        v
    };
    if p2p_bytes.iter().any(|&x| x > 0.0) {
        maps.push(mk("point-to-point total size", p2p_bytes));
    }
    let posix = profile.rank_class_time(|k| k.is_posix());
    if posix.iter().any(|&x| x > 0.0) {
        maps.push(mk("POSIX time", posix));
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::Event;

    fn pack(app: u16, rank: u32, seq: u32, events: Vec<Event>) -> Bytes {
        EventPack::new(app, rank, seq, events).encode()
    }

    fn send(rank: u32, peer: i32, bytes: u64) -> Event {
        Event {
            time_ns: 1000 * rank as u64,
            duration_ns: 10,
            kind: EventKind::Send,
            rank,
            peer,
            tag: 0,
            comm: 0,
            bytes,
        }
    }

    #[test]
    fn single_app_pipeline_end_to_end() {
        let engine = AnalysisEngine::new(EngineConfig {
            workers: 2,
            ..Default::default()
        });
        engine.set_app_name(3, "cg");
        engine.start();
        for rank in 0..4u32 {
            engine.post_block(pack(
                3,
                rank,
                0,
                vec![send(rank, ((rank + 1) % 4) as i32, 64)],
            ));
        }
        let report = engine.finish();
        assert_eq!(report.apps.len(), 1);
        let app = &report.apps[0];
        assert_eq!(app.app_id, 3);
        assert_eq!(app.name, "cg");
        assert_eq!(app.ranks, 4);
        assert_eq!(app.events, 4);
        assert_eq!(app.packs, 4);
        assert_eq!(app.topology.edge_count(), 4);
        assert!(app.timeline.is_some());
        assert!(!app.density.is_empty());
        assert_eq!(app.decode_errors, 0);
    }

    #[test]
    fn multi_app_levels_stay_separate() {
        let engine = AnalysisEngine::new(EngineConfig::default());
        engine.start();
        engine.post_block(pack(1, 0, 0, vec![send(0, 1, 10)]));
        engine.post_block(pack(2, 0, 0, vec![send(0, 1, 20), send(0, 2, 30)]));
        let report = engine.finish();
        assert_eq!(report.apps.len(), 2);
        assert_eq!(report.apps[0].app_id, 1);
        assert_eq!(report.apps[0].events, 1);
        assert_eq!(report.apps[1].app_id, 2);
        assert_eq!(report.apps[1].events, 2);
        assert_eq!(
            report.apps[1].profile.total_mpi_bytes(),
            50,
            "apps must not leak into each other"
        );
    }

    #[test]
    fn corrupt_blocks_are_counted_not_fatal() {
        let engine = AnalysisEngine::new(EngineConfig::default());
        engine.start();
        engine.post_block(Bytes::from_static(b"not a pack at all"));
        engine.post_block(pack(1, 0, 0, vec![send(0, 1, 10)]));
        let report = engine.finish();
        let errors: u64 = report.apps.iter().map(|a| a.decode_errors).sum();
        assert_eq!(errors, 1);
        assert!(report.apps.iter().any(|a| a.events == 1));
    }

    #[test]
    fn many_packs_under_parallel_workers() {
        let engine = AnalysisEngine::new(EngineConfig {
            workers: 4,
            queues: 8,
            timeline_bins: 16,
        });
        engine.start();
        for seq in 0..200u32 {
            for rank in 0..8u32 {
                engine.post_block(pack(
                    0,
                    rank,
                    seq,
                    vec![send(rank, ((rank + 1) % 8) as i32, 128); 10],
                ));
            }
        }
        let report = engine.finish();
        let app = &report.apps[0];
        assert_eq!(app.events, 200 * 8 * 10);
        assert_eq!(app.packs, 1600);
        assert_eq!(app.profile.kind(EventKind::Send).unwrap().hits, 16_000);
        assert_eq!(app.topology.edge_count(), 8);
    }

    #[test]
    fn metrics_series_folds_when_enabled_and_matches_offline() {
        let engine = AnalysisEngine::new(EngineConfig::default());
        engine.enable_metrics(MetricsConfig { window_ns: 1000 });
        engine.start();
        let mut offline = MetricsSeries::new(1000);
        for rank in 0..4u32 {
            let e = send(rank, ((rank + 1) % 4) as i32, 64);
            offline.add(&e);
            engine.post_block(pack(0, rank, 0, vec![e]));
        }
        let report = engine.finish();
        let m = report.apps[0]
            .metrics
            .as_ref()
            .expect("metrics enabled but absent from report");
        assert_eq!(m.window_ns(), 1000);
        assert_eq!(
            *m, offline,
            "online fold must equal offline whole-trace fold"
        );
        assert!(report.apps[0].waitstate.is_none(), "waitstate not enabled");
    }

    #[test]
    fn first_packs_of_a_new_level_are_never_dropped() {
        // Regression for the prop_system flake: dispatcher jobs racing on
        // the first packs of a new application could post into a level
        // whose knowledge sources were still being registered, and the
        // blackboard silently dropped those entries. The `Once`-based
        // wiring blocks the racing dispatchers until the level is live.
        for round in 0..25u16 {
            let engine = AnalysisEngine::new(EngineConfig {
                workers: 4,
                queues: 8,
                timeline_bins: 16,
            });
            engine.start();
            for rank in 0..8u32 {
                engine.post_block(pack(round, rank, 0, vec![send(rank, 0, 8)]));
            }
            let report = engine.finish();
            assert_eq!(report.apps.len(), 1, "round {round}");
            assert_eq!(report.apps[0].packs, 8, "round {round}: lost first packs");
            assert_eq!(report.apps[0].events, 8, "round {round}");
        }
    }
}
