//! Profiling-report generation.
//!
//! The paper's analyzer emits "a latex document of 20 to 70 pages …
//! structured with one chapter per instrumented application". This module
//! renders a [`MultiReport`] the same way — as LaTeX — and additionally as
//! Markdown for terminals and CI.

use crate::engine::{AppReport, MultiReport};
use crate::topology::WeightKind;
use std::fmt::Write as _;

fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.3} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} µs", v / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Order-sensitive FNV-1a digest of the report's *timing- and
/// wire-independent* content: per-`(rank, kind)` hit and byte counts,
/// topology edge weights, decode-error totals — everything except
/// durations (which necessarily differ between two runs) and framing
/// artifacts (pack and wire-byte totals move with the negotiated pack
/// encoding and compression, not with the workload). Two runs of the
/// same deterministic workload produce the same digest regardless of
/// scheduling, transport backend, codec, or wall time, so this is the
/// acceptance check for "the analysis output is byte-identical".
pub fn stable_digest(report: &MultiReport) -> u64 {
    stable_digest_filtered(report, |_| true)
}

/// [`stable_digest`] over the subset of applications `keep` accepts —
/// e.g. excluding a self-monitoring chapter, whose sample counts are
/// inherently run-specific.
pub fn stable_digest_filtered(report: &MultiReport, keep: impl Fn(&AppReport) -> bool) -> u64 {
    use crate::profiler::MpiProfile;
    use crate::topology::Topology;
    use crate::wire::{encode_partials, AppPartial};
    let mut apps: Vec<&AppReport> = report.apps.iter().filter(|a| keep(a)).collect();
    apps.sort_by_key(|a| a.app_id);
    let parts: Vec<AppPartial> = apps
        .into_iter()
        .map(|a| {
            let mut profile = MpiProfile::new();
            for kind in a.profile.kinds() {
                for rank in 0..a.profile.ranks() {
                    if let Some(c) = a.profile.rank_kind(rank, kind) {
                        profile.absorb_stats(rank, kind, c.hits, 0, c.bytes, 0, 0);
                    }
                }
            }
            let mut topology = Topology::new();
            for ((s, d), w) in a.topology.sorted_edges() {
                topology.add_weighted(s, d, w.hits, w.bytes, 0);
            }
            AppPartial {
                app_id: a.app_id,
                // Pack and wire-byte totals are framing artifacts: the
                // same workload legitimately yields different counts
                // under delta/varint packing or block compression.
                packs: 0,
                wire_bytes: 0,
                decode_errors: a.decode_errors,
                profile,
                topology,
                // Timing-dependent planes stay out of the stable digest.
                waitstate: None,
                metrics: None,
            }
        })
        .collect();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in encode_partials(&parts).iter() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the whole report as Markdown.
pub fn to_markdown(report: &MultiReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Online profiling report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} application(s) profiled concurrently.\n",
        report.apps.len()
    );
    for app in &report.apps {
        app_markdown(&mut out, app);
    }
    out
}

fn app_markdown(out: &mut String, app: &AppReport) {
    let _ = writeln!(out, "## Application `{}` (id {})", app.name, app.app_id);
    let _ = writeln!(out);
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| ranks | {} |", app.ranks);
    let _ = writeln!(out, "| events | {} |", app.events);
    let _ = writeln!(out, "| event packs | {} |", app.packs);
    let _ = writeln!(out, "| streamed volume | {} |", fmt_bytes(app.wire_bytes));
    let _ = writeln!(out, "| decode errors | {} |", app.decode_errors);
    let _ = writeln!(
        out,
        "| instrumented span | {} |",
        fmt_ns(app.profile.span_ns())
    );
    let _ = writeln!(
        out,
        "| total MPI time | {} |",
        fmt_ns(app.profile.total_mpi_ns())
    );
    let _ = writeln!(
        out,
        "| total MPI volume | {} |",
        fmt_bytes(app.profile.total_mpi_bytes())
    );
    let _ = writeln!(out);

    // Per-call profile table.
    let _ = writeln!(out, "### MPI interface profile");
    let _ = writeln!(out);
    let _ = writeln!(out, "| call | hits | total time | mean | total size |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for kind in app.profile.kinds() {
        let Some(s) = app.profile.kind(kind) else {
            continue;
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            kind.name(),
            s.hits,
            fmt_ns(s.time_ns),
            fmt_ns(s.mean_ns() as u64),
            fmt_bytes(s.bytes),
        );
    }
    let _ = writeln!(out);

    // Topology summary.
    let _ = writeln!(out, "### Topology");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} directed edge(s), mean out-degree {:.2}, {}symmetric in hits.",
        app.topology.edge_count(),
        app.topology.mean_degree(),
        if app.topology.is_symmetric_in_hits() {
            ""
        } else {
            "NOT "
        }
    );
    let detected = crate::patterns::classify(&app.topology);
    let _ = writeln!(
        out,
        "Detected pattern: {} (coverage {:.0}%).",
        detected.pattern.describe(),
        detected.coverage * 100.0
    );
    let _ = writeln!(out);

    // Density maps.
    if !app.density.is_empty() {
        let _ = writeln!(out, "### Density maps");
        let _ = writeln!(out);
        let _ = writeln!(out, "| map | min | max | mean | imbalance (cv) |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for map in &app.density {
            let s = map.stats();
            let _ = writeln!(
                out,
                "| {} | {:.3e} | {:.3e} | {:.3e} | {:.3} |",
                map.title, s.min, s.max, s.mean, s.cv
            );
        }
        let _ = writeln!(out);
        for map in &app.density {
            let _ = writeln!(out, "```text");
            out.push_str(&map.ascii());
            let _ = writeln!(out, "```");
            let _ = writeln!(out);
        }
    }

    // Wait-state analysis (skipped when no point-to-point traffic fed it).
    if let Some(ws) = app
        .waitstate
        .as_ref()
        .filter(|w| w.matched + w.unmatched > 0)
    {
        let _ = writeln!(out, "### Wait states");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} transfers matched ({} unmatched); late-sender time {}, late-receiver time {}.",
            ws.matched,
            ws.unmatched,
            fmt_ns(ws.total_late_sender_ns),
            fmt_ns(ws.total_late_receiver_ns),
        );
        let culprits = ws.worst_culprits(5);
        if !culprits.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "| late-sender culprit rank | wait caused |");
            let _ = writeln!(out, "|---|---|");
            for (rank, ns) in culprits {
                let _ = writeln!(out, "| {rank} | {} |", fmt_ns(ns));
            }
        }
        let _ = writeln!(out);
    }

    // Time-resolved standard metrics (windowed series).
    if let Some(m) = app.metrics.as_ref().filter(|m| !m.is_empty()) {
        let _ = writeln!(out, "### Time-resolved metrics");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} window(s) of {} over {} rank(s).",
            m.len(),
            fmt_ns(m.window_ns()),
            m.ranks()
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| window | LB | comm | ser | xfer | wait | bytes |");
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        let rows = m.window_metrics();
        // Evenly sample long series so the chapter stays one screen tall.
        let stride = rows.len().div_ceil(12).max(1);
        for wm in rows.iter().step_by(stride) {
            let _ = writeln!(
                out,
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {} |",
                wm.window,
                wm.lb_efficiency,
                wm.comm_efficiency,
                wm.serialization_fraction,
                wm.transfer_fraction,
                wm.wait_fraction,
                fmt_bytes(wm.bytes),
            );
        }
        let _ = writeln!(out);
    }

    // Selective-trace proxy.
    if let Some((path, seen, written)) = &app.proxy {
        let _ = writeln!(
            out,
            "### Selective trace\n\n{written} of {seen} events selected into `{}`.\n",
            path.display()
        );
    }

    // Temporal map.
    if let Some(tl) = &app.timeline {
        let _ = writeln!(out, "### Temporal map (MPI activity per rank)");
        let _ = writeln!(out);
        let _ = writeln!(out, "```text");
        out.push_str(&tl.ascii());
        let _ = writeln!(out, "```");
        let _ = writeln!(out);
    }
}

/// Renders the whole report as LaTeX (one chapter per application,
/// mirroring the paper's output format).
pub fn to_latex(report: &MultiReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\\documentclass{{report}}");
    let _ = writeln!(out, "\\usepackage{{graphicx,longtable}}");
    let _ = writeln!(out, "\\title{{Online profiling report}}");
    let _ = writeln!(out, "\\begin{{document}}");
    let _ = writeln!(out, "\\maketitle");
    for app in &report.apps {
        let _ = writeln!(out, "\\chapter{{Application {}}}", tex_escape(&app.name));
        let _ = writeln!(
            out,
            "{} ranks, {} events in {} packs ({}).",
            app.ranks,
            app.events,
            app.packs,
            tex_escape(&fmt_bytes(app.wire_bytes))
        );
        let _ = writeln!(out, "\\section{{MPI interface profile}}");
        let _ = writeln!(out, "\\begin{{longtable}}{{lrrrr}}");
        let _ = writeln!(out, "call & hits & time & mean & size \\\\ \\hline");
        for kind in app.profile.kinds() {
            let Some(s) = app.profile.kind(kind) else {
                continue;
            };
            let _ = writeln!(
                out,
                "{} & {} & {} & {} & {} \\\\",
                tex_escape(kind.name()),
                s.hits,
                tex_escape(&fmt_ns(s.time_ns)),
                tex_escape(&fmt_ns(s.mean_ns() as u64)),
                tex_escape(&fmt_bytes(s.bytes)),
            );
        }
        let _ = writeln!(out, "\\end{{longtable}}");
        let _ = writeln!(out, "\\section{{Topology}}");
        let _ = writeln!(
            out,
            "{} directed edges, mean out-degree {:.2}.",
            app.topology.edge_count(),
            app.topology.mean_degree()
        );
        if !app.density.is_empty() {
            let _ = writeln!(out, "\\section{{Density maps}}");
            let _ = writeln!(out, "\\begin{{longtable}}{{lrrrr}}");
            let _ = writeln!(out, "map & min & max & mean & cv \\\\ \\hline");
            for map in &app.density {
                let s = map.stats();
                let _ = writeln!(
                    out,
                    "{} & {:.3e} & {:.3e} & {:.3e} & {:.3} \\\\",
                    tex_escape(&map.title),
                    s.min,
                    s.max,
                    s.mean,
                    s.cv
                );
            }
            let _ = writeln!(out, "\\end{{longtable}}");
        }
    }
    let _ = writeln!(out, "\\end{{document}}");
    out
}

/// Writes the report's artifacts (markdown, latex, DOT graphs, matrices,
/// PGM density maps) under a directory. Returns the written paths.
pub fn write_artifacts(
    report: &MultiReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    let mut put = |name: String, data: Vec<u8>| -> std::io::Result<()> {
        let path = dir.join(name);
        std::fs::write(&path, data)?;
        paths.push(path);
        Ok(())
    };
    put("report.md".into(), to_markdown(report).into_bytes())?;
    put("report.tex".into(), to_latex(report).into_bytes())?;
    for app in &report.apps {
        for kind in [WeightKind::Hits, WeightKind::Bytes, WeightKind::TimeNs] {
            let tag = match kind {
                WeightKind::Hits => "hits",
                WeightKind::Bytes => "size",
                WeightKind::TimeNs => "time",
            };
            put(
                format!("{}_topology_{tag}.dot", app.name),
                app.topology.to_dot(&app.name, kind).into_bytes(),
            )?;
        }
        if app.topology.ranks() <= 512 {
            put(
                format!("{}_matrix_size.txt", app.name),
                app.topology.matrix_text(WeightKind::Bytes).into_bytes(),
            )?;
        }
        for (i, map) in app.density.iter().enumerate() {
            put(format!("{}_density_{i}.pgm", app.name), map.to_pgm(8))?;
        }
    }
    Ok(paths)
}

fn tex_escape(s: &str) -> String {
    s.replace('\\', "\\textbackslash{}")
        .replace('_', "\\_")
        .replace('%', "\\%")
        .replace('&', "\\&")
        .replace('#', "\\#")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AnalysisEngine, EngineConfig};
    use opmr_events::{Event, EventKind, EventPack};

    fn sample_report() -> MultiReport {
        let engine = AnalysisEngine::new(EngineConfig::default());
        engine.set_app_name(0, "bt");
        engine.set_app_name(1, "euler_mhd");
        engine.start();
        for rank in 0..4u32 {
            let events = vec![
                Event {
                    time_ns: 10,
                    duration_ns: 100,
                    kind: EventKind::Send,
                    rank,
                    peer: ((rank + 1) % 4) as i32,
                    tag: 1,
                    comm: 0,
                    bytes: 256,
                },
                Event::basic(EventKind::Barrier, rank, 200, 50),
            ];
            engine.post_block(EventPack::new(0, rank, 0, events.clone()).encode());
            engine.post_block(EventPack::new(1, rank, 0, events).encode());
        }
        engine.finish()
    }

    #[test]
    fn markdown_has_one_chapter_per_app() {
        let md = to_markdown(&sample_report());
        assert!(md.contains("## Application `bt`"));
        assert!(md.contains("## Application `euler_mhd`"));
        assert!(md.contains("MPI_Send"));
        assert!(md.contains("MPI_Barrier"));
        assert!(md.contains("Density maps"));
    }

    #[test]
    fn latex_is_structurally_valid() {
        let tex = to_latex(&sample_report());
        assert!(tex.starts_with("\\documentclass"));
        assert_eq!(tex.matches("\\chapter{").count(), 2);
        assert!(tex.contains("euler\\_mhd"), "underscores escaped");
        assert!(tex.trim_end().ends_with("\\end{document}"));
        assert_eq!(
            tex.matches("\\begin{longtable}").count(),
            tex.matches("\\end{longtable}").count()
        );
    }

    #[test]
    fn artifacts_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("opmr_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_artifacts(&sample_report(), &dir).unwrap();
        assert!(paths.iter().any(|p| p.ends_with("report.md")));
        assert!(paths.iter().any(|p| p.ends_with("report.tex")));
        assert!(paths
            .iter()
            .any(|p| p.to_string_lossy().contains("topology_size.dot")));
        assert!(paths
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == "pgm")));
        for p in &paths {
            assert!(p.exists());
            assert!(std::fs::metadata(p).unwrap().len() > 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 30), "3.00 GiB");
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200 s");
    }
}
