//! Density maps: per-rank spatial metric maps (Figure 18).
//!
//! A density map assigns one scalar to every application rank (hits, time
//! or total size of some call class) and renders the ranks as a 2-D grid —
//! making spatial imbalances (LU neighbour gradients, BT symmetry bands)
//! visible at a glance. Renderings: binary PGM images (what the paper's
//! LaTeX report embeds) and ASCII heat maps (for terminals and tests).

/// A per-rank scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    values: Vec<f64>,
    /// Label, e.g. "MPI_Send hits".
    pub title: String,
}

/// Summary statistics of a map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    /// Coefficient of variation (σ/µ) — the imbalance indicator.
    pub cv: f64,
}

impl DensityMap {
    /// Wraps per-rank values.
    pub fn new(title: &str, values: Vec<f64>) -> DensityMap {
        DensityMap {
            values,
            title: title.to_string(),
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Summary statistics.
    pub fn stats(&self) -> DensityStats {
        if self.values.is_empty() {
            return DensityStats {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                cv: 0.0,
            };
        }
        let n = self.values.len() as f64;
        let min = self.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = self.values.iter().sum::<f64>() / n;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        // σ/|µ| so the imbalance indicator stays non-negative even for
        // signed metrics.
        let cv = if mean.abs() < f64::EPSILON {
            0.0
        } else {
            var.sqrt() / mean.abs()
        };
        DensityStats { min, max, mean, cv }
    }

    /// Grid layout: near-square `(cols, rows)` with `cols*rows >= len`.
    pub fn grid_shape(&self) -> (usize, usize) {
        let n = self.len();
        if n == 0 {
            return (0, 0);
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        (cols, rows)
    }

    fn normalized(&self) -> Vec<f64> {
        let st = self.stats();
        let span = (st.max - st.min).max(f64::EPSILON);
        self.values.iter().map(|v| (v - st.min) / span).collect()
    }

    /// Binary PGM (P5) image: one pixel per rank, row-major grid layout,
    /// scaled `pixel_size`× for visibility. Missing cells are black.
    pub fn to_pgm(&self, pixel_size: usize) -> Vec<u8> {
        let (cols, rows) = self.grid_shape();
        let ps = pixel_size.max(1);
        let (w, h) = (cols * ps, rows * ps);
        let norm = self.normalized();
        let mut out = format!("P5\n# {}\n{w} {h}\n255\n", self.title).into_bytes();
        let mut pixels = vec![0u8; w * h];
        for (i, v) in norm.iter().enumerate() {
            let (cx, cy) = (i % cols, i / cols);
            let shade = (v * 255.0).round() as u8;
            for dy in 0..ps {
                for dx in 0..ps {
                    pixels[(cy * ps + dy) * w + cx * ps + dx] = shade;
                }
            }
        }
        out.extend_from_slice(&pixels);
        out
    }

    /// ASCII heat map using a 10-step ramp.
    pub fn ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (cols, _rows) = self.grid_shape();
        if cols == 0 {
            return String::new();
        }
        let norm = self.normalized();
        let mut out = format!(
            "{} (min={:.3e} max={:.3e})\n",
            self.title,
            self.stats().min,
            self.stats().max
        );
        for (i, v) in norm.iter().enumerate() {
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
            if (i + 1) % cols == 0 {
                out.push('\n');
            }
        }
        if !self.len().is_multiple_of(cols) {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_values() {
        let m = DensityMap::new("t", vec![1.0, 2.0, 3.0, 4.0]);
        let s = m.stats();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.cv - (1.25f64.sqrt() / 2.5)).abs() < 1e-12);
    }

    #[test]
    fn uniform_map_has_zero_cv() {
        let m = DensityMap::new("t", vec![5.0; 16]);
        assert_eq!(m.stats().cv, 0.0);
    }

    #[test]
    fn grid_shape_is_near_square() {
        assert_eq!(DensityMap::new("t", vec![0.0; 16]).grid_shape(), (4, 4));
        assert_eq!(DensityMap::new("t", vec![0.0; 12]).grid_shape(), (4, 3));
        assert_eq!(DensityMap::new("t", vec![0.0; 5]).grid_shape(), (3, 2));
        assert_eq!(DensityMap::new("t", vec![]).grid_shape(), (0, 0));
    }

    #[test]
    fn pgm_header_and_size() {
        let m = DensityMap::new("send hits", vec![0.0, 1.0, 2.0, 3.0]);
        let img = m.to_pgm(3);
        let text = String::from_utf8_lossy(&img[..30]);
        assert!(text.starts_with("P5\n"));
        assert!(text.contains("6 6"));
        // Header + 36 pixels.
        let header_end = img.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert_eq!(img.len() - header_end, 36);
        // Max value renders white, min black.
        assert_eq!(*img.last().unwrap(), 255);
        assert_eq!(img[header_end], 0);
    }

    #[test]
    fn ascii_rows_match_grid() {
        let m = DensityMap::new("x", (0..12).map(|i| i as f64).collect());
        let a = m.ascii();
        let rows: Vec<&str> = a.lines().skip(1).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 4));
        // Monotone ramp: last cell is the densest glyph.
        assert!(rows[2].ends_with('@'));
    }

    #[test]
    fn empty_map_renders_empty() {
        let m = DensityMap::new("none", vec![]);
        assert!(m.ascii().is_empty());
        assert!(m.is_empty());
    }
}
