//! Wait-state analysis: matching sends with receives to attribute blocking
//! time (the paper's Section VI future work — "we are working on a
//! wait-state analysis which will take advantage of a distributed
//! blackboard").
//!
//! Because *all* events of an application reach the analysis engine, the
//! classic Scalasca-style patterns can be detected online without a trace:
//!
//! * **Late sender** — a receive posted before its matching send started:
//!   the receiver's wait is attributable to the sender
//!   (`send.start − recv.start`);
//! * **Late receiver** — a (synchronous) send that had to wait for the
//!   receive to be posted (`recv.start − send.start` charged to the
//!   receiver side).
//!
//! Matching follows MPI ordering: per `(sender, receiver)` pair, the k-th
//! send matches the k-th receive (the generators use one tag per channel,
//! so tag-aware refinement is unnecessary; ANY_SOURCE receives carry their
//! matched source in the event record already).

use opmr_events::{Event, EventKind};
use std::collections::{HashMap, VecDeque};

/// One matched transfer with its wait attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedTransfer {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    /// Receiver-side blocking attributable to the sender, ns.
    pub late_sender_ns: u64,
    /// Sender-side blocking attributable to the receiver, ns.
    pub late_receiver_ns: u64,
}

/// Aggregated wait-state statistics.
///
/// Besides the aggregate counters, `finish` preserves the *dangling halves*
/// (sends with no receive seen, and vice versa). In distributed analysis the
/// two halves of one transfer are usually recorded by different writer ranks
/// and can land on different analyzer ranks; shipping the halves with the
/// partial lets the merge root complete those matches instead of counting
/// each half as unmatched.
#[derive(Debug, Clone, Default)]
pub struct WaitStats {
    /// Matched transfers.
    pub matched: u64,
    /// Sends still waiting for a receive (or vice versa) at `finish`.
    pub unmatched: u64,
    /// Dangling send halves at `finish`, `(src, dst, send)`, channel-sorted.
    pub pending_sends: Vec<(u32, u32, SendSide)>,
    /// Dangling receive halves at `finish`, `(src, dst, recv)`,
    /// channel-sorted.
    pub pending_recvs: Vec<(u32, u32, RecvSide)>,
    /// Per-rank late-sender wait suffered (receiver side), ns.
    pub late_sender_by_victim: HashMap<u32, u64>,
    /// Per-rank late-sender wait *caused* (sender side), ns.
    pub late_sender_by_culprit: HashMap<u32, u64>,
    /// Per-rank late-receiver wait suffered (sender side), ns.
    pub late_receiver_by_victim: HashMap<u32, u64>,
    /// Total late-sender time, ns.
    pub total_late_sender_ns: u64,
    /// Total late-receiver time, ns.
    pub total_late_receiver_ns: u64,
}

impl WaitStats {
    /// Per-rank late-sender victim map as a dense vector (density-map
    /// input).
    pub fn victim_map(&self, ranks: u32) -> Vec<f64> {
        (0..ranks)
            .map(|r| *self.late_sender_by_victim.get(&r).unwrap_or(&0) as f64)
            .collect()
    }

    /// Ranks sorted by caused late-sender time, worst first.
    pub fn worst_culprits(&self, top: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .late_sender_by_culprit
            .iter()
            .map(|(&r, &t)| (r, t))
            .collect();
        v.sort_by_key(|&(r, t)| (std::cmp::Reverse(t), r));
        v.truncate(top);
        v
    }
}

/// The send half of a transfer awaiting its receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSide {
    pub start_ns: u64,
    pub end_ns: u64,
    pub bytes: u64,
}

/// The receive half of a transfer awaiting its send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSide {
    pub start_ns: u64,
}

/// Online send/receive matcher.
#[derive(Debug, Clone, Default)]
pub struct WaitStateAnalysis {
    /// Pending sends per (src, dst) channel.
    sends: HashMap<(u32, u32), VecDeque<SendSide>>,
    /// Pending receives per (src, dst) channel.
    recvs: HashMap<(u32, u32), VecDeque<RecvSide>>,
    pub stats: WaitStats,
}

impl WaitStateAnalysis {
    pub fn new() -> WaitStateAnalysis {
        WaitStateAnalysis::default()
    }

    /// Feeds one event; returns the matched transfer when it completes one.
    ///
    /// `Sendrecv` decomposes into its send and receive halves, so stencil
    /// codes written with `MPI_Sendrecv` are analyzed too (the send-side
    /// match is returned when both halves complete one).
    pub fn add(&mut self, e: &Event) -> Option<MatchedTransfer> {
        if e.peer < 0 {
            return None;
        }
        match e.kind {
            EventKind::Send | EventKind::Isend => self.feed_send(
                e.rank,
                e.peer as u32,
                SendSide {
                    start_ns: e.time_ns,
                    end_ns: e.end_ns(),
                    bytes: e.bytes,
                },
            ),
            EventKind::Recv => self.feed_recv(
                e.peer as u32,
                e.rank,
                RecvSide {
                    start_ns: e.time_ns,
                },
            ),
            EventKind::Sendrecv => {
                let send_half = self.feed_send(
                    e.rank,
                    e.peer as u32,
                    SendSide {
                        start_ns: e.time_ns,
                        end_ns: e.end_ns(),
                        // The event's byte count covers both directions.
                        bytes: e.bytes / 2,
                    },
                );
                let recv_half = self.feed_recv(
                    e.peer as u32,
                    e.rank,
                    RecvSide {
                        start_ns: e.time_ns,
                    },
                );
                send_half.or(recv_half)
            }
            _ => None,
        }
    }

    fn feed_send(&mut self, src: u32, dst: u32, send: SendSide) -> Option<MatchedTransfer> {
        let key = (src, dst);
        if let Some(recv) = self.recvs.get_mut(&key).and_then(|q| q.pop_front()) {
            Some(self.matched(key, send, recv))
        } else {
            self.sends.entry(key).or_default().push_back(send);
            None
        }
    }

    fn feed_recv(&mut self, src: u32, dst: u32, recv: RecvSide) -> Option<MatchedTransfer> {
        let key = (src, dst);
        if let Some(send) = self.sends.get_mut(&key).and_then(|q| q.pop_front()) {
            Some(self.matched(key, send, recv))
        } else {
            self.recvs.entry(key).or_default().push_back(recv);
            None
        }
    }

    fn matched(&mut self, key: (u32, u32), send: SendSide, recv: RecvSide) -> MatchedTransfer {
        let (src, dst) = key;
        let late_sender_ns = send.start_ns.saturating_sub(recv.start_ns);
        let late_receiver_ns = recv.start_ns.saturating_sub(send.end_ns);
        self.stats.matched += 1;
        if late_sender_ns > 0 {
            *self.stats.late_sender_by_victim.entry(dst).or_default() += late_sender_ns;
            *self.stats.late_sender_by_culprit.entry(src).or_default() += late_sender_ns;
            self.stats.total_late_sender_ns += late_sender_ns;
        }
        if late_receiver_ns > 0 {
            *self.stats.late_receiver_by_victim.entry(src).or_default() += late_receiver_ns;
            self.stats.total_late_receiver_ns += late_receiver_ns;
        }
        MatchedTransfer {
            src,
            dst,
            bytes: send.bytes,
            late_sender_ns,
            late_receiver_ns,
        }
    }

    /// Rebuilds a matcher from previously finished stats: counters are
    /// restored and the pending halves go back into the channel queues, so
    /// further halves (from another analyzer's partial) can still match.
    pub fn from_stats(stats: &WaitStats) -> WaitStateAnalysis {
        let mut ws = WaitStateAnalysis {
            stats: stats.clone(),
            ..WaitStateAnalysis::default()
        };
        ws.stats.pending_sends.clear();
        ws.stats.pending_recvs.clear();
        for &(src, dst, send) in &stats.pending_sends {
            ws.sends.entry((src, dst)).or_default().push_back(send);
        }
        for &(src, dst, recv) in &stats.pending_recvs {
            ws.recvs.entry((src, dst)).or_default().push_back(recv);
        }
        ws
    }

    /// Merges another analyzer's finished stats into this matcher: aggregate
    /// counters add up, and the other side's dangling halves are re-fed so
    /// transfers whose halves were split across analyzers complete here.
    /// Per-channel FIFO order is preserved because every channel's events are
    /// recorded by a single writer and drained in order.
    pub fn absorb(&mut self, other: &WaitStats) {
        self.stats.matched += other.matched;
        self.stats.total_late_sender_ns += other.total_late_sender_ns;
        self.stats.total_late_receiver_ns += other.total_late_receiver_ns;
        for (&k, &v) in &other.late_sender_by_victim {
            *self.stats.late_sender_by_victim.entry(k).or_default() += v;
        }
        for (&k, &v) in &other.late_sender_by_culprit {
            *self.stats.late_sender_by_culprit.entry(k).or_default() += v;
        }
        for (&k, &v) in &other.late_receiver_by_victim {
            *self.stats.late_receiver_by_victim.entry(k).or_default() += v;
        }
        for &(src, dst, send) in &other.pending_sends {
            self.feed_send(src, dst, send);
        }
        for &(src, dst, recv) in &other.pending_recvs {
            self.feed_recv(src, dst, recv);
        }
    }

    /// Closes the analysis: drains the dangling halves into the stats
    /// (channel-sorted, so the encoding is deterministic) and counts them.
    pub fn finish(&mut self) -> &WaitStats {
        let mut pending_sends: Vec<(u32, u32, SendSide)> = Vec::new();
        let mut send_keys: Vec<(u32, u32)> = self.sends.keys().copied().collect();
        send_keys.sort_unstable();
        for key in send_keys {
            if let Some(q) = self.sends.remove(&key) {
                pending_sends.extend(q.into_iter().map(|s| (key.0, key.1, s)));
            }
        }
        let mut pending_recvs: Vec<(u32, u32, RecvSide)> = Vec::new();
        let mut recv_keys: Vec<(u32, u32)> = self.recvs.keys().copied().collect();
        recv_keys.sort_unstable();
        for key in recv_keys {
            if let Some(q) = self.recvs.remove(&key) {
                pending_recvs.extend(q.into_iter().map(|r| (key.0, key.1, r)));
            }
        }
        self.stats.unmatched = (pending_sends.len() + pending_recvs.len()) as u64;
        self.stats.pending_sends = pending_sends;
        self.stats.pending_recvs = pending_recvs;
        &self.stats
    }

    /// Stats as if the analysis finished now, without disturbing the live
    /// matcher: the dangling halves stay queued for future matches, the
    /// returned copy carries them drained and channel-sorted (so encoding a
    /// snapshot is as deterministic as encoding a finished analysis).
    pub fn snapshot_stats(&self) -> WaitStats {
        let mut copy = self.clone();
        copy.finish().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(rank: u32, peer: u32, t: u64, d: u64) -> Event {
        Event {
            time_ns: t,
            duration_ns: d,
            kind: EventKind::Send,
            rank,
            peer: peer as i32,
            tag: 0,
            comm: 0,
            bytes: 100,
        }
    }

    fn recv(rank: u32, peer: u32, t: u64, d: u64) -> Event {
        Event {
            kind: EventKind::Recv,
            ..send(rank, peer, t, d)
        }
    }

    #[test]
    fn late_sender_detected() {
        let mut ws = WaitStateAnalysis::new();
        // Receiver posts at t=100, sender only starts at t=400.
        assert!(ws.add(&recv(1, 0, 100, 350)).is_none());
        let m = ws.add(&send(0, 1, 400, 50)).unwrap();
        assert_eq!(m.late_sender_ns, 300);
        assert_eq!(m.late_receiver_ns, 0);
        assert_eq!(ws.stats.total_late_sender_ns, 300);
        assert_eq!(*ws.stats.late_sender_by_victim.get(&1).unwrap(), 300);
        assert_eq!(*ws.stats.late_sender_by_culprit.get(&0).unwrap(), 300);
    }

    #[test]
    fn late_receiver_detected() {
        let mut ws = WaitStateAnalysis::new();
        // Sender finished at t=150, receiver only posts at t=500.
        assert!(ws.add(&send(0, 1, 100, 50)).is_none());
        let m = ws.add(&recv(1, 0, 500, 10)).unwrap();
        assert_eq!(m.late_receiver_ns, 350);
        assert_eq!(m.late_sender_ns, 0);
    }

    #[test]
    fn synchronous_pair_has_no_wait() {
        let mut ws = WaitStateAnalysis::new();
        ws.add(&send(0, 1, 100, 50));
        let m = ws.add(&recv(1, 0, 120, 30)).unwrap();
        assert_eq!(m.late_sender_ns, 0);
        assert_eq!(m.late_receiver_ns, 0);
    }

    #[test]
    fn fifo_matching_per_channel() {
        let mut ws = WaitStateAnalysis::new();
        ws.add(&send(0, 1, 100, 10)); // first send
        ws.add(&send(0, 1, 200, 10)); // second send
        let m1 = ws.add(&recv(1, 0, 300, 5)).unwrap();
        let m2 = ws.add(&recv(1, 0, 400, 5)).unwrap();
        // First recv matches first send: late receiver 300-110.
        assert_eq!(m1.late_receiver_ns, 190);
        assert_eq!(m2.late_receiver_ns, 190);
    }

    #[test]
    fn channels_are_independent() {
        let mut ws = WaitStateAnalysis::new();
        ws.add(&send(0, 1, 100, 10));
        ws.add(&send(2, 1, 500, 10));
        // Recv from rank 2 must match rank 2's send, not rank 0's.
        let m = ws.add(&recv(1, 2, 50, 460)).unwrap();
        assert_eq!(m.src, 2);
        assert_eq!(m.late_sender_ns, 450);
    }

    #[test]
    fn unmatched_counted_at_finish() {
        let mut ws = WaitStateAnalysis::new();
        ws.add(&send(0, 1, 100, 10));
        ws.add(&recv(3, 2, 100, 10));
        let stats = ws.finish();
        assert_eq!(stats.unmatched, 2);
        assert_eq!(stats.matched, 0);
    }

    #[test]
    fn victim_map_and_culprits() {
        let mut ws = WaitStateAnalysis::new();
        ws.add(&recv(1, 0, 0, 1000));
        ws.add(&send(0, 1, 800, 10));
        ws.add(&recv(2, 0, 0, 500));
        ws.add(&send(0, 2, 200, 10));
        let map = ws.stats.victim_map(3);
        assert_eq!(map, vec![0.0, 800.0, 200.0]);
        let culprits = ws.stats.worst_culprits(2);
        assert_eq!(culprits, vec![(0, 1000)]);
    }

    #[test]
    fn sendrecv_halves_match_each_other() {
        let mut ws = WaitStateAnalysis::new();
        let mut a = send(0, 1, 100, 50);
        a.kind = EventKind::Sendrecv;
        a.bytes = 200;
        let mut b = send(1, 0, 400, 50);
        b.kind = EventKind::Sendrecv;
        b.bytes = 200;
        assert!(ws.add(&a).is_none());
        let m = ws.add(&b).unwrap();
        // Both directions matched: 2 transfers, no dangling halves.
        ws.finish();
        assert_eq!(ws.stats.matched, 2);
        assert_eq!(ws.stats.unmatched, 0);
        // B arrived 300 ns late: A's receive half waited on B's send half.
        assert_eq!(m.late_sender_ns + ws.stats.total_late_sender_ns, 600);
        assert_eq!(m.bytes, 100, "per-direction half of the 200-byte total");
    }

    #[test]
    fn collectives_ignored() {
        let mut ws = WaitStateAnalysis::new();
        let mut e = send(0, 1, 0, 10);
        e.kind = EventKind::Barrier;
        assert!(ws.add(&e).is_none());
        assert_eq!(ws.finish().matched + ws.stats.unmatched, 0);
    }
}
