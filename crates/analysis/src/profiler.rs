//! MPI interface profile: per-call and per-rank aggregates.

use opmr_events::{Event, EventKind};
use std::collections::HashMap;

/// Aggregate statistics for one call kind (or one `(rank, kind)` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallStats {
    pub hits: u64,
    pub time_ns: u64,
    pub bytes: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for CallStats {
    fn default() -> Self {
        CallStats {
            hits: 0,
            time_ns: 0,
            bytes: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl CallStats {
    fn add(&mut self, e: &Event) {
        self.hits += 1;
        self.time_ns += e.duration_ns;
        self.bytes += e.bytes;
        self.min_ns = self.min_ns.min(e.duration_ns);
        self.max_ns = self.max_ns.max(e.duration_ns);
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &CallStats) {
        self.hits += other.hits;
        self.time_ns += other.time_ns;
        self.bytes += other.bytes;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean call duration, ns.
    pub fn mean_ns(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.time_ns as f64 / self.hits as f64
        }
    }
}

/// The MPI profile of one application.
#[derive(Debug, Clone, Default)]
pub struct MpiProfile {
    per_kind: HashMap<EventKind, CallStats>,
    per_rank_kind: HashMap<(u32, EventKind), CallStats>,
    /// Highest rank seen + 1.
    ranks: u32,
    /// Latest event end timestamp (application wall proxy).
    last_end_ns: u64,
    /// Total events folded in.
    events: u64,
}

impl MpiProfile {
    pub fn new() -> MpiProfile {
        MpiProfile::default()
    }

    /// Folds one event into the profile.
    pub fn add(&mut self, e: &Event) {
        self.per_kind.entry(e.kind).or_default().add(e);
        self.per_rank_kind
            .entry((e.rank, e.kind))
            .or_default()
            .add(e);
        self.ranks = self.ranks.max(e.rank + 1);
        self.last_end_ns = self.last_end_ns.max(e.end_ns());
        self.events += 1;
    }

    /// Folds a batch.
    pub fn add_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for e in events {
            self.add(e);
        }
    }

    /// Injects a pre-aggregated `(rank, kind)` cell (wire decoding).
    #[allow(clippy::too_many_arguments)]
    pub fn absorb_stats(
        &mut self,
        rank: u32,
        kind: EventKind,
        hits: u64,
        time_ns: u64,
        bytes: u64,
        min_ns: u64,
        max_ns: u64,
    ) {
        let cell = CallStats {
            hits,
            time_ns,
            bytes,
            min_ns,
            max_ns,
        };
        self.per_kind.entry(kind).or_default().merge(&cell);
        self.per_rank_kind
            .entry((rank, kind))
            .or_default()
            .merge(&cell);
        self.ranks = self.ranks.max(rank + 1);
        self.events += hits;
    }

    /// Raises the observed span (wire decoding).
    pub fn absorb_span(&mut self, span_ns: u64) {
        self.last_end_ns = self.last_end_ns.max(span_ns);
    }

    /// Merges a partial profile (e.g. from another analyzer rank).
    pub fn merge(&mut self, other: &MpiProfile) {
        for (k, s) in &other.per_kind {
            self.per_kind.entry(*k).or_default().merge(s);
        }
        for (k, s) in &other.per_rank_kind {
            self.per_rank_kind.entry(*k).or_default().merge(s);
        }
        self.ranks = self.ranks.max(other.ranks);
        self.last_end_ns = self.last_end_ns.max(other.last_end_ns);
        self.events += other.events;
    }

    /// Aggregate for a call kind.
    pub fn kind(&self, kind: EventKind) -> Option<&CallStats> {
        self.per_kind.get(&kind)
    }

    /// Aggregate for one rank and call kind.
    pub fn rank_kind(&self, rank: u32, kind: EventKind) -> Option<&CallStats> {
        self.per_rank_kind.get(&(rank, kind))
    }

    /// All kinds seen, sorted for stable output.
    pub fn kinds(&self) -> Vec<EventKind> {
        let mut v: Vec<EventKind> = self.per_kind.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of application ranks observed.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Events folded in.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Latest event end (proxy for instrumented wall time), ns.
    pub fn span_ns(&self) -> u64 {
        self.last_end_ns
    }

    /// Total time spent inside MPI calls, ns (across ranks).
    pub fn total_mpi_ns(&self) -> u64 {
        self.per_kind
            .iter()
            .filter(|(k, _)| k.is_mpi())
            .map(|(_, s)| s.time_ns)
            .sum()
    }

    /// Total payload bytes moved by MPI calls.
    pub fn total_mpi_bytes(&self) -> u64 {
        self.per_kind
            .iter()
            .filter(|(k, _)| k.is_mpi())
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Per-rank value of a metric for one call kind (density-map source).
    pub fn rank_metric(&self, kind: EventKind, metric: Metric) -> Vec<f64> {
        (0..self.ranks)
            .map(|r| {
                self.rank_kind(r, kind)
                    .map(|s| match metric {
                        Metric::Hits => s.hits as f64,
                        Metric::TimeNs => s.time_ns as f64,
                        Metric::Bytes => s.bytes as f64,
                    })
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Per-rank total time over a class of calls (e.g. all collectives).
    pub fn rank_class_time(&self, pred: impl Fn(EventKind) -> bool) -> Vec<f64> {
        let mut v = vec![0.0; self.ranks as usize];
        for ((r, k), s) in &self.per_rank_kind {
            if pred(*k) {
                v[*r as usize] += s.time_ns as f64;
            }
        }
        v
    }
}

/// Density-map metric selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Hits,
    TimeNs,
    Bytes,
}

impl Metric {
    pub fn name(self) -> &'static str {
        match self {
            Metric::Hits => "hits",
            Metric::TimeNs => "time",
            Metric::Bytes => "size",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, kind: EventKind, dur: u64, bytes: u64) -> Event {
        Event {
            time_ns: 100,
            duration_ns: dur,
            kind,
            rank,
            peer: -1,
            tag: 0,
            comm: 0,
            bytes,
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let mut p = MpiProfile::new();
        p.add(&ev(0, EventKind::Send, 10, 100));
        p.add(&ev(0, EventKind::Send, 30, 200));
        p.add(&ev(1, EventKind::Send, 20, 50));
        p.add(&ev(1, EventKind::Recv, 5, 50));
        let s = p.kind(EventKind::Send).unwrap();
        assert_eq!(s.hits, 3);
        assert_eq!(s.time_ns, 60);
        assert_eq!(s.bytes, 350);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20.0);
        assert_eq!(p.rank_kind(0, EventKind::Send).unwrap().hits, 2);
        assert_eq!(p.ranks(), 2);
        assert_eq!(p.events(), 4);
    }

    #[test]
    fn merge_equals_bulk_fold() {
        let events: Vec<Event> = (0..50)
            .map(|i| {
                ev(
                    i % 4,
                    EventKind::ALL[i as usize % 6 + 2],
                    i as u64,
                    i as u64 * 3,
                )
            })
            .collect();
        let mut whole = MpiProfile::new();
        whole.add_all(&events);
        let mut a = MpiProfile::new();
        let mut b = MpiProfile::new();
        a.add_all(&events[..20]);
        b.add_all(&events[20..]);
        a.merge(&b);
        for k in whole.kinds() {
            assert_eq!(whole.kind(k), a.kind(k), "{}", k.name());
        }
        assert_eq!(whole.events(), a.events());
        assert_eq!(whole.total_mpi_ns(), a.total_mpi_ns());
    }

    #[test]
    fn class_time_filters() {
        let mut p = MpiProfile::new();
        p.add(&ev(0, EventKind::Barrier, 100, 0));
        p.add(&ev(0, EventKind::Send, 10, 1));
        p.add(&ev(1, EventKind::Allreduce, 200, 8));
        let coll = p.rank_class_time(|k| k.is_collective());
        assert_eq!(coll, vec![100.0, 200.0]);
    }

    #[test]
    fn rank_metric_fills_gaps_with_zero() {
        let mut p = MpiProfile::new();
        p.add(&ev(2, EventKind::Send, 10, 7));
        assert_eq!(
            p.rank_metric(EventKind::Send, Metric::Bytes),
            vec![0.0, 0.0, 7.0]
        );
        assert_eq!(
            p.rank_metric(EventKind::Send, Metric::Hits),
            vec![0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn posix_excluded_from_mpi_totals() {
        let mut p = MpiProfile::new();
        p.add(&ev(0, EventKind::PosixWrite, 100, 4096));
        p.add(&ev(0, EventKind::Send, 10, 64));
        assert_eq!(p.total_mpi_ns(), 10);
        assert_eq!(p.total_mpi_bytes(), 64);
    }
}
