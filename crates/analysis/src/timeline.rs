//! Temporal maps: time-binned per-rank MPI activity.
//!
//! The paper's report includes "temporal and spatial maps for MPI and
//! POSIX calls"; the temporal map bins the instrumented window into fixed
//! slots and accumulates, per rank, the time spent inside matching calls —
//! a coarse Vampir-like view without storing a trace.

use opmr_events::{Event, EventKind};

/// Per-rank × per-bin accumulated busy time.
#[derive(Debug, Clone)]
pub struct Timeline {
    bins: usize,
    span_ns: u64,
    /// `values[rank][bin]` = ns spent in matching calls.
    values: Vec<Vec<f64>>,
    filter: fn(EventKind) -> bool,
}

impl Timeline {
    /// A timeline of `bins` slots covering `[0, span_ns)` for calls
    /// matching `filter`.
    pub fn new(ranks: usize, bins: usize, span_ns: u64, filter: fn(EventKind) -> bool) -> Timeline {
        assert!(bins > 0);
        Timeline {
            bins,
            span_ns: span_ns.max(1),
            values: vec![vec![0.0; bins]; ranks],
            filter,
        }
    }

    /// Folds an event, spreading its duration over the bins it overlaps.
    pub fn add(&mut self, e: &Event) {
        if !(self.filter)(e.kind) {
            return;
        }
        let rank = e.rank as usize;
        if rank >= self.values.len() {
            self.values.resize(rank + 1, vec![0.0; self.bins]);
        }
        let bin_ns = self.span_ns as f64 / self.bins as f64;
        let (mut start, end) = (e.time_ns as f64, e.end_ns() as f64);
        while start < end {
            let bin = ((start / bin_ns) as usize).min(self.bins - 1);
            // The last bin absorbs anything past the span (clamping).
            let bin_end = if bin == self.bins - 1 {
                end
            } else {
                (bin as f64 + 1.0) * bin_ns
            };
            let chunk = end.min(bin_end) - start;
            self.values[rank][bin] += chunk;
            start = bin_end.max(start + 1.0); // always progress
        }
    }

    /// Folds a batch.
    pub fn add_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for e in events {
            self.add(e);
        }
    }

    pub fn ranks(&self) -> usize {
        self.values.len()
    }

    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Busy fraction of one rank in one bin (0..1, may exceed 1 when
    /// overlapping non-blocking calls are counted).
    pub fn fraction(&self, rank: usize, bin: usize) -> f64 {
        let bin_ns = self.span_ns as f64 / self.bins as f64;
        self.values[rank][bin] / bin_ns
    }

    /// Mean busy fraction per bin across ranks (the report's activity
    /// curve).
    pub fn mean_activity(&self) -> Vec<f64> {
        if self.values.is_empty() {
            return vec![0.0; self.bins];
        }
        let mut out = vec![0.0; self.bins];
        for rank in 0..self.values.len() {
            for (b, acc) in out.iter_mut().enumerate() {
                *acc += self.fraction(rank, b);
            }
        }
        for acc in &mut out {
            *acc /= self.values.len() as f64;
        }
        out
    }

    /// Text rendering: one row per rank, one glyph per bin.
    pub fn ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        for rank in 0..self.values.len() {
            for bin in 0..self.bins {
                let f = self.fraction(rank, bin).min(1.0);
                let idx = ((f * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// A timeline that does not need the span up front: the span doubles (and
/// bins merge pairwise) whenever an event lands beyond it. Used by the
/// online engine, where events stream in before the wall time is known.
#[derive(Debug, Clone)]
pub struct AdaptiveTimeline {
    bins: usize,
    span_ns: u64,
    values: Vec<Vec<f64>>,
    filter: fn(EventKind) -> bool,
}

impl AdaptiveTimeline {
    /// `bins` must be even (pairwise merging halves them on rescale).
    pub fn new(bins: usize, filter: fn(EventKind) -> bool) -> AdaptiveTimeline {
        assert!(
            bins >= 2 && bins.is_multiple_of(2),
            "need an even bin count"
        );
        AdaptiveTimeline {
            bins,
            span_ns: 1_000_000, // 1 ms initial span
            values: Vec::new(),
            filter,
        }
    }

    fn rescale(&mut self) {
        for row in &mut self.values {
            for i in 0..self.bins / 2 {
                row[i] = row[2 * i] + row[2 * i + 1];
            }
            for v in row.iter_mut().skip(self.bins / 2) {
                *v = 0.0;
            }
        }
        self.span_ns *= 2;
    }

    /// Folds one event, growing the span as needed.
    pub fn add(&mut self, e: &Event) {
        if !(self.filter)(e.kind) {
            return;
        }
        while e.end_ns() > self.span_ns {
            self.rescale();
        }
        let rank = e.rank as usize;
        if rank >= self.values.len() {
            self.values.resize(rank + 1, vec![0.0; self.bins]);
        }
        let bin_ns = self.span_ns as f64 / self.bins as f64;
        let (mut start, end) = (e.time_ns as f64, e.end_ns() as f64);
        while start < end {
            let bin = ((start / bin_ns) as usize).min(self.bins - 1);
            let bin_end = (bin as f64 + 1.0) * bin_ns;
            self.values[rank][bin] += end.min(bin_end) - start;
            start = bin_end;
        }
    }

    /// Current span, ns.
    pub fn span_ns(&self) -> u64 {
        self.span_ns
    }

    /// Snapshot as a fixed [`Timeline`]-compatible view.
    pub fn snapshot(&self) -> Timeline {
        Timeline {
            bins: self.bins,
            span_ns: self.span_ns,
            values: self.values.clone(),
            filter: self.filter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, t: u64, d: u64, kind: EventKind) -> Event {
        Event {
            time_ns: t,
            duration_ns: d,
            kind,
            rank,
            peer: -1,
            tag: 0,
            comm: 0,
            bytes: 0,
        }
    }

    #[test]
    fn event_lands_in_its_bin() {
        let mut tl = Timeline::new(1, 10, 1000, |k| k.is_mpi());
        tl.add(&ev(0, 250, 50, EventKind::Send));
        assert!((tl.fraction(0, 2) - 0.5).abs() < 1e-9);
        assert_eq!(tl.fraction(0, 3), 0.0);
    }

    #[test]
    fn event_spanning_bins_is_split() {
        let mut tl = Timeline::new(1, 10, 1000, |k| k.is_mpi());
        tl.add(&ev(0, 150, 200, EventKind::Recv)); // covers bins 1..3
        assert!((tl.fraction(0, 1) - 0.5).abs() < 1e-9);
        assert!((tl.fraction(0, 2) - 1.0).abs() < 1e-9);
        assert!((tl.fraction(0, 3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn filter_excludes_other_kinds() {
        let mut tl = Timeline::new(1, 4, 400, |k| k.is_collective());
        tl.add(&ev(0, 0, 100, EventKind::Send));
        tl.add(&ev(0, 100, 100, EventKind::Barrier));
        assert_eq!(tl.fraction(0, 0), 0.0);
        assert!((tl.fraction(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_activity_averages_ranks() {
        let mut tl = Timeline::new(2, 2, 200, |k| k.is_mpi());
        tl.add(&ev(0, 0, 100, EventKind::Send)); // rank 0 fully busy bin 0
        let mean = tl.mean_activity();
        assert!((mean[0] - 0.5).abs() < 1e-9);
        assert_eq!(mean[1], 0.0);
    }

    #[test]
    fn ascii_has_one_row_per_rank() {
        let mut tl = Timeline::new(3, 5, 500, |k| k.is_mpi());
        tl.add(&ev(2, 0, 500, EventKind::Wait));
        let a = tl.ascii();
        assert_eq!(a.lines().count(), 3);
        assert_eq!(a.lines().last().unwrap(), "@@@@@");
    }

    #[test]
    fn late_event_clamps_to_last_bin() {
        let mut tl = Timeline::new(1, 4, 400, |k| k.is_mpi());
        tl.add(&ev(0, 395, 50, EventKind::Send)); // runs past the span
        assert!(tl.fraction(0, 3) > 0.0);
    }

    #[test]
    fn event_entirely_beyond_span_lands_in_last_bin() {
        let mut tl = Timeline::new(1, 4, 400, |k| k.is_mpi());
        tl.add(&ev(0, 1_000, 50, EventKind::Send)); // starts past the span
        assert!((tl.fraction(0, 3) - 0.5).abs() < 1e-9, "mass is clamped");
        for bin in 0..3 {
            assert_eq!(tl.fraction(0, bin), 0.0);
        }
    }

    #[test]
    fn ranks_grow_mid_stream_preserving_earlier_mass() {
        let mut tl = Timeline::new(1, 4, 400, |k| k.is_mpi());
        tl.add(&ev(0, 0, 100, EventKind::Send));
        assert_eq!(tl.ranks(), 1);
        tl.add(&ev(5, 100, 100, EventKind::Recv)); // unseen rank appears
        assert_eq!(tl.ranks(), 6);
        assert!((tl.fraction(0, 0) - 1.0).abs() < 1e-9, "old mass intact");
        assert!((tl.fraction(5, 1) - 1.0).abs() < 1e-9);
        for rank in 1..5 {
            for bin in 0..4 {
                assert_eq!(tl.fraction(rank, bin), 0.0, "gap ranks stay empty");
            }
        }
    }

    #[test]
    fn zero_duration_events_add_no_mass() {
        let mut tl = Timeline::new(1, 4, 400, |k| k.is_mpi());
        tl.add(&ev(0, 250, 0, EventKind::Wait));
        tl.add(&ev(0, 400, 0, EventKind::Wait)); // exactly at the span edge
        tl.add(&ev(0, 900, 0, EventKind::Wait)); // beyond the span
        for bin in 0..4 {
            assert_eq!(tl.fraction(0, bin), 0.0);
        }
    }

    #[test]
    fn adaptive_zero_duration_event_grows_span_without_mass() {
        let mut at = AdaptiveTimeline::new(4, |k| k.is_mpi());
        at.add(&ev(0, 5_000_000, 0, EventKind::Send)); // past the 1 ms span
        assert!(at.span_ns() >= 5_000_000, "span still tracks the event");
        let tl = at.snapshot();
        assert_eq!(tl.ranks(), 1);
        for bin in 0..4 {
            assert_eq!(tl.fraction(0, bin), 0.0);
        }
    }

    #[test]
    fn adaptive_grows_span_preserving_mass() {
        let mut at = AdaptiveTimeline::new(8, |k| k.is_mpi());
        at.add(&ev(0, 0, 500_000, EventKind::Send));
        let before: f64 = at.snapshot().values[0].iter().sum();
        // An event far beyond the initial 1 ms span forces rescales.
        at.add(&ev(0, 7_900_000, 100_000, EventKind::Send));
        assert!(at.span_ns() >= 8_000_000);
        let after: f64 = at.snapshot().values[0].iter().sum();
        assert!(
            (after - (before + 100_000.0)).abs() < 1.0,
            "mass conserved across rescales"
        );
    }

    #[test]
    fn adaptive_snapshot_fractions() {
        let mut at = AdaptiveTimeline::new(4, |k| k.is_mpi());
        at.add(&ev(0, 0, 250_000, EventKind::Send)); // first quarter of 1 ms
        let tl = at.snapshot();
        assert!((tl.fraction(0, 0) - 1.0).abs() < 1e-9);
        assert_eq!(tl.fraction(0, 1), 0.0);
    }
}
