//! # opmr-analysis — profiling knowledge sources and report generation
//!
//! The analysis modules of the paper's distributed engine (Section IV-D),
//! implemented as blackboard knowledge sources plus the data structures
//! they reduce events into:
//!
//! * [`profiler`] — the MPI interface profile: hits / total time / total
//!   size per call and per rank (the mpiP-style aggregate);
//! * [`topology`] — the topological module: communication graphs and
//!   matrices weighted in hits, total size and total time for every
//!   point-to-point communication (Figure 17), with Graphviz DOT output;
//! * [`density`] — the density-map module: per-rank spatial maps of hits /
//!   time / size for MPI and POSIX calls (Figure 18), rendered as PGM
//!   images and ASCII heat maps;
//! * [`timeline`] — temporal maps: time-binned MPI activity per rank;
//! * [`engine`] — the wiring: a dispatcher KS routes event packs to their
//!   application's blackboard level (Figure 5), a per-level unpacker KS
//!   decodes them (Figure 4), and per-level reducer KSs update the shared
//!   aggregates;
//! * [`report`] — the profiling report: one chapter per instrumented
//!   application, in Markdown and LaTeX (the paper emits a 20-70 page
//!   LaTeX document).

pub mod density;
pub mod engine;
pub mod patterns;
pub mod profiler;
pub mod report;
pub mod timeline;
pub mod topology;
pub mod trace_proxy;
pub mod waitstate;
pub mod wire;

pub use density::DensityMap;
pub use engine::{AnalysisEngine, AppReport, EngineConfig, MultiReport};
pub use patterns::{classify, Pattern, PatternMatch};
pub use profiler::{CallStats, MpiProfile};
pub use timeline::Timeline;
pub use topology::{EdgeWeight, Topology, WeightKind};
pub use trace_proxy::{read_proxy_trace, Selection, TraceProxy};
pub use waitstate::{WaitStateAnalysis, WaitStats};
