//! Topological module: communication graphs and matrices (Figure 17).
//!
//! For every point-to-point transfer the module accumulates a directed
//! edge weighted in hits, total size and total time; outputs are a dense
//! text matrix and a Graphviz DOT graph, both weighted by a selectable
//! [`WeightKind`] — exactly what the paper feeds to Graphviz.

use opmr_events::Event;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Which weight a rendering uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    Hits,
    Bytes,
    TimeNs,
}

impl WeightKind {
    pub fn name(self) -> &'static str {
        match self {
            WeightKind::Hits => "hits",
            WeightKind::Bytes => "total size",
            WeightKind::TimeNs => "total time",
        }
    }
}

/// Accumulated weights of one directed edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeWeight {
    pub hits: u64,
    pub bytes: u64,
    pub time_ns: u64,
}

impl EdgeWeight {
    pub fn get(&self, kind: WeightKind) -> u64 {
        match kind {
            WeightKind::Hits => self.hits,
            WeightKind::Bytes => self.bytes,
            WeightKind::TimeNs => self.time_ns,
        }
    }

    pub fn merge(&mut self, other: &EdgeWeight) {
        self.hits += other.hits;
        self.bytes += other.bytes;
        self.time_ns += other.time_ns;
    }
}

/// The communication topology of one application.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    edges: HashMap<(u32, u32), EdgeWeight>,
    ranks: u32,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Folds a point-to-point *send-side* event into the matrix (receive
    /// sides would double-count the transfer).
    pub fn add(&mut self, e: &Event) {
        if !e.kind.is_p2p_send() || e.peer < 0 {
            return;
        }
        let src = e.rank;
        let dst = e.peer as u32;
        let w = self.edges.entry((src, dst)).or_default();
        w.hits += 1;
        w.bytes += e.bytes;
        w.time_ns += e.duration_ns;
        self.ranks = self.ranks.max(src + 1).max(dst + 1);
    }

    /// Folds a batch.
    pub fn add_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for e in events {
            self.add(e);
        }
    }

    /// Adds a pre-aggregated directed edge (used when the pattern is known
    /// statically, e.g. when rendering paper-scale topologies without
    /// materializing events).
    pub fn add_weighted(&mut self, src: u32, dst: u32, hits: u64, bytes: u64, time_ns: u64) {
        let w = self.edges.entry((src, dst)).or_default();
        w.hits += hits;
        w.bytes += bytes;
        w.time_ns += time_ns;
        self.ranks = self.ranks.max(src + 1).max(dst + 1);
    }

    /// Merges a partial topology.
    pub fn merge(&mut self, other: &Topology) {
        for (k, w) in &other.edges {
            self.edges.entry(*k).or_default().merge(w);
        }
        self.ranks = self.ranks.max(other.ranks);
    }

    /// Number of ranks covered.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight of a directed edge.
    pub fn edge(&self, src: u32, dst: u32) -> Option<&EdgeWeight> {
        self.edges.get(&(src, dst))
    }

    /// Edges sorted by (src, dst) for stable output.
    pub fn sorted_edges(&self) -> Vec<((u32, u32), EdgeWeight)> {
        let mut v: Vec<_> = self.edges.iter().map(|(k, w)| (*k, *w)).collect();
        v.sort_unstable_by_key(|(k, _)| *k);
        v
    }

    /// True when every edge has a reverse edge with identical hits — halo
    /// patterns are symmetric, pipelines are not.
    pub fn is_symmetric_in_hits(&self) -> bool {
        self.edges
            .iter()
            .all(|(&(s, d), w)| self.edges.get(&(d, s)).is_some_and(|r| r.hits == w.hits))
    }

    /// Mean number of communication partners per communicating rank.
    pub fn mean_degree(&self) -> f64 {
        if self.ranks == 0 {
            return 0.0;
        }
        let mut partners: HashMap<u32, u64> = HashMap::new();
        for &(s, _) in self.edges.keys() {
            *partners.entry(s).or_default() += 1;
        }
        if partners.is_empty() {
            0.0
        } else {
            partners.values().sum::<u64>() as f64 / partners.len() as f64
        }
    }

    /// Dense communication matrix as text: `ranks` lines of `ranks`
    /// weights (Figure 17a's matrix form). Suitable for small rank counts
    /// or piping into plotting tools.
    pub fn matrix_text(&self, kind: WeightKind) -> String {
        let n = self.ranks as usize;
        let mut out = String::with_capacity(n * n * 4);
        let _ = writeln!(out, "# communication matrix ({}), {} ranks", kind.name(), n);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let w = self.edge(s, d).map(|w| w.get(kind)).unwrap_or(0);
                let sep = if d + 1 == n as u32 { "\n" } else { " " };
                let _ = write!(out, "{w}{sep}");
            }
        }
        out
    }

    /// Graphviz DOT rendering with pen widths scaled by weight (what the
    /// paper pipes into Graphviz for Figure 17b-e).
    pub fn to_dot(&self, name: &str, kind: WeightKind) -> String {
        let max_w = self
            .edges
            .values()
            .map(|w| w.get(kind))
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  // edge weight: {}", kind.name());
        let _ = writeln!(out, "  node [shape=point];");
        for ((s, d), w) in self.sorted_edges() {
            let value = w.get(kind);
            let width = 0.3 + 4.0 * value as f64 / max_w as f64;
            let _ = writeln!(
                out,
                "  {s} -> {d} [penwidth={width:.2}, label=\"{value}\"];"
            );
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Per-rank outbound weights (spatial imbalance view).
    pub fn rank_out(&self, kind: WeightKind) -> Vec<u64> {
        let mut v = vec![0u64; self.ranks as usize];
        for (&(s, _), w) in &self.edges {
            v[s as usize] += w.get(kind);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::EventKind;

    fn send(rank: u32, peer: i32, bytes: u64, dur: u64) -> Event {
        Event {
            time_ns: 0,
            duration_ns: dur,
            kind: EventKind::Send,
            rank,
            peer,
            tag: 0,
            comm: 0,
            bytes,
        }
    }

    fn recv(rank: u32, peer: i32, bytes: u64) -> Event {
        Event {
            kind: EventKind::Recv,
            ..send(rank, peer, bytes, 1)
        }
    }

    #[test]
    fn only_send_sides_count() {
        let mut t = Topology::new();
        t.add(&send(0, 1, 100, 5));
        t.add(&recv(1, 0, 100));
        assert_eq!(t.edge_count(), 1);
        let w = t.edge(0, 1).unwrap();
        assert_eq!((w.hits, w.bytes, w.time_ns), (1, 100, 5));
    }

    #[test]
    fn weights_accumulate() {
        let mut t = Topology::new();
        t.add(&send(0, 1, 100, 5));
        t.add(&send(0, 1, 50, 3));
        t.add(&send(1, 0, 10, 1));
        let w = t.edge(0, 1).unwrap();
        assert_eq!((w.hits, w.bytes, w.time_ns), (2, 150, 8));
        assert!(!t.is_symmetric_in_hits(), "hits 2 vs 1");
    }

    #[test]
    fn ring_is_detected_symmetric() {
        let mut t = Topology::new();
        for r in 0..4u32 {
            t.add(&send(r, ((r + 1) % 4) as i32, 10, 1));
            t.add(&send(r, ((r + 3) % 4) as i32, 10, 1));
        }
        assert!(t.is_symmetric_in_hits());
        assert_eq!(t.mean_degree(), 2.0);
    }

    #[test]
    fn matrix_text_is_dense_and_ordered() {
        let mut t = Topology::new();
        t.add(&send(0, 2, 7, 1));
        let m = t.matrix_text(WeightKind::Bytes);
        let lines: Vec<&str> = m.lines().skip(1).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "0 0 7");
        assert_eq!(lines[1], "0 0 0");
    }

    #[test]
    fn dot_output_contains_every_edge() {
        let mut t = Topology::new();
        t.add(&send(0, 1, 10, 1));
        t.add(&send(1, 2, 30, 1));
        let dot = t.to_dot("cg", WeightKind::Bytes);
        assert!(dot.starts_with("digraph \"cg\""));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("1 -> 2"));
        assert!(dot.contains("label=\"30\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn merge_is_union_with_sum() {
        let mut a = Topology::new();
        a.add(&send(0, 1, 10, 1));
        let mut b = Topology::new();
        b.add(&send(0, 1, 5, 1));
        b.add(&send(2, 0, 1, 1));
        a.merge(&b);
        assert_eq!(a.edge(0, 1).unwrap().bytes, 15);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.ranks(), 3);
    }

    #[test]
    fn rank_out_sums_outbound() {
        let mut t = Topology::new();
        t.add(&send(0, 1, 10, 1));
        t.add(&send(0, 2, 20, 1));
        t.add(&send(1, 0, 5, 1));
        assert_eq!(t.rank_out(WeightKind::Bytes), vec![30, 5, 0]);
    }

    #[test]
    fn negative_peer_ignored() {
        let mut t = Topology::new();
        t.add(&send(0, -1, 10, 1));
        assert_eq!(t.edge_count(), 0);
    }
}
