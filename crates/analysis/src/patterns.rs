//! Communication-pattern detection.
//!
//! The paper motivates online analysis with inter-process analyses such as
//! "pattern detection in communications \[11\] which requires an
//! inter-processes context". With every event reaching the engine, the
//! communication matrix is available online; this module classifies it
//! against the canonical parallel patterns so the report can *name* what a
//! topology figure shows:
//!
//! * **Ring** — every rank talks to `rank ± 1 (mod n)`;
//! * **Grid2D** — open-boundary 4-neighbour mesh (halo exchange);
//! * **Wavefront** — directed mesh traffic toward one corner and back
//!   (LU-style pipelines);
//! * **Transpose** — pairwise `i↔σ(i)` with an involution σ (CG);
//! * **AllToAll** — (near-)complete directed graph (FT);
//! * **Irregular** — none of the above.

use crate::topology::Topology;

/// Detected pattern with a confidence score (fraction of edges explained).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    pub pattern: Pattern,
    /// Fraction of observed edges the pattern explains, 0..1.
    pub coverage: f64,
}

/// The canonical pattern taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    Ring,
    Grid2D { cols: u32, rows: u32 },
    Wavefront { cols: u32, rows: u32 },
    Transpose,
    AllToAll,
    Irregular,
}

impl Pattern {
    /// Human-readable name for reports.
    pub fn describe(&self) -> String {
        match self {
            Pattern::Ring => "ring (nearest neighbour ±1)".to_string(),
            Pattern::Grid2D { cols, rows } => {
                format!("2-D halo-exchange grid ({cols}×{rows})")
            }
            Pattern::Wavefront { cols, rows } => {
                format!("2-D wavefront pipeline ({cols}×{rows})")
            }
            Pattern::Transpose => "pairwise transpose exchange".to_string(),
            Pattern::AllToAll => "all-to-all".to_string(),
            Pattern::Irregular => "irregular".to_string(),
        }
    }
}

/// Fraction of observed edges contained in the candidate edge set, combined
/// with the fraction of candidate edges actually observed (harmonic mean,
/// so both missing and surplus edges hurt).
fn score(topo: &Topology, candidate: &dyn Fn(u32, u32) -> bool) -> f64 {
    let n = topo.ranks();
    if n == 0 || topo.edge_count() == 0 {
        return 0.0;
    }
    let observed = topo.edge_count() as f64;
    let mut explained = 0usize;
    for ((s, d), _w) in topo.sorted_edges() {
        if candidate(s, d) {
            explained += 1;
        }
    }
    let mut expected = 0usize;
    let mut expected_present = 0usize;
    for s in 0..n {
        for d in 0..n {
            if s != d && candidate(s, d) {
                expected += 1;
                if topo.edge(s, d).is_some() {
                    expected_present += 1;
                }
            }
        }
    }
    if expected == 0 {
        return 0.0;
    }
    let precision = explained as f64 / observed;
    let recall = expected_present as f64 / expected as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Plausible 2-D factorizations of `n`, most square first.
fn factorizations(n: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push((d, n / d));
            if d != n / d {
                out.push((n / d, d));
            }
        }
        d += 1;
    }
    out.sort_by_key(|&(a, b)| a.abs_diff(b));
    out.truncate(6);
    out
}

/// Classifies a topology, returning matches sorted by coverage (best
/// first); always ends with the best guess ≥ the `Irregular` floor.
pub fn classify(topo: &Topology) -> PatternMatch {
    let n = topo.ranks();
    if n < 2 || topo.edge_count() == 0 {
        return PatternMatch {
            pattern: Pattern::Irregular,
            coverage: 0.0,
        };
    }
    let mut best = PatternMatch {
        pattern: Pattern::Irregular,
        coverage: 0.35, // a pattern must beat this floor to be claimed
    };
    let mut consider = |pattern: Pattern, cov: f64| {
        if cov > best.coverage {
            best = PatternMatch {
                pattern,
                coverage: cov,
            };
        }
    };

    // Ring.
    consider(
        Pattern::Ring,
        score(topo, &|s, d| d == (s + 1) % n || (d + 1) % n == s),
    );

    // Grid candidates (halo + wavefront) over plausible factorizations.
    for (cols, rows) in factorizations(n) {
        if cols < 2 || rows < 2 {
            continue;
        }
        let coords = |r: u32| (r % cols, r / cols);
        let halo = |s: u32, d: u32| {
            let (sx, sy) = coords(s);
            let (dx, dy) = coords(d);
            (sx.abs_diff(dx) + sy.abs_diff(dy)) == 1
        };
        consider(Pattern::Grid2D { cols, rows }, score(topo, &halo));
        // Wavefront: mesh neighbours plus diagonals (BT/SP's third sweep
        // direction) — still local traffic, directed both ways over the
        // iteration.
        let wavefront = |s: u32, d: u32| {
            let (sx, sy) = coords(s);
            let (dx, dy) = coords(d);
            sx.abs_diff(dx) <= 1 && sy.abs_diff(dy) <= 1 && s != d
        };
        consider(Pattern::Wavefront { cols, rows }, score(topo, &wavefront));
    }

    // Transpose: the observed p2p graph is a perfect matching (every
    // communicating rank has exactly one partner, symmetric).
    {
        let edges = topo.sorted_edges();
        let mut partner: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut is_matching = true;
        for ((s, d), _) in &edges {
            if *partner.entry(*s).or_insert(*d) != *d {
                is_matching = false;
                break;
            }
        }
        if is_matching && !edges.is_empty() {
            let symmetric = edges
                .iter()
                .all(|((s, d), _)| partner.get(d).is_some_and(|p| p == s));
            if symmetric {
                consider(Pattern::Transpose, 0.99);
            }
        }
    }

    // All-to-all: edge count close to n(n-1).
    let density = topo.edge_count() as f64 / (n as f64 * (n as f64 - 1.0));
    if density > 0.8 {
        consider(Pattern::AllToAll, density);
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_from(edges: &[(u32, u32)]) -> Topology {
        let mut t = Topology::new();
        for &(s, d) in edges {
            t.add_weighted(s, d, 1, 10, 1);
        }
        t
    }

    #[test]
    fn detects_ring() {
        let n = 8u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|r| [(r, (r + 1) % n), (r, (r + n - 1) % n)])
            .collect();
        let m = classify(&topo_from(&edges));
        assert_eq!(m.pattern, Pattern::Ring);
        assert!(m.coverage > 0.9);
    }

    #[test]
    fn detects_grid() {
        // 4×4 open-boundary halo.
        let mut edges = Vec::new();
        for y in 0..4u32 {
            for x in 0..4u32 {
                let r = y * 4 + x;
                if x + 1 < 4 {
                    edges.push((r, r + 1));
                    edges.push((r + 1, r));
                }
                if y + 1 < 4 {
                    edges.push((r, r + 4));
                    edges.push((r + 4, r));
                }
            }
        }
        let m = classify(&topo_from(&edges));
        assert_eq!(m.pattern, Pattern::Grid2D { cols: 4, rows: 4 });
        assert!(m.coverage > 0.95);
    }

    #[test]
    fn detects_transpose() {
        let edges = [(0u32, 3u32), (3, 0), (1, 2), (2, 1), (4, 5), (5, 4)];
        let m = classify(&topo_from(&edges));
        assert_eq!(m.pattern, Pattern::Transpose);
    }

    #[test]
    fn detects_alltoall() {
        let n = 6u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (s, d)))
            .collect();
        let m = classify(&topo_from(&edges));
        assert_eq!(m.pattern, Pattern::AllToAll);
    }

    #[test]
    fn random_sparse_is_irregular() {
        let edges = [(0u32, 5u32), (2, 7), (3, 1), (6, 0)];
        let m = classify(&topo_from(&edges));
        assert_eq!(m.pattern, Pattern::Irregular);
    }

    #[test]
    fn empty_topology_is_irregular() {
        let m = classify(&Topology::new());
        assert_eq!(m.pattern, Pattern::Irregular);
        assert_eq!(m.coverage, 0.0);
    }

    #[test]
    fn real_workload_topologies_classify_sensibly() {
        use opmr_events::{Event, EventKind};
        // Build an euler-like 3×3 halo from events.
        let mut t = Topology::new();
        for y in 0..3i32 {
            for x in 0..3i32 {
                let r = (y * 3 + x) as u32;
                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                    let (nx, ny) = (x + dx, y + dy);
                    if (0..3).contains(&nx) && (0..3).contains(&ny) {
                        t.add(&Event {
                            time_ns: 0,
                            duration_ns: 1,
                            kind: EventKind::Sendrecv,
                            rank: r,
                            peer: (ny * 3 + nx),
                            tag: 0,
                            comm: 0,
                            bytes: 100,
                        });
                    }
                }
            }
        }
        let m = classify(&t);
        assert_eq!(m.pattern, Pattern::Grid2D { cols: 3, rows: 3 });
    }
}
