//! Wire serialization for analysis aggregates.
//!
//! The paper's Section VI plans "extending data-flow outside of nodes
//! boundaries": analyzer ranks each reduce their share of the event stream
//! and the partial aggregates travel over MPI to be merged. This module is
//! that wire format — compact little-endian encodings for [`MpiProfile`],
//! [`Topology`] and [`WaitStats`], with merge-compatible round-trips.

use crate::profiler::{CallStats, MpiProfile};
use crate::topology::Topology;
use crate::waitstate::{RecvSide, SendSide, WaitStateAnalysis, WaitStats};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use opmr_events::EventKind;
use opmr_metrics::{MetricsSeries, MetricsWireError};

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadTag(u8),
    BadKind(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated aggregate"),
            WireError::BadTag(t) => write!(f, "unknown aggregate tag {t}"),
            WireError::BadKind(k) => write!(f, "unknown event kind {k}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<MetricsWireError> for WireError {
    fn from(e: MetricsWireError) -> WireError {
        match e {
            MetricsWireError::Truncated => WireError::Truncated,
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// MpiProfile.
// ---------------------------------------------------------------------

/// Encodes a profile as its `(rank, kind) → stats` table.
pub fn encode_profile(p: &MpiProfile, out: &mut BytesMut) {
    // Reconstructable view: per-rank-kind stats (per-kind is derivable).
    let mut entries: Vec<(u32, EventKind, CallStats)> = Vec::new();
    for rank in 0..p.ranks() {
        for kind in p.kinds() {
            if let Some(s) = p.rank_kind(rank, kind) {
                entries.push((rank, kind, *s));
            }
        }
    }
    out.put_u32_le(entries.len() as u32);
    out.put_u32_le(p.ranks());
    out.put_u64_le(p.span_ns());
    for (rank, kind, s) in entries {
        out.put_u32_le(rank);
        out.put_u16_le(kind as u16);
        out.put_u64_le(s.hits);
        out.put_u64_le(s.time_ns);
        out.put_u64_le(s.bytes);
        out.put_u64_le(s.min_ns);
        out.put_u64_le(s.max_ns);
    }
}

/// Decodes a profile; the result merges into any other profile.
pub fn decode_profile(buf: &mut impl Buf) -> Result<MpiProfile, WireError> {
    need(buf, 16)?;
    let n = buf.get_u32_le() as usize;
    let _ranks = buf.get_u32_le();
    let span = buf.get_u64_le();
    let mut p = MpiProfile::new();
    for _ in 0..n {
        need(buf, 4 + 2 + 5 * 8)?;
        let rank = buf.get_u32_le();
        let kind_raw = buf.get_u16_le();
        let kind = EventKind::from_u16(kind_raw).ok_or(WireError::BadKind(kind_raw))?;
        let hits = buf.get_u64_le();
        let time_ns = buf.get_u64_le();
        let bytes = buf.get_u64_le();
        let min_ns = buf.get_u64_le();
        let max_ns = buf.get_u64_le();
        p.absorb_stats(rank, kind, hits, time_ns, bytes, min_ns, max_ns);
    }
    p.absorb_span(span);
    Ok(p)
}

// ---------------------------------------------------------------------
// Topology.
// ---------------------------------------------------------------------

/// Encodes a topology as its edge list.
pub fn encode_topology(t: &Topology, out: &mut BytesMut) {
    let edges = t.sorted_edges();
    out.put_u32_le(edges.len() as u32);
    out.put_u32_le(t.ranks());
    for ((s, d), w) in edges {
        out.put_u32_le(s);
        out.put_u32_le(d);
        out.put_u64_le(w.hits);
        out.put_u64_le(w.bytes);
        out.put_u64_le(w.time_ns);
    }
}

/// Decodes a topology.
pub fn decode_topology(buf: &mut impl Buf) -> Result<Topology, WireError> {
    need(buf, 8)?;
    let n = buf.get_u32_le() as usize;
    let _ranks = buf.get_u32_le();
    let mut t = Topology::new();
    for _ in 0..n {
        need(buf, 8 + 3 * 8)?;
        let s = buf.get_u32_le();
        let d = buf.get_u32_le();
        let hits = buf.get_u64_le();
        let bytes = buf.get_u64_le();
        let time = buf.get_u64_le();
        t.add_weighted(s, d, hits, bytes, time);
    }
    Ok(t)
}

// ---------------------------------------------------------------------
// WaitStats.
// ---------------------------------------------------------------------

fn encode_map(m: &std::collections::HashMap<u32, u64>, out: &mut BytesMut) {
    out.put_u32_le(m.len() as u32);
    let mut items: Vec<(u32, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
    items.sort_unstable();
    for (k, v) in items {
        out.put_u32_le(k);
        out.put_u64_le(v);
    }
}

fn decode_map(buf: &mut impl Buf) -> Result<std::collections::HashMap<u32, u64>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut m = std::collections::HashMap::with_capacity(n);
    for _ in 0..n {
        need(buf, 12)?;
        let k = buf.get_u32_le();
        let v = buf.get_u64_le();
        m.insert(k, v);
    }
    Ok(m)
}

/// Encodes wait-state statistics, including the dangling halves (they are
/// needed so the merge root can match transfers whose send and receive were
/// analyzed on different ranks).
pub fn encode_waitstats(w: &WaitStats, out: &mut BytesMut) {
    out.put_u64_le(w.matched);
    out.put_u64_le(w.unmatched);
    out.put_u64_le(w.total_late_sender_ns);
    out.put_u64_le(w.total_late_receiver_ns);
    encode_map(&w.late_sender_by_victim, out);
    encode_map(&w.late_sender_by_culprit, out);
    encode_map(&w.late_receiver_by_victim, out);
    out.put_u32_le(w.pending_sends.len() as u32);
    for &(src, dst, s) in &w.pending_sends {
        out.put_u32_le(src);
        out.put_u32_le(dst);
        out.put_u64_le(s.start_ns);
        out.put_u64_le(s.end_ns);
        out.put_u64_le(s.bytes);
    }
    out.put_u32_le(w.pending_recvs.len() as u32);
    for &(src, dst, r) in &w.pending_recvs {
        out.put_u32_le(src);
        out.put_u32_le(dst);
        out.put_u64_le(r.start_ns);
    }
}

/// Decodes wait-state statistics.
pub fn decode_waitstats(buf: &mut impl Buf) -> Result<WaitStats, WireError> {
    need(buf, 32)?;
    let matched = buf.get_u64_le();
    let unmatched = buf.get_u64_le();
    let total_late_sender_ns = buf.get_u64_le();
    let total_late_receiver_ns = buf.get_u64_le();
    let late_sender_by_victim = decode_map(buf)?;
    let late_sender_by_culprit = decode_map(buf)?;
    let late_receiver_by_victim = decode_map(buf)?;
    need(buf, 4)?;
    let n_sends = buf.get_u32_le() as usize;
    let mut pending_sends = Vec::with_capacity(n_sends.min(4096));
    for _ in 0..n_sends {
        need(buf, 8 + 3 * 8)?;
        let src = buf.get_u32_le();
        let dst = buf.get_u32_le();
        pending_sends.push((
            src,
            dst,
            SendSide {
                start_ns: buf.get_u64_le(),
                end_ns: buf.get_u64_le(),
                bytes: buf.get_u64_le(),
            },
        ));
    }
    need(buf, 4)?;
    let n_recvs = buf.get_u32_le() as usize;
    let mut pending_recvs = Vec::with_capacity(n_recvs.min(4096));
    for _ in 0..n_recvs {
        need(buf, 8 + 8)?;
        let src = buf.get_u32_le();
        let dst = buf.get_u32_le();
        pending_recvs.push((
            src,
            dst,
            RecvSide {
                start_ns: buf.get_u64_le(),
            },
        ));
    }
    Ok(WaitStats {
        matched,
        unmatched,
        pending_sends,
        pending_recvs,
        total_late_sender_ns,
        total_late_receiver_ns,
        late_sender_by_victim,
        late_sender_by_culprit,
        late_receiver_by_victim,
    })
}

/// Merges wait-state partials. Counters add up; each side's dangling halves
/// are re-fed through a matcher so a send analyzed on one rank still matches
/// its receive analyzed on another (the common case: the two halves of a
/// transfer are recorded by different writers, which stream to different
/// analyzer ranks).
pub fn merge_waitstats(into: &mut WaitStats, other: &WaitStats) {
    let mut ws = WaitStateAnalysis::from_stats(into);
    ws.absorb(other);
    *into = ws.finish().clone();
}

/// One application's complete partial aggregate (what an analyzer rank
/// ships to the merge root).
#[derive(Debug, Clone)]
pub struct AppPartial {
    pub app_id: u16,
    pub packs: u64,
    pub wire_bytes: u64,
    pub decode_errors: u64,
    pub profile: MpiProfile,
    pub topology: Topology,
    pub waitstate: Option<WaitStats>,
    /// Time-resolved standard-metrics series, when the engine runs the
    /// metrics knowledge source.
    pub metrics: Option<MetricsSeries>,
}

/// Encodes a set of per-application partials into one buffer.
pub fn encode_partials(apps: &[AppPartial]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u32_le(apps.len() as u32);
    for a in apps {
        out.put_u16_le(a.app_id);
        out.put_u64_le(a.packs);
        out.put_u64_le(a.wire_bytes);
        out.put_u64_le(a.decode_errors);
        encode_profile(&a.profile, &mut out);
        encode_topology(&a.topology, &mut out);
        match &a.waitstate {
            Some(w) => {
                out.put_u8(1);
                encode_waitstats(w, &mut out);
            }
            None => out.put_u8(0),
        }
        match &a.metrics {
            Some(m) => {
                out.put_u8(1);
                m.encode_into(&mut out);
            }
            None => out.put_u8(0),
        }
    }
    out.freeze()
}

/// Decodes a partial set.
pub fn decode_partials(mut buf: &[u8]) -> Result<Vec<AppPartial>, WireError> {
    need(&buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        need(&buf, 2 + 24)?;
        let app_id = buf.get_u16_le();
        let packs = buf.get_u64_le();
        let wire_bytes = buf.get_u64_le();
        let decode_errors = buf.get_u64_le();
        let profile = decode_profile(&mut buf)?;
        let topology = decode_topology(&mut buf)?;
        need(&buf, 1)?;
        let waitstate = match buf.get_u8() {
            0 => None,
            1 => Some(decode_waitstats(&mut buf)?),
            t => return Err(WireError::BadTag(t)),
        };
        need(&buf, 1)?;
        let metrics = match buf.get_u8() {
            0 => None,
            1 => Some(MetricsSeries::decode(&mut buf)?),
            t => return Err(WireError::BadTag(t)),
        };
        out.push(AppPartial {
            app_id,
            packs,
            wire_bytes,
            decode_errors,
            profile,
            topology,
            waitstate,
            metrics,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::Event;

    fn sample_profile() -> MpiProfile {
        let mut p = MpiProfile::new();
        for i in 0..40u32 {
            p.add(&Event {
                time_ns: i as u64 * 100,
                duration_ns: 10 + i as u64,
                kind: EventKind::ALL[(i % 9) as usize + 2],
                rank: i % 4,
                peer: ((i + 1) % 4) as i32,
                tag: 0,
                comm: 0,
                bytes: i as u64 * 8,
            });
        }
        p
    }

    #[test]
    fn profile_roundtrip_preserves_aggregates() {
        let p = sample_profile();
        let mut buf = BytesMut::new();
        encode_profile(&p, &mut buf);
        let q = decode_profile(&mut buf.freeze()).unwrap();
        assert_eq!(p.events(), q.events());
        assert_eq!(p.ranks(), q.ranks());
        assert_eq!(p.span_ns(), q.span_ns());
        for kind in p.kinds() {
            assert_eq!(p.kind(kind), q.kind(kind), "{}", kind.name());
        }
    }

    #[test]
    fn decoded_profile_merges_like_the_original() {
        let a = sample_profile();
        let mut direct = MpiProfile::new();
        direct.merge(&a);
        direct.merge(&a);
        let mut buf = BytesMut::new();
        encode_profile(&a, &mut buf);
        let decoded = decode_profile(&mut buf.freeze()).unwrap();
        let mut via_wire = MpiProfile::new();
        via_wire.merge(&decoded);
        via_wire.merge(&decoded);
        for kind in direct.kinds() {
            assert_eq!(direct.kind(kind), via_wire.kind(kind));
        }
    }

    #[test]
    fn topology_roundtrip() {
        let mut t = Topology::new();
        t.add_weighted(0, 1, 3, 300, 30);
        t.add_weighted(5, 2, 1, 100, 10);
        let mut buf = BytesMut::new();
        encode_topology(&t, &mut buf);
        let q = decode_topology(&mut buf.freeze()).unwrap();
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.edge(0, 1).unwrap().bytes, 300);
        assert_eq!(q.edge(5, 2).unwrap().hits, 1);
        assert_eq!(q.ranks(), 6);
    }

    #[test]
    fn waitstats_roundtrip_and_merge() {
        let mut w = WaitStats {
            matched: 10,
            total_late_sender_ns: 500,
            ..Default::default()
        };
        w.late_sender_by_victim.insert(3, 500);
        w.late_sender_by_culprit.insert(1, 500);
        let mut buf = BytesMut::new();
        encode_waitstats(&w, &mut buf);
        let q = decode_waitstats(&mut buf.freeze()).unwrap();
        assert_eq!(q.matched, 10);
        assert_eq!(q.late_sender_by_victim.get(&3), Some(&500));

        let mut merged = WaitStats::default();
        merge_waitstats(&mut merged, &w);
        merge_waitstats(&mut merged, &q);
        assert_eq!(merged.matched, 20);
        assert_eq!(merged.late_sender_by_victim.get(&3), Some(&1000));
    }

    #[test]
    fn partials_roundtrip() {
        let apps = vec![
            AppPartial {
                app_id: 0,
                packs: 7,
                wire_bytes: 999,
                decode_errors: 0,
                profile: sample_profile(),
                topology: Topology::new(),
                waitstate: None,
                metrics: None,
            },
            AppPartial {
                app_id: 3,
                packs: 1,
                wire_bytes: 48,
                decode_errors: 1,
                profile: MpiProfile::new(),
                topology: {
                    let mut t = Topology::new();
                    t.add_weighted(1, 0, 5, 50, 5);
                    t
                },
                waitstate: Some(WaitStats {
                    matched: 4,
                    ..WaitStats::default()
                }),
                metrics: Some({
                    let mut m = MetricsSeries::new(1000);
                    m.add(&opmr_events::Event::basic(EventKind::Send, 2, 500, 800));
                    m
                }),
            },
        ];
        let enc = encode_partials(&apps);
        let dec = decode_partials(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].app_id, 0);
        assert_eq!(dec[0].packs, 7);
        assert_eq!(dec[0].profile.events(), 40);
        assert!(dec[0].metrics.is_none());
        assert_eq!(dec[1].decode_errors, 1);
        assert_eq!(dec[1].topology.edge(1, 0).unwrap().hits, 5);
        assert_eq!(dec[1].waitstate.as_ref().unwrap().matched, 4);
        assert_eq!(dec[1].metrics, apps[1].metrics);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let apps = vec![AppPartial {
            app_id: 0,
            packs: 1,
            wire_bytes: 1,
            decode_errors: 0,
            profile: sample_profile(),
            topology: Topology::new(),
            waitstate: None,
            metrics: None,
        }];
        let enc = encode_partials(&apps);
        for cut in [0, 3, 10, enc.len() - 1] {
            assert!(decode_partials(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
