//! Selective-trace IO proxy (the paper's Section VI future work: "a
//! module, acting as an IO proxy, to generate selective traces in the OTF2
//! format in order to combine our analysis with existing tools such as
//! Vampir").
//!
//! The proxy is a knowledge source that subscribes to the decoded event
//! stream, applies a *selection predicate* (call class, rank subset, time
//! window) and re-encodes only the surviving events into pack files — so a
//! user can keep the zero-trace online workflow and still extract a small
//! replayable trace of just the interesting region.

use opmr_events::{Event, EventKind, EventPack};
use parking_lot::Mutex;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Selection predicate for the proxy.
#[derive(Clone, Default)]
pub struct Selection {
    /// Keep events of these kinds (None = all kinds).
    pub kinds: Option<Vec<EventKind>>,
    /// Keep events of ranks below this bound (None = all ranks).
    pub max_rank: Option<u32>,
    /// Keep events starting within `[from_ns, to_ns)` (None = all times).
    pub window_ns: Option<(u64, u64)>,
    /// Keep only events moving at least this many bytes.
    pub min_bytes: u64,
}

impl Selection {
    /// Does an event survive the selection?
    pub fn keep(&self, e: &Event) -> bool {
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&e.kind) {
                return false;
            }
        }
        if let Some(max) = self.max_rank {
            if e.rank >= max {
                return false;
            }
        }
        if let Some((from, to)) = self.window_ns {
            if e.time_ns < from || e.time_ns >= to {
                return false;
            }
        }
        e.bytes >= self.min_bytes
    }
}

/// Shared state of the proxy (a KS closure and the finalizer both hold it).
pub struct TraceProxy {
    inner: Arc<ProxyInner>,
}

struct ProxyInner {
    selection: Selection,
    path: PathBuf,
    state: Mutex<ProxyState>,
}

struct ProxyState {
    buf: Vec<Event>,
    seq: u32,
    written_events: u64,
    seen_events: u64,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

/// Events per emitted pack.
const PACK_EVENTS: usize = 512;

impl TraceProxy {
    /// Creates a proxy writing selected events (length-prefixed packs, the
    /// same `.opmr` format the trace baseline uses) to `path`.
    pub fn create(path: impl AsRef<Path>, selection: Selection) -> std::io::Result<TraceProxy> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        Ok(TraceProxy {
            inner: Arc::new(ProxyInner {
                selection,
                path,
                state: Mutex::new(ProxyState {
                    buf: Vec::with_capacity(PACK_EVENTS),
                    seq: 0,
                    written_events: 0,
                    seen_events: 0,
                    file: Some(file),
                }),
            }),
        })
    }

    /// Feeds a batch of decoded events (what the KS closure calls).
    pub fn offer(&self, app_id: u16, events: &[Event]) {
        let mut st = self.inner.state.lock();
        for e in events {
            st.seen_events += 1;
            if self.inner.selection.keep(e) {
                st.buf.push(*e);
                if st.buf.len() >= PACK_EVENTS {
                    Self::flush_locked(&mut st, app_id);
                }
            }
        }
    }

    fn flush_locked(st: &mut ProxyState, app_id: u16) {
        if st.buf.is_empty() {
            return;
        }
        let events = std::mem::take(&mut st.buf);
        st.written_events += events.len() as u64;
        let rank = events.first().map(|e| e.rank).unwrap_or(0);
        let pack = EventPack::new(app_id, rank, st.seq, events);
        st.seq += 1;
        let encoded = pack.encode();
        if let Some(f) = st.file.as_mut() {
            let _ = f.write_all(&(encoded.len() as u32).to_le_bytes());
            let _ = f.write_all(&encoded);
        }
        st.buf = Vec::with_capacity(PACK_EVENTS);
    }

    /// Flushes and closes the file; returns `(seen, written)` counts.
    pub fn finish(&self, app_id: u16) -> std::io::Result<(u64, u64)> {
        let mut st = self.inner.state.lock();
        Self::flush_locked(&mut st, app_id);
        if let Some(mut f) = st.file.take() {
            f.flush()?;
        }
        Ok((st.seen_events, st.written_events))
    }

    /// Destination path.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// A shareable handle for KS closures.
    pub fn handle(&self) -> TraceProxy {
        TraceProxy {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Reads a proxy trace back (for replay or hand-off to other tools).
pub fn read_proxy_trace(path: &Path) -> std::io::Result<Vec<EventPack>> {
    let data = std::fs::read(path)?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 4 <= data.len() {
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        off += 4;
        if off + len > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated proxy trace",
            ));
        }
        let pack = EventPack::decode(&data[off..off + len]).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad pack: {e}"))
        })?;
        out.push(pack);
        off += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, rank: u32, t: u64, bytes: u64) -> Event {
        Event {
            time_ns: t,
            duration_ns: 10,
            kind,
            rank,
            peer: 0,
            tag: 0,
            comm: 0,
            bytes,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("opmr_proxy_{name}_{}", std::process::id()))
    }

    #[test]
    fn selection_predicates() {
        let sel = Selection {
            kinds: Some(vec![EventKind::Send]),
            max_rank: Some(4),
            window_ns: Some((100, 200)),
            min_bytes: 10,
        };
        assert!(sel.keep(&ev(EventKind::Send, 0, 150, 64)));
        assert!(!sel.keep(&ev(EventKind::Recv, 0, 150, 64)), "kind filter");
        assert!(!sel.keep(&ev(EventKind::Send, 4, 150, 64)), "rank filter");
        assert!(!sel.keep(&ev(EventKind::Send, 0, 250, 64)), "window filter");
        assert!(!sel.keep(&ev(EventKind::Send, 0, 150, 5)), "size filter");
    }

    #[test]
    fn roundtrip_selected_events() {
        let path = tmp("roundtrip");
        let proxy = TraceProxy::create(
            &path,
            Selection {
                kinds: Some(vec![EventKind::Send]),
                ..Selection::default()
            },
        )
        .unwrap();
        let events: Vec<Event> = (0..1000)
            .map(|i| {
                ev(
                    if i % 2 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    i % 8,
                    i as u64,
                    64,
                )
            })
            .collect();
        proxy.offer(3, &events);
        let (seen, written) = proxy.finish(3).unwrap();
        assert_eq!(seen, 1000);
        assert_eq!(written, 500);

        let packs = read_proxy_trace(&path).unwrap();
        let back: Vec<Event> = packs
            .iter()
            .flat_map(|p| p.events.iter().copied())
            .collect();
        assert_eq!(back.len(), 500);
        assert!(back.iter().all(|e| e.kind == EventKind::Send));
        assert!(packs.iter().all(|p| p.header.app_id == 3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_selection_writes_nothing() {
        let path = tmp("empty");
        let proxy = TraceProxy::create(
            &path,
            Selection {
                min_bytes: u64::MAX,
                ..Selection::default()
            },
        )
        .unwrap();
        proxy.offer(0, &[ev(EventKind::Send, 0, 0, 64)]);
        let (seen, written) = proxy.finish(0).unwrap();
        assert_eq!((seen, written), (1, 0));
        assert!(read_proxy_trace(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn handles_share_state() {
        let path = tmp("share");
        let proxy = TraceProxy::create(&path, Selection::default()).unwrap();
        let h = proxy.handle();
        h.offer(0, &[ev(EventKind::Send, 0, 0, 64)]);
        proxy.offer(0, &[ev(EventKind::Recv, 1, 1, 64)]);
        let (seen, written) = proxy.finish(0).unwrap();
        assert_eq!((seen, written), (2, 2));
        std::fs::remove_file(&path).unwrap();
    }
}
