//! Property tests for the analysis aggregates: merges are order-insensitive
//! and lossless, renderings never panic, wire round-trips are exact.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use bytes::BytesMut;
use opmr_analysis::wire;
use opmr_analysis::{DensityMap, MpiProfile, Topology};
use opmr_events::{Event, EventKind};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u64..1_000_000,
        0u64..10_000,
        0..EventKind::ALL.len(),
        0u32..16,
        -1i32..16,
        0u64..1_000_000,
    )
        .prop_map(|(t, d, k, rank, peer, bytes)| Event {
            time_ns: t,
            duration_ns: d,
            kind: EventKind::ALL[k],
            rank,
            peer,
            tag: 0,
            comm: 0,
            bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting an event stream at any point and merging the two partial
    /// profiles equals folding the whole stream.
    #[test]
    fn profile_merge_is_split_invariant(
        events in proptest::collection::vec(arb_event(), 1..120),
        split in any::<proptest::sample::Index>(),
    ) {
        let cut = split.index(events.len());
        let mut whole = MpiProfile::new();
        whole.add_all(&events);
        let mut a = MpiProfile::new();
        a.add_all(&events[..cut]);
        let mut b = MpiProfile::new();
        b.add_all(&events[cut..]);
        a.merge(&b);
        prop_assert_eq!(whole.events(), a.events());
        prop_assert_eq!(whole.ranks(), a.ranks());
        prop_assert_eq!(whole.span_ns(), a.span_ns());
        for kind in whole.kinds() {
            prop_assert_eq!(whole.kind(kind), a.kind(kind));
        }
    }

    /// Profile wire round-trip preserves every aggregate.
    #[test]
    fn profile_wire_roundtrip(events in proptest::collection::vec(arb_event(), 0..100)) {
        let mut p = MpiProfile::new();
        p.add_all(&events);
        let mut buf = BytesMut::new();
        wire::encode_profile(&p, &mut buf);
        let q = wire::decode_profile(&mut buf.freeze()).unwrap();
        prop_assert_eq!(p.events(), q.events());
        for kind in p.kinds() {
            prop_assert_eq!(p.kind(kind), q.kind(kind));
        }
        for rank in 0..p.ranks() {
            for kind in p.kinds() {
                prop_assert_eq!(p.rank_kind(rank, kind), q.rank_kind(rank, kind));
            }
        }
    }

    /// Topology split-merge invariance + wire round-trip.
    #[test]
    fn topology_merge_and_wire(
        events in proptest::collection::vec(arb_event(), 1..120),
        split in any::<proptest::sample::Index>(),
    ) {
        let cut = split.index(events.len());
        let mut whole = Topology::new();
        whole.add_all(&events);
        let mut a = Topology::new();
        a.add_all(&events[..cut]);
        let mut b = Topology::new();
        b.add_all(&events[cut..]);
        a.merge(&b);
        prop_assert_eq!(whole.edge_count(), a.edge_count());
        for ((s, d), w) in whole.sorted_edges() {
            prop_assert_eq!(a.edge(s, d), Some(&w));
        }
        let mut buf = BytesMut::new();
        wire::encode_topology(&whole, &mut buf);
        let q = wire::decode_topology(&mut buf.freeze()).unwrap();
        prop_assert_eq!(q.edge_count(), whole.edge_count());
        for ((s, d), w) in whole.sorted_edges() {
            prop_assert_eq!(q.edge(s, d), Some(&w));
        }
    }

    /// Density renderings are total: any value vector renders without
    /// panicking, with consistent dimensions.
    #[test]
    fn density_renderings_are_total(
        values in proptest::collection::vec(-1.0e12f64..1.0e12, 0..200),
        pixel in 1usize..6,
    ) {
        let m = DensityMap::new("prop", values.clone());
        let ascii = m.ascii();
        if values.is_empty() {
            prop_assert!(ascii.is_empty());
        } else {
            let (cols, rows) = m.grid_shape();
            prop_assert!(cols * rows >= values.len());
            let body_chars: usize = ascii.lines().skip(1).map(|l| l.len()).sum();
            prop_assert_eq!(body_chars, values.len());
        }
        let pgm = m.to_pgm(pixel);
        prop_assert!(pgm.starts_with(b"P5\n"));
        let s = m.stats();
        prop_assert!(s.min <= s.max || values.is_empty());
        prop_assert!(s.cv >= 0.0);
    }

    /// Timeline bin sums conserve the total busy time of filtered events:
    /// every matching nanosecond lands in exactly one bin (out-of-span mass
    /// clamps into the last bin rather than vanishing). Spans are integer
    /// multiples of the bin count so bin edges sit on whole nanoseconds.
    #[test]
    fn timeline_bins_conserve_filtered_busy_time(
        events in proptest::collection::vec(arb_event(), 0..150),
        bins in 1usize..24,
        bin_ns in 10u64..5_000,
    ) {
        let span = bin_ns * bins as u64;
        let mut tl = opmr_analysis::Timeline::new(4, bins, span, |k| k.is_mpi());
        tl.add_all(&events);
        let expect: f64 = events
            .iter()
            .filter(|e| e.kind.is_mpi())
            .map(|e| e.duration_ns as f64)
            .sum();
        let got: f64 = (0..tl.ranks())
            .map(|r| (0..bins).map(|b| tl.fraction(r, b) * bin_ns as f64).sum::<f64>())
            .sum();
        prop_assert!(
            (got - expect).abs() <= 1e-6 * expect.max(1.0),
            "bin sums {} vs filtered busy time {}", got, expect
        );
    }

    /// The pattern classifier is total and its coverage is a valid score.
    #[test]
    fn classifier_is_total(events in proptest::collection::vec(arb_event(), 0..150)) {
        let mut t = Topology::new();
        t.add_all(&events);
        let m = opmr_analysis::classify(&t);
        prop_assert!((0.0..=1.0).contains(&m.coverage) || m.coverage == 0.35,
            "coverage {}", m.coverage);
    }
}

/// Pinned replay of the shrunken failure recorded in
/// `prop_analysis.proptest-regressions`
/// (`values = [-400385209142.7387, 0.0], pixel = 1`): a two-value map whose
/// huge negative outlier once broke the rendering invariants. The vendored
/// proptest shim does not read regression files, so the case is kept alive
/// here as a plain deterministic test; keep it in sync with that file.
#[test]
fn regression_two_value_map_with_huge_negative_outlier() {
    let values = vec![-400385209142.7387_f64, 0.0];
    let m = DensityMap::new("prop", values.clone());
    let ascii = m.ascii();
    let (cols, rows) = m.grid_shape();
    assert!(cols * rows >= values.len());
    let body_chars: usize = ascii.lines().skip(1).map(|l| l.len()).sum();
    assert_eq!(body_chars, values.len());
    let pgm = m.to_pgm(1);
    assert!(pgm.starts_with(b"P5\n"));
    let s = m.stats();
    assert!(s.min <= s.max);
    assert!(s.cv >= 0.0);
}
