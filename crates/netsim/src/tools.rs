//! Cost models of the measurement chains compared in Figure 16.
//!
//! Each model describes *where instrumentation time goes* for one tool
//! family; the simulator invokes it after every communication op of every
//! rank, so perturbation lands on the virtual timeline exactly where the
//! real tool perturbs the application.

use crate::machine::Machine;
use std::collections::VecDeque;

/// Wire size of one event record (matches `opmr_events::EVENT_WIRE_SIZE`).
pub const EVENT_BYTES: u64 = 48;

/// A measurement chain model.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolModel {
    /// Uninstrumented reference run.
    None,
    /// The paper's online coupling: per-event interception cost plus event
    /// packs shipped through a VMPI stream with a bounded asynchronous
    /// window. When the analyzer side cannot drain fast enough the writer
    /// stalls (real back-pressure).
    OnlineCoupling {
        /// Interception + pack-append cost per event, ns.
        per_event_ns: f64,
        /// Stream block size, bytes (≈1 MB in the paper).
        block_size: u64,
        /// Asynchronous buffers per writer (`NA`).
        n_async: usize,
        /// Instrumented processes per analysis process (the figure-15 runs
        /// use 1; figure 16 uses 1 as well).
        writers_per_reader: f64,
    },
    /// Profile-only tools (mpiP, Score-P profile mode): per-event update of
    /// in-memory aggregates, no I/O until the final tiny report.
    ProfileOnly { per_event_ns: f64 },
    /// Trace-to-file tools (Score-P traces + SIONlib): per-event record
    /// append plus buffer flushes through the shared file system, which is
    /// where contention grows with scale.
    TraceToFs {
        per_event_ns: f64,
        /// Local trace buffer flushed when full, bytes.
        buffer_size: u64,
    },
    /// Profile plus post-processing at finalize (Scalasca summary mode).
    ProfileWithReplay {
        per_event_ns: f64,
        /// Finalize-time reduction cost factor (ns × log2(ranks)).
        finalize_ns_log: f64,
    },
}

impl ToolModel {
    /// The paper's online coupling with calibrated defaults.
    pub fn online_coupling(writers_per_reader: f64) -> ToolModel {
        ToolModel::OnlineCoupling {
            per_event_ns: 2_200.0,
            block_size: 1 << 20,
            n_async: 3,
            writers_per_reader,
        }
    }

    /// Score-P profile-mode defaults.
    pub fn scorep_profile() -> ToolModel {
        ToolModel::ProfileOnly {
            per_event_ns: 1_700.0,
        }
    }

    /// Score-P trace-mode (+SIONlib) defaults.
    pub fn scorep_trace() -> ToolModel {
        ToolModel::TraceToFs {
            per_event_ns: 2_000.0,
            buffer_size: 16 << 20,
        }
    }

    /// Scalasca summary-mode defaults.
    pub fn scalasca() -> ToolModel {
        ToolModel::ProfileWithReplay {
            per_event_ns: 1_900.0,
            finalize_ns_log: 2.5e6,
        }
    }

    /// Bytes of measurement data produced per intercepted event.
    pub fn event_bytes(&self) -> u64 {
        match self {
            ToolModel::None
            | ToolModel::ProfileOnly { .. }
            | ToolModel::ProfileWithReplay { .. } => 0,
            ToolModel::OnlineCoupling { .. } | ToolModel::TraceToFs { .. } => EVENT_BYTES,
        }
    }
}

/// Per-rank mutable tool state during simulation.
#[derive(Debug, Default)]
pub struct ToolState {
    /// Bytes accumulated toward the next block/flush.
    pending_bytes: u64,
    /// Completion times of in-flight stream blocks (online coupling).
    in_flight: VecDeque<f64>,
    /// Virtual time when the previous block finishes draining.
    last_drain_end: f64,
    /// Stall time accumulated by this rank, ns.
    pub stall_ns: f64,
    /// File-system time accumulated by this rank, ns.
    pub fs_ns: f64,
    /// Events intercepted.
    pub events: u64,
}

impl ToolState {
    /// Applies the tool's per-event cost after a communication op that
    /// ended at `*t` and produced `count` events (an instrumented halo
    /// exchange records isend + irecv + waits + copies, not one record);
    /// advances `*t` accordingly.
    pub fn after_comm(
        &mut self,
        tool: &ToolModel,
        machine: &Machine,
        job_ranks: usize,
        t: &mut f64,
        count: u64,
    ) {
        match tool {
            ToolModel::None => {}
            ToolModel::ProfileOnly { per_event_ns }
            | ToolModel::ProfileWithReplay { per_event_ns, .. } => {
                self.events += count;
                *t += per_event_ns * count as f64;
            }
            ToolModel::OnlineCoupling {
                per_event_ns,
                block_size,
                n_async,
                writers_per_reader,
            } => {
                self.events += count;
                *t += per_event_ns * count as f64;
                self.pending_bytes += EVENT_BYTES * count;
                while self.pending_bytes >= *block_size {
                    self.pending_bytes -= *block_size;
                    self.ship_block(machine, *block_size, *n_async, *writers_per_reader, t);
                }
            }
            ToolModel::TraceToFs {
                per_event_ns,
                buffer_size,
            } => {
                self.events += count;
                *t += per_event_ns * count as f64;
                self.pending_bytes += EVENT_BYTES * count;
                while self.pending_bytes >= *buffer_size {
                    self.pending_bytes -= *buffer_size;
                    let cost = machine.fs.write_ns(*buffer_size, job_ranks);
                    self.fs_ns += cost;
                    *t += cost;
                }
            }
        }
    }

    fn ship_block(
        &mut self,
        machine: &Machine,
        block_size: u64,
        n_async: usize,
        writers_per_reader: f64,
        t: &mut f64,
    ) {
        // Effective per-writer stream bandwidth: writer NIC share capped by
        // its share of the analyzer's drain rate.
        let drain = machine
            .writer_stream_bw
            .min(machine.reader_drain_bw / writers_per_reader.max(1.0));
        // Back-pressure: bounded asynchronous window.
        while self.in_flight.len() >= n_async {
            let Some(head) = self.in_flight.pop_front() else {
                break;
            };
            if head > *t {
                self.stall_ns += head - *t;
                *t = head;
            }
        }
        let start = self.last_drain_end.max(*t);
        let done = start + block_size as f64 / drain * 1e9;
        self.last_drain_end = done;
        self.in_flight.push_back(done);
        // The isend itself is cheap.
        *t += 5_000.0;
    }

    /// Applies finalize-time costs once a rank's program completes.
    pub fn finish(&mut self, tool: &ToolModel, machine: &Machine, job_ranks: usize, t: &mut f64) {
        match tool {
            ToolModel::None | ToolModel::ProfileOnly { .. } => {}
            ToolModel::ProfileWithReplay {
                finalize_ns_log, ..
            } => {
                let log = (job_ranks.max(2) as f64).log2();
                *t += finalize_ns_log * log;
            }
            ToolModel::OnlineCoupling { .. } => {
                // Drain the remaining window and the last partial pack.
                if self.pending_bytes > 0 {
                    let drain = machine.writer_stream_bw;
                    let start = self.last_drain_end.max(*t);
                    self.last_drain_end = start + self.pending_bytes as f64 / drain * 1e9;
                    self.pending_bytes = 0;
                    self.in_flight.push_back(self.last_drain_end);
                }
                while let Some(head) = self.in_flight.pop_front() {
                    if head > *t {
                        self.stall_ns += head - *t;
                        *t = head;
                    }
                }
            }
            ToolModel::TraceToFs { buffer_size: _, .. } => {
                if self.pending_bytes > 0 {
                    let cost = machine.fs.write_ns(self.pending_bytes, job_ranks);
                    self.fs_ns += cost;
                    *t += cost;
                    self.pending_bytes = 0;
                }
                // Trace-file finalization metadata.
                let cost = machine.fs.meta_op_ns(job_ranks);
                self.fs_ns += cost;
                *t += cost;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::tera100;

    #[test]
    fn reference_model_costs_nothing() {
        let m = tera100();
        let mut ts = ToolState::default();
        let mut t = 100.0;
        ts.after_comm(&ToolModel::None, &m, 1000, &mut t, 1);
        ts.finish(&ToolModel::None, &m, 1000, &mut t);
        assert_eq!(t, 100.0);
        assert_eq!(ts.events, 0);
    }

    #[test]
    fn profile_adds_constant_per_event() {
        let m = tera100();
        let tool = ToolModel::scorep_profile();
        let mut ts = ToolState::default();
        let mut t = 0.0;
        for _ in 0..100 {
            ts.after_comm(&tool, &m, 1000, &mut t, 1);
        }
        assert_eq!(ts.events, 100);
        assert!((t - 170_000.0).abs() < 1.0);
    }

    #[test]
    fn online_coupling_idle_when_event_rate_low() {
        // Few events: never fills a block, so only per-event cost applies
        // until the finalize drain.
        let m = tera100();
        let tool = ToolModel::online_coupling(1.0);
        let mut ts = ToolState::default();
        let mut t = 0.0;
        for _ in 0..10 {
            ts.after_comm(&tool, &m, 100, &mut t, 1);
        }
        assert_eq!(ts.stall_ns, 0.0);
        let before = t;
        ts.finish(&tool, &m, 100, &mut t);
        // Final partial pack of 480 bytes drains almost instantly but the
        // writer does wait for it.
        assert!(t >= before);
        assert_eq!(ts.pending_bytes, 0);
    }

    #[test]
    fn online_coupling_backpressure_stalls_fast_producers() {
        // Producing blocks back-to-back at rate >> drain rate must stall.
        let m = tera100();
        let tool = ToolModel::OnlineCoupling {
            per_event_ns: 0.0,
            block_size: 1 << 20,
            n_async: 3,
            writers_per_reader: 1.0,
        };
        let mut ts = ToolState::default();
        let mut t = 0.0;
        let events_for_blocks = (40u64 << 20) / EVENT_BYTES;
        for _ in 0..events_for_blocks {
            ts.after_comm(&tool, &m, 2, &mut t, 1);
        }
        ts.finish(&tool, &m, 2, &mut t);
        // 40 MB at 38.5 MB/s ≈ 1.04 s.
        assert!(ts.stall_ns > 0.8e9, "stall={}", ts.stall_ns);
        assert!(t >= 1.0e9, "t={t}");
    }

    #[test]
    fn trace_model_pays_fs_contention() {
        let m = tera100();
        let tool = ToolModel::scorep_trace();
        let run = |ranks: usize| {
            let mut ts = ToolState::default();
            let mut t = 0.0;
            for _ in 0..2_000_000 {
                ts.after_comm(&tool, &m, ranks, &mut t, 1);
            }
            ts.finish(&tool, &m, ranks, &mut t);
            (t, ts.fs_ns)
        };
        let (t_small, fs_small) = run(64);
        let (t_big, fs_big) = run(4096);
        assert!(fs_big > fs_small, "fs time grows with scale");
        assert!(t_big > t_small);
    }

    #[test]
    fn scalasca_finalize_scales_logarithmically() {
        let m = tera100();
        let tool = ToolModel::scalasca();
        let fin = |ranks: usize| {
            let mut ts = ToolState::default();
            let mut t = 0.0;
            ts.finish(&tool, &m, ranks, &mut t);
            t
        };
        assert!(fin(4096) > fin(64));
        assert!(fin(4096) < fin(64) * 3.0, "log growth, not linear");
    }

    #[test]
    fn event_bytes_only_for_event_streams() {
        assert_eq!(ToolModel::None.event_bytes(), 0);
        assert_eq!(ToolModel::scorep_profile().event_bytes(), 0);
        assert_eq!(ToolModel::online_coupling(1.0).event_bytes(), EVENT_BYTES);
        assert_eq!(ToolModel::scorep_trace().event_bytes(), EVENT_BYTES);
    }
}
