//! Calibrated machine models.
//!
//! Constants are calibrated against the absolute numbers the paper reports,
//! so the reproduced figures land in the right regimes:
//!
//! * Figure 14 measures 98.5 GB/s cumulative stream throughput with 2560
//!   writers and 2560 readers on Tera 100 → effective per-writer stream
//!   bandwidth ≈ 38.5 MB/s at full 1:1 allocation;
//! * the stream/file-system crossover sits near 1 reader per ~25 writers
//!   against a 9.1 GB/s file-system share for 2560 cores (500 GB/s machine
//!   wide) → per-reader drain ≈ 100 MB/s;
//! * `Bi(SP.C) = 2.37 GB/s` and `Bi(SP.D) = 334.99 MB/s` at 900 ranks pin
//!   the compute-rate constant used by the workload generators.

/// Parallel file-system model (Lustre-class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsModel {
    /// Aggregate machine-wide bandwidth, bytes/s (benchmark peak).
    pub aggregate_bps: f64,
    /// Best-case single-client bandwidth, bytes/s.
    pub per_client_bps: f64,
    /// Base metadata-operation latency, ns.
    pub meta_ns: f64,
    /// Concurrent clients at which metadata cost has doubled.
    pub meta_contention_clients: f64,
    /// Fraction of the peak aggregate achievable by synchronized small
    /// buffered writes from many clients (trace-flush storms); Lustre-class
    /// systems land at a few percent of peak in this regime.
    pub write_efficiency: f64,
}

impl FsModel {
    /// Cost of one write of `bytes` with `clients` concurrent writers.
    pub fn write_ns(&self, bytes: u64, clients: usize) -> f64 {
        let clients = clients.max(1) as f64;
        let effective = self.aggregate_bps * self.write_efficiency.clamp(0.0, 1.0);
        let bw = (effective / clients).min(self.per_client_bps);
        self.meta_ns * (1.0 + clients / self.meta_contention_clients) + bytes as f64 / bw * 1e9
    }

    /// Cost of one metadata-only operation (open/create).
    pub fn meta_op_ns(&self, clients: usize) -> f64 {
        let clients = clients.max(1) as f64;
        self.meta_ns * (1.0 + clients / self.meta_contention_clients)
    }
}

/// A simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    pub name: &'static str,
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Effective per-core compute rate, flop/s (nominal peak × HPC
    /// efficiency — calibrates compute intervals, hence `Bi`).
    pub core_flops: f64,
    /// Per-rank point-to-point bandwidth, bytes/s (node link shared by the
    /// node's ranks).
    pub rank_bw: f64,
    /// Point-to-point message latency, ns.
    pub latency_ns: f64,
    /// Effective per-writer stream bandwidth, bytes/s (Figure 14, 1:1).
    pub writer_stream_bw: f64,
    /// Effective per-reader stream drain rate, bytes/s.
    pub reader_drain_bw: f64,
    /// Cross-partition bisection bandwidth per participating node, bytes/s.
    pub bisection_per_node: f64,
    /// Eager/rendezvous protocol threshold, bytes.
    pub eager_limit: u64,
    pub fs: FsModel,
}

impl Machine {
    /// Total cores of the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Nodes needed for `ranks` ranks (dense placement).
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Time for a point-to-point transfer of `bytes`, ns.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.rank_bw * 1e9
    }

    /// Compute interval for `flops` floating-point operations, ns.
    pub fn compute_ns(&self, flops: f64) -> f64 {
        flops / self.core_flops * 1e9
    }

    /// File-system bandwidth share available to an allocation of `ranks`
    /// ranks, bytes/s (the paper's "scaled back to 2560 cores" argument).
    pub fn fs_share_bps(&self, ranks: usize) -> f64 {
        self.fs.aggregate_bps * ranks as f64 / self.total_cores() as f64
    }
}

/// Tera 100: 4370 nodes × 32 cores (4× eight-core Nehalem EX @ 2.27 GHz),
/// Infiniband QDR fat-tree, ~500 GB/s Lustre.
pub fn tera100() -> Machine {
    Machine {
        name: "Tera 100",
        nodes: 4370,
        cores_per_node: 32,
        // 2.27 GHz × 4 flop/cycle × ~12 % sustained HPC efficiency.
        core_flops: 1.1e9,
        // 4 GB/s QDR per node shared by 32 ranks, with protocol efficiency.
        rank_bw: 105.0e6,
        latency_ns: 2_500.0,
        writer_stream_bw: 38.5e6,
        reader_drain_bw: 100.0e6,
        bisection_per_node: 4.0e9,
        eager_limit: 64 * 1024,
        fs: FsModel {
            aggregate_bps: 500.0e9,
            per_client_bps: 1.2e9,
            meta_ns: 50_000.0,
            meta_contention_clients: 256.0,
            write_efficiency: 0.1,
        },
    }
}

/// Curie (thin nodes): 5040 nodes × 16 cores (2× eight-core Sandy Bridge @
/// 2.7 GHz), same network family and file-system class.
pub fn curie() -> Machine {
    Machine {
        name: "Curie",
        nodes: 5040,
        cores_per_node: 16,
        // 2.7 GHz × 8 flop/cycle (AVX) × ~10 % sustained.
        core_flops: 2.2e9,
        rank_bw: 220.0e6,
        latency_ns: 2_000.0,
        writer_stream_bw: 55.0e6,
        reader_drain_bw: 140.0e6,
        bisection_per_node: 5.0e9,
        eager_limit: 64 * 1024,
        fs: FsModel {
            aggregate_bps: 250.0e9,
            per_client_bps: 1.5e9,
            meta_ns: 50_000.0,
            meta_contention_clients: 256.0,
            write_efficiency: 0.1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tera100_dimensions() {
        let m = tera100();
        assert_eq!(m.total_cores(), 139_840); // the paper's "140 000 cores"
        assert_eq!(m.nodes_for(1), 1);
        assert_eq!(m.nodes_for(32), 1);
        assert_eq!(m.nodes_for(33), 2);
        assert_eq!(m.nodes_for(2560), 80);
    }

    #[test]
    fn curie_dimensions() {
        let m = curie();
        assert_eq!(m.total_cores(), 80_640); // the paper's "80 640 cores"
    }

    #[test]
    fn fs_share_matches_paper_scaling() {
        // "500 GB/s for the whole machine … scaled back to 2560 cores …
        // gives a theoretical throughput of 9.1 GB/s".
        let m = tera100();
        let share = m.fs_share_bps(2560);
        assert!((share / 1e9 - 9.15).abs() < 0.1, "got {share}");
    }

    #[test]
    fn stream_saturation_matches_paper() {
        // 2560 writers × 38.5 MB/s ≈ 98.5 GB/s (Figure 14 peak).
        let m = tera100();
        let total = 2560.0 * m.writer_stream_bw;
        assert!((total / 1e9 - 98.5).abs() < 1.0, "got {total}");
    }

    #[test]
    fn fs_write_costs_grow_with_contention() {
        let fs = tera100().fs;
        let alone = fs.write_ns(1 << 20, 1);
        let crowded = fs.write_ns(1 << 20, 4096);
        assert!(crowded > alone * 5.0, "alone={alone} crowded={crowded}");
        assert!(fs.meta_op_ns(4096) > fs.meta_op_ns(1));
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let m = tera100();
        let t0 = m.transfer_ns(0);
        assert_eq!(t0, m.latency_ns);
        let t1 = m.transfer_ns(1 << 20);
        assert!(t1 > t0 + 9.0e6, "1 MB at ~105 MB/s is ~10 ms, got {t1}");
    }

    #[test]
    fn compute_rate_positive() {
        let m = curie();
        assert!(m.compute_ns(2.2e9) > 0.9e9 && m.compute_ns(2.2e9) < 1.1e9);
    }
}
