//! The worklist discrete-event engine.
//!
//! Each rank owns a virtual clock and a cursor into its [`crate::op::Program`]. Ranks
//! execute until they block (receive with no matching send, rendezvous send
//! with no matching receive, halo exchange waiting for its peer, collective
//! waiting for the group); matching events transfer completion times and
//! put blocked ranks back on the worklist. The algorithm is deterministic:
//! rank order on the worklist never influences computed times, only
//! discovery order.

use crate::machine::Machine;
use crate::op::{CollKind, Op, Phase, Workload};
use crate::tools::{ToolModel, ToolState};
use std::collections::{HashMap, VecDeque};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No rank can make progress but some have not finished.
    Deadlock {
        finished: usize,
        total: usize,
        /// A few blocked ranks with a description of what they wait for.
        sample: Vec<(u32, String)>,
    },
    /// An op referenced an invalid rank or group.
    BadReference(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                finished,
                total,
                sample,
            } => {
                write!(f, "deadlock: {finished}/{total} ranks finished; blocked: ")?;
                for (r, what) in sample {
                    write!(f, "[{r}: {what}] ")?;
                }
                Ok(())
            }
            SimError::BadReference(what) => write!(f, "bad reference: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Communication ops executed (events under instrumentation).
    pub comm_ops: u64,
    /// Application payload bytes moved by point-to-point ops.
    pub p2p_bytes: u64,
    /// Instrumentation events recorded (0 for the reference model).
    pub events: u64,
    /// Measurement data produced, bytes.
    pub event_bytes: u64,
    /// Total stream back-pressure stall time across ranks, ns.
    pub stall_ns: f64,
    /// Total file-system time across ranks, ns.
    pub fs_ns: f64,
    /// Point-to-point retransmissions forced by injected drops.
    pub retransmits: u64,
}

/// Deterministic transport-fault model for simulations — the analytic twin
/// of the runtime's `opmr_runtime::FaultPlan`. Decisions are a pure hash of
/// `(seed, src, dst, per-channel sequence)`, so a given seed always yields
/// the same fault schedule regardless of worklist discovery order.
#[derive(Debug, Clone, PartialEq)]
pub struct SimFaults {
    /// Seed for the per-message fault rolls.
    pub seed: u64,
    /// Probability a point-to-point message is dropped and must be resent.
    pub drop_p: f64,
    /// Probability a message is delayed by `delay_ns`.
    pub delay_p: f64,
    /// Extra in-flight time for delayed messages, ns.
    pub delay_ns: f64,
    /// Ranks whose every send pays `slow_factor` × the transfer time.
    pub slow_ranks: Vec<u32>,
    /// Transfer-time multiplier for slow ranks (≥ 1).
    pub slow_factor: f64,
}

impl SimFaults {
    /// A fault-free plan under `seed` — useful as a builder base.
    pub fn seeded(seed: u64) -> Self {
        SimFaults {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            delay_ns: 0.0,
            slow_ranks: Vec::new(),
            slow_factor: 1.0,
        }
    }
}

/// Retransmissions are bounded like the runtime's retry budget, so a
/// `drop_p` close to 1.0 degrades throughput instead of hanging the model.
const MAX_REROLLS: u32 = 16;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-channel sequence counters driving the deterministic fault rolls.
struct FaultRoller<'a> {
    f: &'a SimFaults,
    seqs: HashMap<(u32, u32), u64>,
}

impl<'a> FaultRoller<'a> {
    fn new(f: &'a SimFaults) -> Self {
        FaultRoller {
            f,
            seqs: HashMap::new(),
        }
    }

    fn roll(&self, salt: u64, src: u32, dst: u32, seq: u64) -> bool {
        let p = match salt {
            0 => self.f.drop_p,
            _ => self.f.delay_p,
        };
        if p <= 0.0 {
            return false;
        }
        let h = splitmix64(
            splitmix64(self.f.seed ^ salt)
                ^ splitmix64(((src as u64) << 32) | dst as u64)
                ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        h < (p * u64::MAX as f64) as u64
    }

    /// Extra sender-side nanoseconds and retransmission count for one
    /// point-to-point message on channel `(src, dst)`.
    fn send_penalty(&mut self, m: &Machine, src: u32, dst: u32, bytes: u64) -> (f64, u64) {
        let seq = self.seqs.entry((src, dst)).or_insert(0);
        let base_seq = *seq;
        *seq += 1;
        let transfer = m.latency_ns + bytes as f64 / m.rank_bw * 1e9;
        let mut extra = 0.0;
        let mut rexmit = 0u64;
        // Each dropped attempt costs a full wire round before the resend
        // (sub-sequence the rolls so retries land on fresh hash inputs).
        let mut attempt = 0u32;
        while attempt < MAX_REROLLS
            && self.roll(
                0,
                src,
                dst,
                base_seq.wrapping_mul(MAX_REROLLS as u64 + 1) + attempt as u64,
            )
        {
            extra += transfer;
            rexmit += 1;
            attempt += 1;
        }
        if self.roll(1, src, dst, base_seq) {
            extra += self.f.delay_ns;
        }
        if self.f.slow_ranks.contains(&src) && self.f.slow_factor > 1.0 {
            extra += (self.f.slow_factor - 1.0) * transfer;
        }
        (extra, rexmit)
    }
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Job makespan, seconds (max over ranks).
    pub elapsed_s: f64,
    /// Per-rank completion times, seconds.
    pub per_rank_s: Vec<f64>,
    /// Per-rank time inside point-to-point calls, ns.
    pub per_rank_p2p_ns: Vec<f64>,
    /// Per-rank time inside collectives, ns.
    pub per_rank_coll_ns: Vec<f64>,
    /// Per-rank point-to-point sends issued.
    pub per_rank_sends: Vec<u64>,
    /// Per-rank point-to-point bytes sent.
    pub per_rank_send_bytes: Vec<u64>,
    pub stats: SimStats,
}

impl SimResult {
    /// Average instrumentation-data bandwidth `Bi = total event size /
    /// execution time` (Section IV-C).
    pub fn bi_bps(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.stats.event_bytes as f64 / self.elapsed_s
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Blocked {
    No,
    Done,
    Recv { from: u32 },
    RendezvousSend { to: u32 },
    Exchange { peer: u32 },
    Coll { group: u32 },
}

struct RankCtx {
    t: f64,
    phase: Option<Phase>,
    blocked: Blocked,
    tool: ToolState,
    /// Time spent inside point-to-point ops (send/recv/exchange), ns.
    p2p_ns: f64,
    /// Time spent inside collectives, ns.
    coll_ns: f64,
    /// Point-to-point messages sent.
    sends: u64,
    /// Bytes sent point-to-point.
    send_bytes: u64,
    /// Virtual time when the current communication op started (set when
    /// the op begins, consumed at completion).
    op_start: f64,
}

struct SendPost {
    sender: u32,
    bytes: u64,
    /// Sender clock when the message was handed to the network.
    t_ready: f64,
    /// Rendezvous sends park the sender until matched.
    rendezvous: bool,
}

struct RecvPost {
    t_ready: f64,
}

#[derive(Default)]
struct Channel {
    sends: VecDeque<SendPost>,
    recvs: VecDeque<RecvPost>,
}

struct ExchangePost {
    rank: u32,
    bytes: u64,
    t_ready: f64,
}

#[derive(Default)]
struct CollSlot {
    arrived: Vec<u32>,
    bytes_max: u64,
    t_max: f64,
}

/// Cost of one collective over `n` ranks moving `bytes` per rank.
fn coll_cost_ns(m: &Machine, kind: CollKind, n: usize, bytes: u64) -> f64 {
    let n = n.max(2) as f64;
    let log = n.log2().ceil();
    let hop = |b: u64| m.latency_ns + b as f64 / m.rank_bw * 1e9;
    match kind {
        CollKind::Barrier => 2.0 * log * m.latency_ns,
        CollKind::Bcast | CollKind::Reduce | CollKind::Gather => log * hop(bytes),
        CollKind::Allreduce | CollKind::Allgather => 2.0 * log * hop(bytes),
        CollKind::Alltoall => (n - 1.0) * hop(bytes),
    }
}

/// Runs the workload on the machine under a measurement-chain model.
pub fn simulate(w: &Workload, m: &Machine, tool: &ToolModel) -> Result<SimResult, SimError> {
    simulate_with_faults(w, m, tool, None)
}

/// [`simulate`] with an optional transport-fault model: point-to-point
/// sends pay deterministic seeded penalties for drops (bounded
/// retransmission rounds), delays and slow source ranks. `None` is exactly
/// the fault-free simulation.
pub fn simulate_with_faults(
    w: &Workload,
    m: &Machine,
    tool: &ToolModel,
    faults: Option<&SimFaults>,
) -> Result<SimResult, SimError> {
    let mut roller = faults.map(FaultRoller::new);
    let n = w.ranks();
    let job_ranks = n;
    let mut ranks: Vec<RankCtx> = (0..n)
        .map(|r| RankCtx {
            t: 0.0,
            phase: Phase::start().normalize(&w.programs[r]),
            blocked: Blocked::No,
            tool: ToolState::default(),
            p2p_ns: 0.0,
            coll_ns: 0.0,
            sends: 0,
            send_bytes: 0,
            op_start: 0.0,
        })
        .collect();
    let mut channels: HashMap<(u32, u32), Channel> = HashMap::new();
    let mut exchanges: HashMap<(u32, u32), VecDeque<ExchangePost>> = HashMap::new();
    let mut colls: HashMap<u32, CollSlot> = HashMap::new();
    let mut stats = SimStats::default();

    let mut runnable: VecDeque<u32> = (0..n as u32).collect();
    let mut finished = 0usize;

    // Finishes rank `r`'s current op at time `t_end`, applies the tool cost
    // and advances the cursor. Returns nothing; rank must then be run.
    #[allow(clippy::too_many_arguments)] // internal helper threading sim state
    fn complete_comm(
        ranks: &mut [RankCtx],
        w: &Workload,
        m: &Machine,
        tool: &ToolModel,
        job_ranks: usize,
        stats: &mut SimStats,
        r: u32,
        t_end: f64,
        ev_count: u64,
        is_coll: bool,
    ) {
        let ctx = &mut ranks[r as usize];
        let spent = (t_end - ctx.op_start).max(0.0);
        if is_coll {
            ctx.coll_ns += spent;
        } else {
            ctx.p2p_ns += spent;
        }
        ctx.t = t_end;
        stats.comm_ops += 1;
        ctx.tool
            .after_comm(tool, m, job_ranks, &mut ctx.t, ev_count);
        ctx.blocked = Blocked::No;
        // A completing rank always has a current op; a missing phase can
        // only come from corrupt bookkeeping, in which case the rank simply
        // finalizes on its next scheduling slice.
        ctx.phase = ctx.phase.and_then(|p| p.advance(&w.programs[r as usize]));
    }

    while let Some(r) = runnable.pop_front() {
        // Run rank r until it blocks or finishes.
        loop {
            if matches!(ranks[r as usize].blocked, Blocked::Done) {
                break;
            }
            let Some(phase) = ranks[r as usize].phase else {
                // Program complete: finalize-time tool costs, mark done.
                let ctx = &mut ranks[r as usize];
                ctx.tool.finish(tool, m, job_ranks, &mut ctx.t);
                ctx.blocked = Blocked::Done;
                finished += 1;
                break;
            };
            let Some(op) = w.programs[r as usize].op_at(phase) else {
                // A phase outside the program can only come from corrupt
                // input; treat it as program end.
                ranks[r as usize].phase = None;
                continue;
            };
            match op {
                Op::Compute { ns } => {
                    let ctx = &mut ranks[r as usize];
                    ctx.t += ns;
                    ctx.phase = phase.advance(&w.programs[r as usize]);
                }
                Op::FsWrite { bytes } => {
                    let cost = m.fs.write_ns(bytes, job_ranks);
                    let ctx = &mut ranks[r as usize];
                    ctx.tool.fs_ns += cost;
                    ctx.t += cost;
                    ctx.phase = phase.advance(&w.programs[r as usize]);
                }
                Op::FsMeta => {
                    let cost = m.fs.meta_op_ns(job_ranks);
                    let ctx = &mut ranks[r as usize];
                    ctx.tool.fs_ns += cost;
                    ctx.t += cost;
                    ctx.phase = phase.advance(&w.programs[r as usize]);
                }
                Op::Send { to, bytes } => {
                    if to as usize >= n {
                        return Err(SimError::BadReference(format!(
                            "rank {r} sends to {to} of {n}"
                        )));
                    }
                    stats.p2p_bytes += bytes;
                    {
                        let ctx = &mut ranks[r as usize];
                        ctx.op_start = ctx.t;
                        ctx.sends += 1;
                        ctx.send_bytes += bytes;
                    }
                    let eager = bytes <= m.eager_limit;
                    let mut t_send = ranks[r as usize].t;
                    if let Some(roller) = roller.as_mut() {
                        let (extra_ns, rexmit) = roller.send_penalty(m, r, to, bytes);
                        t_send += extra_ns;
                        stats.retransmits += rexmit;
                    }
                    let ch = channels.entry((r, to)).or_default();
                    if let Some(recv) = ch.recvs.pop_front() {
                        // Receiver already waiting.
                        let t_end = t_send.max(recv.t_ready) + m.transfer_ns(bytes);
                        // Sender completes per protocol.
                        let t_sender = if eager {
                            t_send + bytes as f64 / m.rank_bw * 1e9
                        } else {
                            t_end
                        };
                        complete_comm(
                            &mut ranks, w, m, tool, job_ranks, &mut stats, r, t_sender, 2, false,
                        );
                        complete_comm(
                            &mut ranks, w, m, tool, job_ranks, &mut stats, to, t_end, 2, false,
                        );
                        runnable.push_back(to);
                    } else {
                        ch.sends.push_back(SendPost {
                            sender: r,
                            bytes,
                            t_ready: t_send,
                            rendezvous: !eager,
                        });
                        if eager {
                            let t_sender = t_send + bytes as f64 / m.rank_bw * 1e9;
                            complete_comm(
                                &mut ranks, w, m, tool, job_ranks, &mut stats, r, t_sender, 2,
                                false,
                            );
                        } else {
                            ranks[r as usize].blocked = Blocked::RendezvousSend { to };
                            break;
                        }
                    }
                }
                Op::Recv { from } => {
                    if from as usize >= n {
                        return Err(SimError::BadReference(format!(
                            "rank {r} receives from {from} of {n}"
                        )));
                    }
                    ranks[r as usize].op_start = ranks[r as usize].t;
                    let t_recv = ranks[r as usize].t;
                    let ch = channels.entry((from, r)).or_default();
                    if let Some(send) = ch.sends.pop_front() {
                        let t_end = t_recv.max(send.t_ready) + m.transfer_ns(send.bytes);
                        if send.rendezvous {
                            // Unblock the parked sender at the same instant.
                            complete_comm(
                                &mut ranks,
                                w,
                                m,
                                tool,
                                job_ranks,
                                &mut stats,
                                send.sender,
                                t_end,
                                2,
                                false,
                            );
                            runnable.push_back(send.sender);
                        }
                        complete_comm(
                            &mut ranks, w, m, tool, job_ranks, &mut stats, r, t_end, 2, false,
                        );
                    } else {
                        ch.recvs.push_back(RecvPost { t_ready: t_recv });
                        ranks[r as usize].blocked = Blocked::Recv { from };
                        break;
                    }
                }
                Op::Exchange { peer, bytes } => {
                    if peer as usize >= n {
                        return Err(SimError::BadReference(format!(
                            "rank {r} exchanges with {peer} of {n}"
                        )));
                    }
                    stats.p2p_bytes += bytes;
                    {
                        let ctx = &mut ranks[r as usize];
                        ctx.op_start = ctx.t;
                        ctx.sends += 1;
                        ctx.send_bytes += bytes;
                    }
                    let key = (r.min(peer), r.max(peer));
                    let t_here = ranks[r as usize].t;
                    let queue = exchanges.entry(key).or_default();
                    // Only match a post made by the *other* side.
                    let matched = queue
                        .iter()
                        .position(|p| p.rank == peer)
                        .and_then(|pos| queue.remove(pos));
                    if let Some(other) = matched {
                        let both_bytes = bytes.max(other.bytes);
                        let t_end = t_here.max(other.t_ready) + m.transfer_ns(both_bytes);
                        complete_comm(
                            &mut ranks, w, m, tool, job_ranks, &mut stats, peer, t_end, 6, false,
                        );
                        runnable.push_back(peer);
                        complete_comm(
                            &mut ranks, w, m, tool, job_ranks, &mut stats, r, t_end, 6, false,
                        );
                    } else {
                        queue.push_back(ExchangePost {
                            rank: r,
                            bytes,
                            t_ready: t_here,
                        });
                        ranks[r as usize].blocked = Blocked::Exchange { peer };
                        break;
                    }
                }
                Op::Coll { group, kind, bytes } => {
                    let members = w
                        .groups
                        .get(group as usize)
                        .ok_or_else(|| SimError::BadReference(format!("group {group}")))?;
                    debug_assert!(members.contains(&r), "rank {r} not in group {group}");
                    ranks[r as usize].op_start = ranks[r as usize].t;
                    let slot = colls.entry(group).or_default();
                    let t_here = ranks[r as usize].t;
                    slot.t_max = slot.t_max.max(t_here);
                    slot.bytes_max = slot.bytes_max.max(bytes);
                    slot.arrived.push(r);
                    if slot.arrived.len() == members.len() {
                        if let Some(slot) = colls.remove(&group) {
                            let t_end =
                                slot.t_max + coll_cost_ns(m, kind, members.len(), slot.bytes_max);
                            for &member in &slot.arrived {
                                complete_comm(
                                    &mut ranks, w, m, tool, job_ranks, &mut stats, member, t_end,
                                    1, true,
                                );
                                if member != r {
                                    runnable.push_back(member);
                                }
                            }
                        }
                    } else {
                        ranks[r as usize].blocked = Blocked::Coll { group };
                        break;
                    }
                }
            }
        }
        // `runnable` may contain duplicates of ranks pushed while already
        // queued; the loop guards handle that (Done / blocked ranks fall
        // through immediately).
        while let Some(&front) = runnable.front() {
            match ranks[front as usize].blocked {
                Blocked::Done => {
                    runnable.pop_front();
                }
                Blocked::No => break,
                _ => {
                    runnable.pop_front();
                }
            }
        }
    }

    if finished != n {
        let mut sample = Vec::new();
        for (i, ctx) in ranks.iter().enumerate() {
            if !matches!(ctx.blocked, Blocked::Done) {
                sample.push((i as u32, format!("{:?} at {:?}", ctx.blocked, ctx.phase)));
                if sample.len() >= 5 {
                    break;
                }
            }
        }
        return Err(SimError::Deadlock {
            finished,
            total: n,
            sample,
        });
    }

    let per_rank_s: Vec<f64> = ranks.iter().map(|c| c.t / 1e9).collect();
    let elapsed_s = per_rank_s.iter().cloned().fold(0.0, f64::max);
    for ctx in &ranks {
        stats.events += ctx.tool.events;
        stats.stall_ns += ctx.tool.stall_ns;
        stats.fs_ns += ctx.tool.fs_ns;
    }
    stats.event_bytes = stats.events * tool.event_bytes();
    Ok(SimResult {
        elapsed_s,
        per_rank_p2p_ns: ranks.iter().map(|c| c.p2p_ns).collect(),
        per_rank_coll_ns: ranks.iter().map(|c| c.coll_ns).collect(),
        per_rank_sends: ranks.iter().map(|c| c.sends).collect(),
        per_rank_send_bytes: ranks.iter().map(|c| c.send_bytes).collect(),
        per_rank_s,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::tera100;
    use crate::op::Program;

    fn two_rank_pingpong(iters: u32, bytes: u64) -> Workload {
        Workload {
            programs: vec![
                Program {
                    prologue: vec![],
                    body: vec![Op::Send { to: 1, bytes }, Op::Recv { from: 1 }],
                    iters,
                    epilogue: vec![],
                },
                Program {
                    prologue: vec![],
                    body: vec![Op::Recv { from: 0 }, Op::Send { to: 0, bytes }],
                    iters,
                    epilogue: vec![],
                },
            ],
            groups: vec![],
        }
    }

    #[test]
    fn compute_only_is_additive() {
        let w = Workload {
            programs: vec![Program {
                prologue: vec![Op::Compute { ns: 100.0 }],
                body: vec![Op::Compute { ns: 10.0 }],
                iters: 5,
                epilogue: vec![Op::Compute { ns: 1.0 }],
            }],
            groups: vec![],
        };
        let r = simulate(&w, &tera100(), &ToolModel::None).unwrap();
        assert!((r.elapsed_s * 1e9 - 151.0).abs() < 1e-6);
    }

    #[test]
    fn pingpong_latency_bound() {
        let m = tera100();
        let w = two_rank_pingpong(10, 8);
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        // 20 messages × (latency + ~0 transfer) plus eager sender-side time.
        let expect_min = 20.0 * m.latency_ns / 1e9;
        assert!(r.elapsed_s >= expect_min, "{} < {expect_min}", r.elapsed_s);
        assert!(r.elapsed_s < expect_min * 2.0);
        assert_eq!(r.stats.comm_ops, 40);
        assert_eq!(r.stats.p2p_bytes, 20 * 8);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let m = tera100();
        let w = two_rank_pingpong(1, 100 << 20); // 100 MB rendezvous
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        let transfer_s = (100 << 20) as f64 / m.rank_bw;
        assert!(r.elapsed_s > 2.0 * transfer_s * 0.95);
        assert!(r.elapsed_s < 2.0 * transfer_s * 1.2);
    }

    #[test]
    fn rendezvous_sender_waits_for_receiver() {
        let m = tera100();
        // Rank 1 computes 1 s before receiving; sender must not finish
        // earlier (rendezvous-sized message).
        let w = Workload {
            programs: vec![
                Program {
                    prologue: vec![Op::Send {
                        to: 1,
                        bytes: 1 << 20,
                    }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
                Program {
                    prologue: vec![Op::Compute { ns: 1e9 }, Op::Recv { from: 0 }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
            ],
            groups: vec![],
        };
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        assert!(r.per_rank_s[0] >= 1.0, "sender parked until recv posted");
    }

    #[test]
    fn eager_sender_proceeds_early() {
        let m = tera100();
        let w = Workload {
            programs: vec![
                Program {
                    prologue: vec![Op::Send { to: 1, bytes: 64 }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
                Program {
                    prologue: vec![Op::Compute { ns: 1e9 }, Op::Recv { from: 0 }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
            ],
            groups: vec![],
        };
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        assert!(r.per_rank_s[0] < 0.01, "eager sender must not wait 1 s");
        assert!(r.per_rank_s[1] >= 1.0);
    }

    #[test]
    fn exchange_synchronizes_pairs() {
        let m = tera100();
        let w = Workload {
            programs: vec![
                Program {
                    prologue: vec![
                        Op::Compute { ns: 5e8 },
                        Op::Exchange {
                            peer: 1,
                            bytes: 1 << 20,
                        },
                    ],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
                Program {
                    prologue: vec![Op::Exchange {
                        peer: 0,
                        bytes: 1 << 20,
                    }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                },
            ],
            groups: vec![],
        };
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        // Both finish together, after the slower side arrives.
        assert!((r.per_rank_s[0] - r.per_rank_s[1]).abs() < 1e-9);
        assert!(r.per_rank_s[0] >= 0.5);
    }

    #[test]
    fn collective_waits_for_all_members() {
        let m = tera100();
        let mut w = Workload {
            programs: (0..4)
                .map(|r| Program {
                    prologue: vec![
                        Op::Compute {
                            ns: (r as f64 + 1.0) * 1e8,
                        },
                        Op::Coll {
                            group: 0,
                            kind: CollKind::Barrier,
                            bytes: 0,
                        },
                    ],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                })
                .collect(),
            groups: vec![],
        };
        w.add_group(vec![0, 1, 2, 3]);
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        // All leave at (slowest arrival 0.4 s) + barrier cost.
        for t in &r.per_rank_s {
            assert!(*t >= 0.4);
            assert!((*t - r.per_rank_s[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn subgroup_collectives_are_independent() {
        let m = tera100();
        let mut w = Workload {
            programs: (0..4)
                .map(|r| Program {
                    prologue: vec![Op::Coll {
                        group: r / 2,
                        kind: CollKind::Allreduce,
                        bytes: 8,
                    }],
                    body: vec![],
                    iters: 0,
                    epilogue: vec![],
                })
                .collect(),
            groups: vec![],
        };
        w.add_group(vec![0, 1]);
        w.add_group(vec![2, 3]);
        let r = simulate(&w, &m, &ToolModel::None).unwrap();
        assert!(r.elapsed_s > 0.0);
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let w = Workload {
            programs: vec![Program {
                prologue: vec![Op::Recv { from: 0 }],
                body: vec![],
                iters: 0,
                epilogue: vec![],
            }],
            groups: vec![],
        };
        // Rank 0 receives from itself with no send: deadlock.
        let err = simulate(&w, &tera100(), &ToolModel::None).unwrap_err();
        match err {
            SimError::Deadlock {
                finished, total, ..
            } => {
                assert_eq!((finished, total), (0, 1));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn bad_rank_reference_rejected() {
        let w = Workload {
            programs: vec![Program {
                prologue: vec![Op::Send { to: 7, bytes: 1 }],
                body: vec![],
                iters: 0,
                epilogue: vec![],
            }],
            groups: vec![],
        };
        assert!(matches!(
            simulate(&w, &tera100(), &ToolModel::None),
            Err(SimError::BadReference(_))
        ));
    }

    #[test]
    fn determinism_same_inputs_same_times() {
        let w = two_rank_pingpong(50, 1 << 16);
        let m = tera100();
        let a = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        let b = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        assert_eq!(a.per_rank_s, b.per_rank_s);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn instrumentation_overhead_is_nonnegative_and_bounded() {
        let w = two_rank_pingpong(200, 1 << 14);
        let m = tera100();
        let t0 = simulate(&w, &m, &ToolModel::None).unwrap().elapsed_s;
        let t1 = simulate(&w, &m, &ToolModel::online_coupling(1.0))
            .unwrap()
            .elapsed_s;
        assert!(t1 >= t0);
        assert!(t1 < t0 * 2.0, "coupling overhead should be moderate");
    }

    #[test]
    fn faults_none_equals_plain_simulate() {
        let w = two_rank_pingpong(50, 1 << 16);
        let m = tera100();
        let a = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        let b = simulate_with_faults(&w, &m, &ToolModel::online_coupling(1.0), None).unwrap();
        assert_eq!(a.per_rank_s, b.per_rank_s);
        assert_eq!(a.stats, b.stats);
        let zero = SimFaults::seeded(42);
        let c =
            simulate_with_faults(&w, &m, &ToolModel::online_coupling(1.0), Some(&zero)).unwrap();
        assert_eq!(a.per_rank_s, c.per_rank_s, "all-zero plan is a no-op");
        assert_eq!(c.stats.retransmits, 0);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let w = two_rank_pingpong(100, 1 << 14);
        let m = tera100();
        let f = SimFaults {
            drop_p: 0.2,
            delay_p: 0.1,
            delay_ns: 5_000.0,
            ..SimFaults::seeded(7)
        };
        let a = simulate_with_faults(&w, &m, &ToolModel::None, Some(&f)).unwrap();
        let b = simulate_with_faults(&w, &m, &ToolModel::None, Some(&f)).unwrap();
        assert_eq!(a.per_rank_s, b.per_rank_s);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.retransmits > 0, "20% drop over 200 sends must hit");
        let g = SimFaults { seed: 8, ..f };
        let c = simulate_with_faults(&w, &m, &ToolModel::None, Some(&g)).unwrap();
        assert_ne!(
            a.per_rank_s, c.per_rank_s,
            "different seeds give different schedules"
        );
    }

    #[test]
    fn drops_and_slow_ranks_cost_time_monotonically() {
        let w = two_rank_pingpong(100, 1 << 16);
        let m = tera100();
        let base = simulate(&w, &m, &ToolModel::None).unwrap().elapsed_s;
        let dropped = SimFaults {
            drop_p: 0.3,
            ..SimFaults::seeded(3)
        };
        let t_drop = simulate_with_faults(&w, &m, &ToolModel::None, Some(&dropped))
            .unwrap()
            .elapsed_s;
        assert!(t_drop > base, "drops must slow the job down");
        let slowed = SimFaults {
            slow_ranks: vec![0],
            slow_factor: 4.0,
            ..SimFaults::seeded(3)
        };
        let t_slow = simulate_with_faults(&w, &m, &ToolModel::None, Some(&slowed))
            .unwrap()
            .elapsed_s;
        assert!(t_slow > base, "a slow rank must slow the job down");
        let worse = SimFaults {
            drop_p: 0.6,
            ..SimFaults::seeded(3)
        };
        let t_worse = simulate_with_faults(&w, &m, &ToolModel::None, Some(&worse))
            .unwrap()
            .elapsed_s;
        assert!(t_worse > t_drop, "higher drop probability costs more");
    }

    #[test]
    fn bi_matches_event_volume() {
        let w = two_rank_pingpong(100, 1 << 10);
        let m = tera100();
        let r = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        // 100 iterations × 2 ops × 2 ranks, two event records per p2p op.
        assert_eq!(r.stats.events, 800);
        assert_eq!(r.stats.event_bytes, 800 * 48);
        assert!(r.bi_bps() > 0.0);
    }
}
