//! Rank-program representation consumed by the simulator.

/// Collective operation kinds with distinct cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Alltoall,
}

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Pure computation for `ns` nanoseconds of virtual time.
    Compute { ns: f64 },
    /// Blocking standard-mode send (eager below the machine's threshold,
    /// rendezvous above).
    Send { to: u32, bytes: u64 },
    /// Blocking receive matching sends from `from` in FIFO order.
    Recv { from: u32 },
    /// Symmetric halo exchange with `peer` (both sides call it); models the
    /// isend/irecv/waitall idiom of stencil codes.
    Exchange { peer: u32, bytes: u64 },
    /// Collective over registered group `group`.
    Coll {
        group: u32,
        kind: CollKind,
        bytes: u64,
    },
    /// File-system write of `bytes` (contended by every rank of the job).
    FsWrite { bytes: u64 },
    /// File-system metadata operation (open/create).
    FsMeta,
}

impl Op {
    /// Is this an MPI communication op (what instrumentation intercepts)?
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            Op::Send { .. } | Op::Recv { .. } | Op::Exchange { .. } | Op::Coll { .. }
        )
    }

    /// Number of instrumentation events one op generates. A blocking
    /// send/receive is two records (call + completion context); a halo
    /// exchange expands to isend + irecv + waits + boundary copies
    /// (calibrated against the paper's reported trace volumes); a
    /// collective is a single record.
    pub fn event_count(&self) -> u64 {
        match self {
            Op::Send { .. } | Op::Recv { .. } => 2,
            Op::Exchange { .. } => 6,
            Op::Coll { .. } => 1,
            _ => 0,
        }
    }

    /// Bytes this op moves from the caller's perspective.
    pub fn bytes(&self) -> u64 {
        match *self {
            Op::Send { bytes, .. }
            | Op::Exchange { bytes, .. }
            | Op::Coll { bytes, .. }
            | Op::FsWrite { bytes } => bytes,
            Op::Recv { .. } | Op::Compute { .. } | Op::FsMeta => 0,
        }
    }
}

/// One rank's program: prologue, body iterated `iters` times, epilogue.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub prologue: Vec<Op>,
    pub body: Vec<Op>,
    pub iters: u32,
    pub epilogue: Vec<Op>,
}

impl Program {
    /// Total number of ops the program will execute.
    pub fn total_ops(&self) -> u64 {
        self.prologue.len() as u64
            + self.body.len() as u64 * self.iters as u64
            + self.epilogue.len() as u64
    }

    /// Total communication ops (≈ events generated under instrumentation).
    pub fn total_comm_ops(&self) -> u64 {
        let count = |ops: &[Op]| ops.iter().filter(|o| o.is_comm()).count() as u64;
        count(&self.prologue) + count(&self.body) * self.iters as u64 + count(&self.epilogue)
    }

    /// Op at a given linearized position, if any (prologue → body×iters →
    /// epilogue).
    pub fn op_at(&self, phase: Phase) -> Option<Op> {
        match phase {
            Phase::Prologue(i) => self.prologue.get(i).copied(),
            Phase::Body(_, i) => self.body.get(i).copied(),
            Phase::Epilogue(i) => self.epilogue.get(i).copied(),
        }
    }
}

/// Execution cursor within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Prologue(usize),
    Body(u32, usize),
    Epilogue(usize),
}

impl Phase {
    /// First position.
    pub fn start() -> Phase {
        Phase::Prologue(0)
    }

    /// Next position, given the program shape; `None` when done.
    pub fn advance(self, prog: &Program) -> Option<Phase> {
        let next = match self {
            Phase::Prologue(i) if i + 1 < prog.prologue.len() => Phase::Prologue(i + 1),
            Phase::Prologue(_) => Phase::Body(0, 0),
            Phase::Body(it, i) if i + 1 < prog.body.len() => Phase::Body(it, i + 1),
            Phase::Body(it, _) if it + 1 < prog.iters => Phase::Body(it + 1, 0),
            Phase::Body(..) => Phase::Epilogue(0),
            Phase::Epilogue(i) => Phase::Epilogue(i + 1),
        };
        // Skip over empty segments.
        match next {
            Phase::Body(it, 0) if prog.body.is_empty() || it >= prog.iters => {
                Phase::Epilogue(0).normalize(prog)
            }
            Phase::Body(..) => Some(next),
            other => other.normalize(prog),
        }
    }

    /// Resolves a position to the first non-empty segment at or after it.
    pub fn normalize(self, prog: &Program) -> Option<Phase> {
        match self {
            Phase::Prologue(i) => {
                if i < prog.prologue.len() {
                    Some(Phase::Prologue(i))
                } else if !prog.body.is_empty() && prog.iters > 0 {
                    Some(Phase::Body(0, 0))
                } else if !prog.epilogue.is_empty() {
                    Some(Phase::Epilogue(0))
                } else {
                    None
                }
            }
            Phase::Body(it, i) => {
                if it < prog.iters && i < prog.body.len() {
                    Some(Phase::Body(it, i))
                } else if !prog.epilogue.is_empty() {
                    Some(Phase::Epilogue(0))
                } else {
                    None
                }
            }
            Phase::Epilogue(i) => {
                if i < prog.epilogue.len() {
                    Some(Phase::Epilogue(i))
                } else {
                    None
                }
            }
        }
    }
}

/// A whole job: one program per rank plus the collective-group table.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub programs: Vec<Program>,
    /// Collective groups referenced by `Op::Coll::group` (rank lists).
    pub groups: Vec<Vec<u32>>,
}

impl Workload {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.programs.len()
    }

    /// Registers a group, returning its id.
    pub fn add_group(&mut self, members: Vec<u32>) -> u32 {
        let id = self.groups.len() as u32;
        self.groups.push(members);
        id
    }

    /// The everyone group, creating it if necessary as group of all ranks.
    pub fn world_group(&mut self) -> u32 {
        let world: Vec<u32> = (0..self.ranks() as u32).collect();
        if let Some(pos) = self.groups.iter().position(|g| *g == world) {
            pos as u32
        } else {
            self.add_group(world)
        }
    }

    /// Total communication ops over all ranks.
    pub fn total_comm_ops(&self) -> u64 {
        self.programs.iter().map(|p| p.total_comm_ops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> Program {
        Program {
            prologue: vec![Op::Compute { ns: 1.0 }],
            body: vec![Op::Compute { ns: 2.0 }, Op::FsMeta],
            iters: 3,
            epilogue: vec![Op::Compute { ns: 3.0 }],
        }
    }

    #[test]
    fn linearization_visits_every_op() {
        let p = prog();
        let mut seen = Vec::new();
        let mut ph = Phase::start().normalize(&p);
        while let Some(cur) = ph {
            seen.push(p.op_at(cur).unwrap());
            ph = cur.advance(&p);
        }
        assert_eq!(seen.len() as u64, p.total_ops());
        assert_eq!(seen[0], Op::Compute { ns: 1.0 });
        assert_eq!(seen[seen.len() - 1], Op::Compute { ns: 3.0 });
        assert_eq!(
            seen.iter()
                .filter(|o| matches!(o, Op::Compute { ns } if *ns == 2.0))
                .count(),
            3
        );
    }

    #[test]
    fn empty_segments_are_skipped() {
        let p = Program {
            prologue: vec![],
            body: vec![Op::FsMeta],
            iters: 2,
            epilogue: vec![],
        };
        let mut count = 0;
        let mut ph = Phase::start().normalize(&p);
        while let Some(cur) = ph {
            count += 1;
            ph = cur.advance(&p);
        }
        assert_eq!(count, 2);

        let empty = Program::default();
        assert_eq!(Phase::start().normalize(&empty), None);
    }

    #[test]
    fn zero_iters_skips_body() {
        let p = Program {
            prologue: vec![Op::FsMeta],
            body: vec![Op::Compute { ns: 1.0 }],
            iters: 0,
            epilogue: vec![Op::FsMeta],
        };
        let mut count = 0;
        let mut ph = Phase::start().normalize(&p);
        while let Some(cur) = ph {
            assert_eq!(p.op_at(cur).unwrap(), Op::FsMeta);
            count += 1;
            ph = cur.advance(&p);
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn comm_op_census() {
        let p = Program {
            prologue: vec![Op::Send { to: 1, bytes: 4 }],
            body: vec![Op::Exchange { peer: 1, bytes: 8 }, Op::Compute { ns: 1.0 }],
            iters: 5,
            epilogue: vec![Op::Recv { from: 1 }],
        };
        assert_eq!(p.total_comm_ops(), 1 + 5 + 1);
    }

    #[test]
    fn world_group_is_cached() {
        let mut w = Workload {
            programs: vec![Program::default(), Program::default()],
            groups: vec![],
        };
        let a = w.world_group();
        let b = w.world_group();
        assert_eq!(a, b);
        assert_eq!(w.groups.len(), 1);
        assert_eq!(w.groups[0], vec![0, 1]);
    }
}
