//! # opmr-netsim — discrete-event simulation of the paper's test platforms
//!
//! The evaluation of the paper runs on Tera 100 (140 000 cores) and Curie
//! (80 640 cores) with a Lustre file system delivering ~500 GB/s. Those
//! machines are substituted here by a deterministic **flow-level
//! discrete-event simulator**:
//!
//! * [`machine`] — calibrated machine descriptions (cores, per-rank link
//!   bandwidth, message latency, file-system aggregate bandwidth and
//!   metadata cost, stream drain rates);
//! * [`op`] — the rank-program representation: compute intervals,
//!   point-to-point sends/receives, halo exchanges, collectives and
//!   file-system writes, organized as prologue / iterated body / epilogue;
//! * [`engine`] — the simulator: a worklist algorithm advancing per-rank
//!   virtual clocks through rendezvous matching, collective synchronization
//!   and file-system contention;
//! * [`tools`] — cost models of the measurement chains compared in
//!   Figure 16 (online coupling with bounded-window back-pressure, profile
//!   only, trace-to-file through the FS model, profile+replay), applied
//!   *during* simulation so instrumentation perturbs the virtual timeline
//!   exactly where the real tool would perturb the application;
//! * [`stream_model`] — the saturating flow model behind Figure 14's
//!   writer/reader throughput surface, cross-checked against the live
//!   stream implementation at thread scale.
//!
//! Everything is deterministic: identical inputs give identical virtual
//! timings, which the reproduction relies on for regression tests.

pub mod engine;
pub mod machine;
pub mod op;
pub mod stream_model;
pub mod tbon;
pub mod tools;

pub use engine::{simulate, simulate_with_faults, SimError, SimFaults, SimResult, SimStats};
pub use machine::{curie, tera100, FsModel, Machine};
pub use op::{CollKind, Op, Phase, Program, Workload};
pub use stream_model::{evaluate_faulty, FaultModel};
pub use tbon::TbonConfig;
pub use tools::ToolModel;
