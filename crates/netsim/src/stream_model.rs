//! Flow model of VMPI-stream throughput (Figure 14).
//!
//! Figure 14 sweeps the number of writer processes and the writer/reader
//! ratio while each writer pushes 1 GB in 1 MB blocks. The achieved global
//! throughput is the minimum of three saturating resources:
//!
//! * the writers' aggregate production bandwidth (per-writer NIC share),
//! * the readers' aggregate drain bandwidth (per-reader processing rate),
//! * the cross-partition bisection (scales with the nodes involved).
//!
//! The model also exposes the paper's file-system comparison: the FS share
//! of an allocation (`Machine::fs_share_bps`) and the writer/reader ratio
//! at which streams stop being competitive (≈1:25 on Tera 100).

use crate::machine::Machine;

/// One cell of the Figure-14 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    pub writers: usize,
    pub readers: usize,
    pub ratio: f64,
    /// Global throughput, bytes/s.
    pub throughput_bps: f64,
    /// Time to drain 1 GB per writer, seconds.
    pub elapsed_s: f64,
}

/// Readers for a writer count at a given ratio: `Nr = floor(Nw/ratio)`,
/// minimum 1 (the paper's formula).
pub fn readers_for(writers: usize, ratio: f64) -> usize {
    ((writers as f64 / ratio).floor() as usize).max(1)
}

/// Global stream throughput for a writer/reader allocation, bytes/s.
pub fn stream_throughput_bps(m: &Machine, writers: usize, readers: usize) -> f64 {
    let produce = writers as f64 * m.writer_stream_bw;
    let drain = readers as f64 * m.reader_drain_bw;
    let nodes = m.nodes_for(writers).min(m.nodes_for(readers)).max(1);
    let bisection = nodes as f64 * m.bisection_per_node;
    produce.min(drain).min(bisection)
}

/// Evaluates one Figure-14 cell: `writers` ranks each shipping
/// `bytes_per_writer` through the stream fabric.
pub fn evaluate(m: &Machine, writers: usize, ratio: f64, bytes_per_writer: u64) -> StreamPoint {
    let readers = readers_for(writers, ratio);
    let throughput = stream_throughput_bps(m, writers, readers);
    let total = writers as f64 * bytes_per_writer as f64;
    StreamPoint {
        writers,
        readers,
        ratio,
        throughput_bps: throughput,
        elapsed_s: total / throughput,
    }
}

/// Largest ratio at which streams still beat the allocation's file-system
/// share (the paper's "competitive until ≈1:25" claim).
pub fn crossover_ratio(m: &Machine, writers: usize) -> f64 {
    // The paper scales the 500 GB/s machine figure to the writers' cores
    // ("scaled back to 2560 cores … 9.1 GB/s").
    let fs = m.fs_share_bps(writers);
    let mut ratio = 1.0;
    while ratio < 512.0 {
        let readers = readers_for(writers, ratio);
        if stream_throughput_bps(m, writers, readers) < fs {
            return ratio;
        }
        ratio += 1.0;
    }
    ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::tera100;

    #[test]
    fn readers_formula_matches_paper() {
        assert_eq!(readers_for(2560, 1.0), 2560);
        assert_eq!(readers_for(2560, 25.0), 102);
        assert_eq!(readers_for(10, 32.0), 1, "default of one reader");
        assert_eq!(readers_for(64, 8.0), 8);
    }

    #[test]
    fn peak_throughput_near_98_gbs() {
        // The calibration anchor: 2560 writers and readers ⇒ ~98.5 GB/s.
        let m = tera100();
        let p = evaluate(&m, 2560, 1.0, 1 << 30);
        assert_eq!(p.readers, 2560);
        assert!(
            (p.throughput_bps / 1e9 - 98.5).abs() < 2.0,
            "got {} GB/s",
            p.throughput_bps / 1e9
        );
    }

    #[test]
    fn throughput_monotone_in_writers_at_fixed_ratio() {
        let m = tera100();
        let mut last = 0.0;
        for writers in [32, 64, 256, 1024, 2560] {
            let p = evaluate(&m, writers, 1.0, 1 << 30);
            assert!(p.throughput_bps >= last);
            last = p.throughput_bps;
        }
    }

    #[test]
    fn throughput_decreases_with_ratio() {
        let m = tera100();
        let mut last = f64::INFINITY;
        for ratio in [1.0, 2.0, 5.0, 10.0, 30.0, 70.0] {
            let p = evaluate(&m, 2560, ratio, 1 << 30);
            assert!(p.throughput_bps <= last, "ratio {ratio}");
            last = p.throughput_bps;
        }
    }

    #[test]
    fn crossover_near_one_to_25() {
        // "VMPI Streams are competitive with the file-system approach until
        // a ratio of one reader for ≈25 writers."
        let m = tera100();
        let x = crossover_ratio(&m, 2560);
        assert!(
            (15.0..40.0).contains(&x),
            "crossover ratio {x} out of the paper's ballpark"
        );
    }

    #[test]
    fn reader_limited_regime_scales_with_readers() {
        let m = tera100();
        let a = stream_throughput_bps(&m, 2560, 10);
        let b = stream_throughput_bps(&m, 2560, 20);
        assert!((b / a - 2.0).abs() < 0.01, "drain-limited regime is linear");
    }

    #[test]
    fn elapsed_is_total_over_throughput() {
        let m = tera100();
        let p = evaluate(&m, 128, 4.0, 1 << 30);
        let expect = 128.0 * (1u64 << 30) as f64 / p.throughput_bps;
        assert!((p.elapsed_s - expect).abs() < 1e-9);
    }
}
