//! Flow model of VMPI-stream throughput (Figure 14).
//!
//! Figure 14 sweeps the number of writer processes and the writer/reader
//! ratio while each writer pushes 1 GB in 1 MB blocks. The achieved global
//! throughput is the minimum of three saturating resources:
//!
//! * the writers' aggregate production bandwidth (per-writer NIC share),
//! * the readers' aggregate drain bandwidth (per-reader processing rate),
//! * the cross-partition bisection (scales with the nodes involved).
//!
//! The model also exposes the paper's file-system comparison: the FS share
//! of an allocation (`Machine::fs_share_bps`) and the writer/reader ratio
//! at which streams stop being competitive (≈1:25 on Tera 100).

use crate::machine::Machine;

/// One cell of the Figure-14 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    pub writers: usize,
    pub readers: usize,
    pub ratio: f64,
    /// Global throughput, bytes/s.
    pub throughput_bps: f64,
    /// Time to drain 1 GB per writer, seconds.
    pub elapsed_s: f64,
}

/// Readers for a writer count at a given ratio: `Nr = floor(Nw/ratio)`,
/// minimum 1 (the paper's formula).
pub fn readers_for(writers: usize, ratio: f64) -> usize {
    ((writers as f64 / ratio).floor() as usize).max(1)
}

/// Global stream throughput for a writer/reader allocation, bytes/s.
pub fn stream_throughput_bps(m: &Machine, writers: usize, readers: usize) -> f64 {
    let produce = writers as f64 * m.writer_stream_bw;
    let drain = readers as f64 * m.reader_drain_bw;
    let nodes = m.nodes_for(writers).min(m.nodes_for(readers)).max(1);
    let bisection = nodes as f64 * m.bisection_per_node;
    produce.min(drain).min(bisection)
}

/// Evaluates one Figure-14 cell: `writers` ranks each shipping
/// `bytes_per_writer` through the stream fabric.
pub fn evaluate(m: &Machine, writers: usize, ratio: f64, bytes_per_writer: u64) -> StreamPoint {
    let readers = readers_for(writers, ratio);
    let throughput = stream_throughput_bps(m, writers, readers);
    let total = writers as f64 * bytes_per_writer as f64;
    StreamPoint {
        writers,
        readers,
        ratio,
        throughput_bps: throughput,
        elapsed_s: total / throughput,
    }
}

/// Transport-fault load on the stream fabric: the flow-model counterpart
/// of the runtime's fault injection. Dropped blocks are resent and
/// duplicated blocks cross the wire twice, so both inflate the bytes the
/// fabric must carry per byte of useful payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Per-block drop probability (each drop forces one resend).
    pub drop_p: f64,
    /// Per-block duplication probability.
    pub dup_p: f64,
}

impl FaultModel {
    /// Wire bytes carried per useful payload byte:
    /// `(1 + dup_p) / (1 - drop_p)` — the geometric resend series times
    /// the duplication overhead. 1.0 when fault-free.
    pub fn wire_amplification(&self) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.drop_p),
            "drop probability must be in [0, 1)"
        );
        assert!(self.dup_p >= 0.0, "duplication probability must be >= 0");
        (1.0 + self.dup_p) / (1.0 - self.drop_p)
    }
}

/// [`evaluate`] under transport faults: goodput is the fault-free
/// throughput divided by the wire amplification, and draining takes
/// proportionally longer.
pub fn evaluate_faulty(
    m: &Machine,
    writers: usize,
    ratio: f64,
    bytes_per_writer: u64,
    faults: FaultModel,
) -> StreamPoint {
    let mut p = evaluate(m, writers, ratio, bytes_per_writer);
    let amp = faults.wire_amplification();
    p.throughput_bps /= amp;
    p.elapsed_s *= amp;
    p
}

/// Largest ratio at which streams still beat the allocation's file-system
/// share (the paper's "competitive until ≈1:25" claim).
pub fn crossover_ratio(m: &Machine, writers: usize) -> f64 {
    // The paper scales the 500 GB/s machine figure to the writers' cores
    // ("scaled back to 2560 cores … 9.1 GB/s").
    let fs = m.fs_share_bps(writers);
    let mut ratio = 1.0;
    while ratio < 512.0 {
        let readers = readers_for(writers, ratio);
        if stream_throughput_bps(m, writers, readers) < fs {
            return ratio;
        }
        ratio += 1.0;
    }
    ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::tera100;

    #[test]
    fn readers_formula_matches_paper() {
        assert_eq!(readers_for(2560, 1.0), 2560);
        assert_eq!(readers_for(2560, 25.0), 102);
        assert_eq!(readers_for(10, 32.0), 1, "default of one reader");
        assert_eq!(readers_for(64, 8.0), 8);
    }

    #[test]
    fn peak_throughput_near_98_gbs() {
        // The calibration anchor: 2560 writers and readers ⇒ ~98.5 GB/s.
        let m = tera100();
        let p = evaluate(&m, 2560, 1.0, 1 << 30);
        assert_eq!(p.readers, 2560);
        assert!(
            (p.throughput_bps / 1e9 - 98.5).abs() < 2.0,
            "got {} GB/s",
            p.throughput_bps / 1e9
        );
    }

    #[test]
    fn throughput_monotone_in_writers_at_fixed_ratio() {
        let m = tera100();
        let mut last = 0.0;
        for writers in [32, 64, 256, 1024, 2560] {
            let p = evaluate(&m, writers, 1.0, 1 << 30);
            assert!(p.throughput_bps >= last);
            last = p.throughput_bps;
        }
    }

    #[test]
    fn throughput_decreases_with_ratio() {
        let m = tera100();
        let mut last = f64::INFINITY;
        for ratio in [1.0, 2.0, 5.0, 10.0, 30.0, 70.0] {
            let p = evaluate(&m, 2560, ratio, 1 << 30);
            assert!(p.throughput_bps <= last, "ratio {ratio}");
            last = p.throughput_bps;
        }
    }

    #[test]
    fn crossover_near_one_to_25() {
        // "VMPI Streams are competitive with the file-system approach until
        // a ratio of one reader for ≈25 writers."
        let m = tera100();
        let x = crossover_ratio(&m, 2560);
        assert!(
            (15.0..40.0).contains(&x),
            "crossover ratio {x} out of the paper's ballpark"
        );
    }

    #[test]
    fn reader_limited_regime_scales_with_readers() {
        let m = tera100();
        let a = stream_throughput_bps(&m, 2560, 10);
        let b = stream_throughput_bps(&m, 2560, 20);
        assert!((b / a - 2.0).abs() < 0.01, "drain-limited regime is linear");
    }

    #[test]
    fn fault_free_model_changes_nothing() {
        let m = tera100();
        let clean = evaluate(&m, 256, 4.0, 1 << 30);
        let faulty = evaluate_faulty(
            &m,
            256,
            4.0,
            1 << 30,
            FaultModel {
                drop_p: 0.0,
                dup_p: 0.0,
            },
        );
        assert_eq!(clean, faulty);
    }

    #[test]
    fn amplification_monotone_in_both_probabilities() {
        let base = FaultModel {
            drop_p: 0.1,
            dup_p: 0.1,
        };
        assert!(base.wire_amplification() > 1.0);
        let more_drop = FaultModel {
            drop_p: 0.3,
            ..base
        };
        let more_dup = FaultModel { dup_p: 0.4, ..base };
        assert!(more_drop.wire_amplification() > base.wire_amplification());
        assert!(more_dup.wire_amplification() > base.wire_amplification());
        // Goodput shrinks and drain time grows by exactly that factor.
        let m = tera100();
        let clean = evaluate(&m, 512, 8.0, 1 << 30);
        let p = evaluate_faulty(&m, 512, 8.0, 1 << 30, base);
        let amp = base.wire_amplification();
        assert!((p.throughput_bps * amp - clean.throughput_bps).abs() < 1.0);
        assert!((p.elapsed_s / amp - clean.elapsed_s).abs() < 1e-9);
    }

    #[test]
    fn elapsed_is_total_over_throughput() {
        let m = tera100();
        let p = evaluate(&m, 128, 4.0, 1 << 30);
        let expect = 128.0 * (1u64 << 30) as f64 / p.throughput_bps;
        assert!((p.elapsed_s - expect).abs() < 1e-9);
    }
}
