//! Tree-Based Overlay Network (TBON) capacity model — the related-work
//! comparison of Section V.
//!
//! MRNet/GTI-style tools stream measurement data up a reduction tree: the
//! instrumented ranks are the leaves, internal nodes apply reduction
//! filters and forward the survivors toward the root (the front-end). The
//! paper's approach instead maps applications to *all* analysis processes,
//! "maximising the bisection bandwidth between partitions". This module
//! models both so the claim becomes a measurable trade-off:
//!
//! * a TBON with fan-out `f` and per-hop reduction ratio `ρ` (fraction of
//!   incoming data an internal node forwards) is capped by the most loaded
//!   level: level `l` has `ceil(P / f^l)` nodes absorbing `P·r·ρ^(l-1)`
//!   bytes/s of leaf traffic (where `r` is the per-leaf event rate);
//! * the paper's direct mapping is capped by the writers' aggregate, the
//!   analyzers' aggregate drain and the bisection (see
//!   [`crate::stream_model`]).
//!
//! For *unreduced* event streams (ρ = 1, what full-event analysis needs)
//! the TBON root becomes the bottleneck; with aggressive filtering
//! (ρ ≪ 1) TBONs win on resources — exactly the trade-off the paper
//! discusses.

use crate::machine::Machine;
use crate::stream_model::stream_throughput_bps;

/// TBON shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbonConfig {
    /// Children per internal node.
    pub fanout: usize,
    /// Fraction of incoming bytes forwarded upward by each internal node
    /// (1.0 = no reduction, event streaming; 0.0 = full local reduction).
    pub reduction_ratio: f64,
    /// Ingest bandwidth of one tree node, bytes/s.
    pub node_bw: f64,
}

impl TbonConfig {
    /// An MRNet-ish default on the given machine: internal nodes are
    /// analysis processes with the machine's reader drain rate.
    pub fn mrnet_like(m: &Machine, fanout: usize, reduction_ratio: f64) -> TbonConfig {
        TbonConfig {
            fanout: fanout.max(2),
            reduction_ratio: reduction_ratio.clamp(0.0, 1.0),
            node_bw: m.reader_drain_bw,
        }
    }

    /// A tree calibrated against a *measured* node drain bandwidth
    /// (bytes/s), e.g. observed on the executable reduction overlay —
    /// keeps the analytic model and live runs comparable on one axis.
    pub fn calibrated(fanout: usize, reduction_ratio: f64, node_bw: f64) -> TbonConfig {
        TbonConfig {
            fanout: fanout.max(2),
            reduction_ratio: reduction_ratio.clamp(0.0, 1.0),
            node_bw: node_bw.max(1.0),
        }
    }

    /// Tree depth over `leaves` leaf ranks (levels of internal nodes).
    pub fn depth(&self, leaves: usize) -> usize {
        let mut depth = 0;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(self.fanout);
            depth += 1;
        }
        depth.max(1)
    }

    /// Number of internal nodes the tree needs (analysis resources).
    pub fn internal_nodes(&self, leaves: usize) -> usize {
        let mut total = 0;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(self.fanout);
            total += width;
        }
        total.max(1)
    }

    /// Maximum aggregate *leaf* data rate (bytes/s) the tree sustains:
    /// the per-leaf rate is limited by the most loaded level.
    pub fn capacity_bps(&self, leaves: usize) -> f64 {
        if leaves == 0 {
            return 0.0;
        }
        let mut per_leaf: f64 = f64::INFINITY;
        let mut width = leaves;
        let mut level = 0usize;
        while width > 1 {
            width = width.div_ceil(self.fanout);
            // Traffic arriving into this level, per unit of leaf rate.
            let arriving = self.reduction_ratio.powi(level as i32);
            let per_node = arriving * leaves as f64 / width as f64;
            per_leaf = per_leaf.min(self.node_bw / per_node);
            level += 1;
        }
        if level == 0 {
            // Single leaf: direct link to the front-end.
            per_leaf = self.node_bw;
        }
        leaves as f64 * per_leaf
    }
}

/// Direct-mapping capacity for the same resource budget: the paper's
/// partition mapping with as many analyzer ranks as the TBON uses internal
/// nodes.
pub fn direct_mapping_capacity_bps(m: &Machine, leaves: usize, analyzer_ranks: usize) -> f64 {
    stream_throughput_bps(m, leaves, analyzer_ranks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::tera100;

    #[test]
    fn depth_and_node_counts() {
        let t = TbonConfig {
            fanout: 4,
            reduction_ratio: 1.0,
            node_bw: 1e9,
        };
        assert_eq!(t.depth(64), 3); // 64 → 16 → 4 → 1
        assert_eq!(t.internal_nodes(64), 16 + 4 + 1);
        assert_eq!(t.depth(1), 1);
    }

    #[test]
    fn unreduced_streams_bottleneck_at_the_root() {
        // ρ=1: the root ingests everything, so capacity == node_bw
        // regardless of leaf count.
        let t = TbonConfig {
            fanout: 8,
            reduction_ratio: 1.0,
            node_bw: 1e9,
        };
        assert!((t.capacity_bps(64) - 1e9).abs() < 1.0);
        assert!((t.capacity_bps(4096) - 1e9).abs() < 1.0);
    }

    #[test]
    fn strong_reduction_restores_scalability() {
        // ρ=1/fanout: each level's output equals one child's input — the
        // classic scalable TBON; the first level is then the cap.
        let t = TbonConfig {
            fanout: 8,
            reduction_ratio: 0.125,
            node_bw: 1e9,
        };
        let c64 = t.capacity_bps(64);
        let c4096 = t.capacity_bps(4096);
        assert!(c4096 / c64 > 32.0, "near-linear scaling: {c64} → {c4096}");
    }

    #[test]
    fn paper_claim_direct_mapping_wins_for_full_event_streams() {
        // Same resource budget, unreduced events: the direct partition
        // mapping sustains far more than a TBON's root.
        let m = tera100();
        let leaves = 2560;
        let tbon = TbonConfig::mrnet_like(&m, 16, 1.0);
        let analyzers = tbon.internal_nodes(leaves);
        let t_cap = tbon.capacity_bps(leaves);
        let d_cap = direct_mapping_capacity_bps(&m, leaves, analyzers);
        assert!(
            d_cap > 10.0 * t_cap,
            "direct {d_cap} should dwarf tbon {t_cap} for ρ=1"
        );
    }

    #[test]
    fn tbon_wins_on_resources_with_aggressive_filters() {
        // With ρ = 0.01 (validation-style reductions) a modest TBON beats
        // what a *single* analyzer rank could drain.
        let m = tera100();
        let tbon = TbonConfig::mrnet_like(&m, 16, 0.01);
        let t_cap = tbon.capacity_bps(4096);
        let d_cap = direct_mapping_capacity_bps(&m, 4096, 1);
        assert!(t_cap > d_cap, "tbon {t_cap} vs single-analyzer {d_cap}");
    }

    #[test]
    fn calibrated_clamps_inputs() {
        let t = TbonConfig::calibrated(1, 3.0, -5.0);
        assert_eq!(t.fanout, 2);
        assert_eq!(t.reduction_ratio, 1.0);
        assert_eq!(t.node_bw, 1.0);
        let u = TbonConfig::calibrated(4, 0.25, 2e8);
        assert_eq!(u.fanout, 4);
        assert_eq!(u.reduction_ratio, 0.25);
        assert_eq!(u.node_bw, 2e8);
    }

    #[test]
    fn capacity_monotone_in_node_bandwidth() {
        let slow = TbonConfig {
            fanout: 4,
            reduction_ratio: 0.5,
            node_bw: 1e8,
        };
        let fast = TbonConfig {
            node_bw: 1e9,
            ..slow
        };
        assert!(fast.capacity_bps(256) > slow.capacity_bps(256));
    }
}
