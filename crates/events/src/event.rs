//! The event record and the intercepted-call taxonomy.

/// Kind of intercepted call (or synthetic marker) an [`Event`] describes.
///
/// The numeric discriminants are part of the wire format — append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum EventKind {
    // Lifecycle --------------------------------------------------------
    Init = 0,
    Finalize = 1,
    // Point-to-point ----------------------------------------------------
    Send = 10,
    Recv = 11,
    Isend = 12,
    Irecv = 13,
    Sendrecv = 14,
    Wait = 15,
    Waitall = 16,
    Probe = 17,
    // Collectives -------------------------------------------------------
    Barrier = 30,
    Bcast = 31,
    Reduce = 32,
    Allreduce = 33,
    Gather = 34,
    Allgather = 35,
    Scatter = 36,
    Alltoall = 37,
    // Communicator management --------------------------------------------
    CommSplit = 50,
    CommDup = 51,
    // POSIX-like I/O ------------------------------------------------------
    PosixOpen = 70,
    PosixClose = 71,
    PosixRead = 72,
    PosixWrite = 73,
    // Synthetic ----------------------------------------------------------
    /// Pure computation interval between communication calls.
    Compute = 90,
    /// User-defined phase marker.
    Marker = 91,
}

impl EventKind {
    /// All kinds, for iteration in tests and reports.
    pub const ALL: [EventKind; 26] = [
        EventKind::Init,
        EventKind::Finalize,
        EventKind::Send,
        EventKind::Recv,
        EventKind::Isend,
        EventKind::Irecv,
        EventKind::Sendrecv,
        EventKind::Wait,
        EventKind::Waitall,
        EventKind::Probe,
        EventKind::Barrier,
        EventKind::Bcast,
        EventKind::Reduce,
        EventKind::Allreduce,
        EventKind::Gather,
        EventKind::Allgather,
        EventKind::Scatter,
        EventKind::Alltoall,
        EventKind::CommSplit,
        EventKind::CommDup,
        EventKind::PosixOpen,
        EventKind::PosixClose,
        EventKind::PosixRead,
        EventKind::PosixWrite,
        EventKind::Compute,
        EventKind::Marker,
    ];

    /// Decodes a wire discriminant.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| *k as u16 == v)
    }

    /// Canonical display name (`MPI_Send`, `write`, ...).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Init => "MPI_Init",
            EventKind::Finalize => "MPI_Finalize",
            EventKind::Send => "MPI_Send",
            EventKind::Recv => "MPI_Recv",
            EventKind::Isend => "MPI_Isend",
            EventKind::Irecv => "MPI_Irecv",
            EventKind::Sendrecv => "MPI_Sendrecv",
            EventKind::Wait => "MPI_Wait",
            EventKind::Waitall => "MPI_Waitall",
            EventKind::Probe => "MPI_Probe",
            EventKind::Barrier => "MPI_Barrier",
            EventKind::Bcast => "MPI_Bcast",
            EventKind::Reduce => "MPI_Reduce",
            EventKind::Allreduce => "MPI_Allreduce",
            EventKind::Gather => "MPI_Gather",
            EventKind::Allgather => "MPI_Allgather",
            EventKind::Scatter => "MPI_Scatter",
            EventKind::Alltoall => "MPI_Alltoall",
            EventKind::CommSplit => "MPI_Comm_split",
            EventKind::CommDup => "MPI_Comm_dup",
            EventKind::PosixOpen => "open",
            EventKind::PosixClose => "close",
            EventKind::PosixRead => "read",
            EventKind::PosixWrite => "write",
            EventKind::Compute => "compute",
            EventKind::Marker => "marker",
        }
    }

    /// Point-to-point data movement (send or receive side).
    pub fn is_p2p(self) -> bool {
        matches!(
            self,
            EventKind::Send
                | EventKind::Recv
                | EventKind::Isend
                | EventKind::Irecv
                | EventKind::Sendrecv
        )
    }

    /// Sending half of a point-to-point transfer.
    pub fn is_p2p_send(self) -> bool {
        matches!(
            self,
            EventKind::Send | EventKind::Isend | EventKind::Sendrecv
        )
    }

    /// Collective operation.
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            EventKind::Barrier
                | EventKind::Bcast
                | EventKind::Reduce
                | EventKind::Allreduce
                | EventKind::Gather
                | EventKind::Allgather
                | EventKind::Scatter
                | EventKind::Alltoall
        )
    }

    /// Request-completion call (`MPI_Wait` family).
    pub fn is_wait(self) -> bool {
        matches!(self, EventKind::Wait | EventKind::Waitall)
    }

    /// Data-movement call (point-to-point or collective) — the "transfer"
    /// half of the serialization/transfer decomposition, as opposed to
    /// request completion ([`EventKind::is_wait`]) and control calls.
    pub fn is_transfer(self) -> bool {
        self.is_p2p() || self.is_collective()
    }

    /// POSIX-like file I/O.
    pub fn is_posix(self) -> bool {
        matches!(
            self,
            EventKind::PosixOpen
                | EventKind::PosixClose
                | EventKind::PosixRead
                | EventKind::PosixWrite
        )
    }

    /// Any MPI call (everything that is not POSIX or synthetic).
    pub fn is_mpi(self) -> bool {
        !self.is_posix() && !matches!(self, EventKind::Compute | EventKind::Marker)
    }
}

/// One intercepted call. Fixed-size, directly streamed (48 bytes on wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Call entry timestamp, nanoseconds since application `MPI_Init`.
    pub time_ns: u64,
    /// Time spent inside the call, nanoseconds.
    pub duration_ns: u64,
    /// Which call this is.
    pub kind: EventKind,
    /// Partition-local rank that issued the call.
    pub rank: u32,
    /// Peer rank for point-to-point (destination for sends, matched source
    /// for receives), root for rooted collectives, `-1` otherwise.
    pub peer: i32,
    /// Message tag for point-to-point, `-1` otherwise.
    pub tag: i32,
    /// Dense communicator index within the application (0 = its world).
    pub comm: u32,
    /// Payload bytes moved by the call (0 when not applicable).
    pub bytes: u64,
}

impl Event {
    /// A minimal event with the given kind/rank/time, other fields neutral.
    pub fn basic(kind: EventKind, rank: u32, time_ns: u64, duration_ns: u64) -> Event {
        Event {
            time_ns,
            duration_ns,
            kind,
            rank,
            peer: -1,
            tag: -1,
            comm: 0,
            bytes: 0,
        }
    }

    /// End timestamp of the call.
    pub fn end_ns(&self) -> u64 {
        self.time_ns + self.duration_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_roundtrip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u16(k as u16), Some(k), "{}", k.name());
        }
        assert_eq!(EventKind::from_u16(9999), None);
    }

    #[test]
    fn taxonomy_is_a_partition() {
        for k in EventKind::ALL {
            let classes = [
                k.is_p2p(),
                k.is_collective(),
                k.is_wait(),
                k.is_posix(),
                matches!(k, EventKind::Compute | EventKind::Marker),
                matches!(
                    k,
                    EventKind::Init
                        | EventKind::Finalize
                        | EventKind::Probe
                        | EventKind::CommSplit
                        | EventKind::CommDup
                ),
            ];
            assert_eq!(
                classes.iter().filter(|&&c| c).count(),
                1,
                "{} must be in exactly one class",
                k.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn mpi_classification() {
        assert!(EventKind::Send.is_mpi());
        assert!(EventKind::Barrier.is_mpi());
        assert!(!EventKind::PosixRead.is_mpi());
        assert!(!EventKind::Compute.is_mpi());
        assert!(EventKind::Isend.is_p2p_send());
        assert!(!EventKind::Irecv.is_p2p_send());
    }

    #[test]
    fn transfer_excludes_waits_and_control() {
        assert!(EventKind::Send.is_transfer());
        assert!(EventKind::Irecv.is_transfer());
        assert!(EventKind::Allreduce.is_transfer());
        assert!(!EventKind::Wait.is_transfer());
        assert!(!EventKind::Waitall.is_transfer());
        assert!(!EventKind::Init.is_transfer());
        assert!(!EventKind::PosixWrite.is_transfer());
    }

    #[test]
    fn end_time() {
        let e = Event::basic(EventKind::Send, 0, 100, 20);
        assert_eq!(e.end_ns(), 120);
    }
}
