//! Event packs: the unit streamed from instrumented ranks to the analyzer.

use crate::codec::{self, CodecError};
use crate::event::Event;
use bytes::{Bytes, BytesMut};

/// Wire size of one encoded [`Event`].
pub const EVENT_WIRE_SIZE: usize = 48;
/// Wire size of an encoded [`PackHeader`].
pub const PACK_HEADER_SIZE: usize = 24;

/// Pack metadata: which application/rank produced it and its sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackHeader {
    /// Application (blackboard level) identifier.
    pub app_id: u16,
    /// Partition-local rank of the producer.
    pub rank: u32,
    /// Per-producer pack sequence number (gap detection).
    pub seq: u32,
    /// Number of events in the pack.
    pub count: u32,
}

/// A batch of events plus its header.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPack {
    pub header: PackHeader,
    pub events: Vec<Event>,
}

impl EventPack {
    /// Builds a pack, filling `header.count` from the event list.
    pub fn new(app_id: u16, rank: u32, seq: u32, events: Vec<Event>) -> EventPack {
        EventPack {
            header: PackHeader {
                app_id,
                rank,
                seq,
                count: events.len() as u32,
            },
            events,
        }
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        PACK_HEADER_SIZE + self.events.len() * EVENT_WIRE_SIZE
    }

    /// How many events fit in a block of `block_size` bytes.
    pub fn capacity_for_block(block_size: usize) -> usize {
        block_size.saturating_sub(PACK_HEADER_SIZE) / EVENT_WIRE_SIZE
    }

    /// Serializes the pack to a standalone buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        codec::encode_header(&self.header, &mut buf);
        for e in &self.events {
            codec::encode_event(e, &mut buf);
        }
        buf.freeze()
    }

    /// Parses a pack from a buffer produced by [`EventPack::encode`].
    pub fn decode(data: &[u8]) -> Result<EventPack, CodecError> {
        let mut buf = data;
        let header = codec::decode_header(&mut buf)?;
        let mut events = Vec::with_capacity(header.count as usize);
        for _ in 0..header.count {
            events.push(codec::decode_event(&mut buf)?);
        }
        Ok(EventPack { header, events })
    }

    /// Total payload bytes carried by the pack's events.
    pub fn total_event_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample(n: usize) -> EventPack {
        let events = (0..n)
            .map(|i| Event {
                time_ns: i as u64 * 1000,
                duration_ns: 10 + i as u64,
                kind: EventKind::ALL[i % EventKind::ALL.len()],
                rank: 3,
                peer: (i % 5) as i32 - 1,
                tag: i as i32,
                comm: 0,
                bytes: (i * i) as u64,
            })
            .collect();
        EventPack::new(2, 3, 99, events)
    }

    #[test]
    fn roundtrip_empty_pack() {
        let p = EventPack::new(0, 0, 0, vec![]);
        assert_eq!(EventPack::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn roundtrip_full_pack() {
        let p = sample(257);
        let enc = p.encode();
        assert_eq!(enc.len(), p.wire_size());
        assert_eq!(EventPack::decode(&enc).unwrap(), p);
    }

    #[test]
    fn capacity_matches_wire_size() {
        let cap = EventPack::capacity_for_block(1 << 20);
        let p = sample(cap);
        assert!(p.wire_size() <= 1 << 20);
        let p2 = sample(cap + 1);
        assert!(p2.wire_size() > 1 << 20);
    }

    #[test]
    fn truncated_pack_rejected() {
        let p = sample(4);
        let enc = p.encode();
        assert!(EventPack::decode(&enc[..enc.len() - 1]).is_err());
        assert!(EventPack::decode(&enc[..PACK_HEADER_SIZE]).is_err());
    }

    #[test]
    fn total_bytes_sums_events() {
        let p = sample(5);
        assert_eq!(p.total_event_bytes(), (0..5).map(|i| (i * i) as u64).sum());
    }
}
