//! Event packs: the unit streamed from instrumented ranks to the analyzer.

use crate::codec::{self, CodecError};
use crate::event::Event;
use bytes::{Bytes, BytesMut};

/// Wire size of one encoded [`Event`] in the fixed layout.
pub const EVENT_WIRE_SIZE: usize = 48;
/// Wire size of an encoded [`PackHeader`].
pub const PACK_HEADER_SIZE: usize = 24;
/// Worst-case wire size of one delta/varint-coded event: 10 bytes for
/// each of the three u64 fields (time delta, duration, bytes), 3 for the
/// kind, 5 each for rank delta, peer, tag and comm. Real workloads sit
/// near 10 bytes; packing budgets must assume this bound so a full pack
/// can never overflow its stream block.
pub const DELTA_EVENT_MAX_WIRE_SIZE: usize = 53;

/// How a pack's event section is laid out on the wire.
///
/// `Fixed` is the legacy 48-byte-per-event layout (wire version 1) that
/// old peers decode; `Delta` is the batched delta/varint layout (wire
/// version 2). Decoding always dispatches on the header's version, so any
/// reader understands both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PackEncoding {
    /// Fixed 48-byte events — bitwise-identical to the pre-delta format.
    #[default]
    Fixed,
    /// Per-pack delta/varint events.
    Delta,
}

impl PackEncoding {
    /// The pack header version this encoding stamps.
    pub const fn version(self) -> u16 {
        match self {
            PackEncoding::Fixed => codec::VERSION,
            PackEncoding::Delta => codec::VERSION_DELTA,
        }
    }

    /// Inverse of [`PackEncoding::version`].
    pub const fn from_version(version: u16) -> Option<PackEncoding> {
        match version {
            codec::VERSION => Some(PackEncoding::Fixed),
            codec::VERSION_DELTA => Some(PackEncoding::Delta),
            _ => None,
        }
    }

    /// Worst-case bytes one event can take in this encoding.
    pub const fn max_event_wire_size(self) -> usize {
        match self {
            PackEncoding::Fixed => EVENT_WIRE_SIZE,
            PackEncoding::Delta => DELTA_EVENT_MAX_WIRE_SIZE,
        }
    }
}

impl std::fmt::Display for PackEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackEncoding::Fixed => write!(f, "fixed"),
            PackEncoding::Delta => write!(f, "delta"),
        }
    }
}

/// Pack metadata: which application/rank produced it and its sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackHeader {
    /// Application (blackboard level) identifier.
    pub app_id: u16,
    /// Partition-local rank of the producer.
    pub rank: u32,
    /// Per-producer pack sequence number (gap detection).
    pub seq: u32,
    /// Number of events in the pack.
    pub count: u32,
}

/// A batch of events plus its header.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPack {
    pub header: PackHeader,
    pub events: Vec<Event>,
}

impl EventPack {
    /// Builds a pack, filling `header.count` from the event list.
    pub fn new(app_id: u16, rank: u32, seq: u32, events: Vec<Event>) -> EventPack {
        EventPack {
            header: PackHeader {
                app_id,
                rank,
                seq,
                count: events.len() as u32,
            },
            events,
        }
    }

    /// Encoded size in bytes in the fixed layout (exact).
    pub fn wire_size(&self) -> usize {
        PACK_HEADER_SIZE + self.events.len() * EVENT_WIRE_SIZE
    }

    /// Upper bound on the encoded size under `encoding`. Exact for
    /// [`PackEncoding::Fixed`]; for [`PackEncoding::Delta`] the actual
    /// size is data-dependent and at most this.
    pub fn max_wire_size_for(&self, encoding: PackEncoding) -> usize {
        PACK_HEADER_SIZE + self.events.len() * encoding.max_event_wire_size()
    }

    /// How many events are *guaranteed* to fit a block of `block_size`
    /// bytes in the fixed layout.
    pub fn capacity_for_block(block_size: usize) -> usize {
        Self::capacity_for_block_with(block_size, PackEncoding::Fixed)
    }

    /// How many events are guaranteed to fit a block of `block_size`
    /// bytes under `encoding`, using the encoding's worst-case per-event
    /// size — a full pack can never overflow the block/frame budget.
    pub fn capacity_for_block_with(block_size: usize, encoding: PackEncoding) -> usize {
        block_size.saturating_sub(PACK_HEADER_SIZE) / encoding.max_event_wire_size()
    }

    /// Serializes the pack to a standalone buffer in the fixed layout —
    /// byte-identical to the pre-delta format.
    pub fn encode(&self) -> Bytes {
        self.encode_with(PackEncoding::Fixed)
    }

    /// Serializes the pack to a standalone buffer under `encoding`.
    pub fn encode_with(&self, encoding: PackEncoding) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.max_wire_size_for(encoding));
        self.encode_into(encoding, &mut buf);
        buf.freeze()
    }

    /// Appends the encoded pack to `out` (the pooled-buffer hot path:
    /// callers reuse `out` across packs and allocate nothing in steady
    /// state). Returns the number of bytes appended.
    pub fn encode_into(&self, encoding: PackEncoding, out: &mut BytesMut) -> usize {
        let before = out.len();
        out.reserve(self.max_wire_size_for(encoding));
        codec::encode_header_versioned(&self.header, encoding.version(), out);
        match encoding {
            PackEncoding::Fixed => {
                for e in &self.events {
                    codec::encode_event(e, out);
                }
            }
            PackEncoding::Delta => {
                let mut st = codec::DeltaState::new(self.header.rank);
                for e in &self.events {
                    codec::encode_event_delta(e, &mut st, out);
                }
            }
        }
        out.len() - before
    }

    /// Parses a pack from a buffer produced by any [`EventPack::encode_with`]
    /// encoding — the header's version selects the event codec.
    pub fn decode(data: &[u8]) -> Result<EventPack, CodecError> {
        let mut buf = data;
        let (header, version) = codec::decode_header_any(&mut buf)?;
        // `decode_header_any` only admits known versions, so the fallback
        // arm is unreachable in practice; Fixed keeps it total.
        let encoding = PackEncoding::from_version(version).unwrap_or(PackEncoding::Fixed);
        let mut events = Vec::with_capacity((header.count as usize).min(1 << 20));
        match encoding {
            PackEncoding::Fixed => {
                for _ in 0..header.count {
                    events.push(codec::decode_event(&mut buf)?);
                }
            }
            PackEncoding::Delta => {
                let mut st = codec::DeltaState::new(header.rank);
                for _ in 0..header.count {
                    events.push(codec::decode_event_delta(&mut buf, &mut st)?);
                }
            }
        }
        Ok(EventPack { header, events })
    }

    /// Total payload bytes carried by the pack's events.
    pub fn total_event_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::event::EventKind;

    fn sample(n: usize) -> EventPack {
        let events = (0..n)
            .map(|i| Event {
                time_ns: i as u64 * 1000,
                duration_ns: 10 + i as u64,
                kind: EventKind::ALL[i % EventKind::ALL.len()],
                rank: 3,
                peer: (i % 5) as i32 - 1,
                tag: i as i32,
                comm: 0,
                bytes: (i * i) as u64,
            })
            .collect();
        EventPack::new(2, 3, 99, events)
    }

    /// Events that hit the delta codec's worst case on every field.
    fn worst_case(n: usize) -> EventPack {
        let events = (0..n)
            .map(|i| Event {
                // Alternate across half the u64 range so every time delta
                // is i64::MIN — the widest possible zigzag varint.
                time_ns: if i % 2 == 0 { 1u64 << 63 } else { 0 },
                duration_ns: u64::MAX,
                kind: EventKind::ALL[EventKind::ALL.len() - 1],
                rank: if i % 2 == 0 { u32::MAX } else { 0 },
                peer: i32::MIN,
                tag: i32::MIN,
                comm: u32::MAX,
                bytes: u64::MAX,
            })
            .collect();
        EventPack::new(1, 0, 0, events)
    }

    #[test]
    fn roundtrip_empty_pack() {
        let p = EventPack::new(0, 0, 0, vec![]);
        assert_eq!(EventPack::decode(&p.encode()).unwrap(), p);
        assert_eq!(
            EventPack::decode(&p.encode_with(PackEncoding::Delta)).unwrap(),
            p
        );
    }

    #[test]
    fn roundtrip_full_pack() {
        let p = sample(257);
        let enc = p.encode();
        assert_eq!(enc.len(), p.wire_size());
        assert_eq!(EventPack::decode(&enc).unwrap(), p);
    }

    #[test]
    fn roundtrip_delta_pack_and_it_is_smaller() {
        let p = sample(257);
        let fixed = p.encode();
        let delta = p.encode_with(PackEncoding::Delta);
        assert_eq!(EventPack::decode(&delta).unwrap(), p);
        assert!(
            delta.len() * 3 <= fixed.len(),
            "delta {} vs fixed {}",
            delta.len(),
            fixed.len()
        );
    }

    #[test]
    fn fixed_encode_is_bitwise_legacy() {
        // encode() must stay byte-identical to the historical layout so
        // old peers keep decoding it.
        let p = sample(3);
        let enc = p.encode();
        assert_eq!(enc.len(), PACK_HEADER_SIZE + 3 * EVENT_WIRE_SIZE);
        assert_eq!(&enc[0..4], b"OPMR");
        assert_eq!(u16::from_le_bytes([enc[4], enc[5]]), codec::VERSION);
        // First event's time_ns at the fixed offset.
        let t = u64::from_le_bytes(enc[24..32].try_into().unwrap());
        assert_eq!(t, p.events[0].time_ns);
    }

    #[test]
    fn capacity_matches_wire_size() {
        let cap = EventPack::capacity_for_block(1 << 20);
        let p = sample(cap);
        assert!(p.wire_size() <= 1 << 20);
        let p2 = sample(cap + 1);
        assert!(p2.wire_size() > 1 << 20);
    }

    #[test]
    fn delta_capacity_never_overflows_block_exact_boundary() {
        // The regression the encoding-aware capacity exists for: a pack
        // of worst-case events must fit the block it was sized for, at
        // the exact boundary.
        for block in [
            PACK_HEADER_SIZE + DELTA_EVENT_MAX_WIRE_SIZE,
            PACK_HEADER_SIZE + DELTA_EVENT_MAX_WIRE_SIZE + DELTA_EVENT_MAX_WIRE_SIZE - 1,
            4096,
            1 << 16,
        ] {
            let cap = EventPack::capacity_for_block_with(block, PackEncoding::Delta);
            let p = worst_case(cap);
            let enc = p.encode_with(PackEncoding::Delta);
            assert!(
                enc.len() <= block,
                "block {block}: cap {cap} encoded to {} bytes",
                enc.len()
            );
            assert!(enc.len() <= p.max_wire_size_for(PackEncoding::Delta));
            // One more worst-case event must be able to overflow — i.e.
            // the capacity is tight, not merely safe.
            let p1 = worst_case(cap + 1);
            assert!(p1.max_wire_size_for(PackEncoding::Delta) > block);
            assert_eq!(EventPack::decode(&enc).unwrap(), p);
        }
    }

    #[test]
    fn worst_case_event_bound_is_tight() {
        // Real worst-case events reach the bound minus exactly the two
        // bytes of headroom the bound reserves for the kind field (the
        // bound budgets a full 3-byte u16 varint; today's largest
        // discriminant, 91, encodes in one byte).
        let p = worst_case(2);
        let enc = p.encode_with(PackEncoding::Delta);
        let body = enc.len() - PACK_HEADER_SIZE;
        assert_eq!(body, 2 * (DELTA_EVENT_MAX_WIRE_SIZE - 2));
    }

    #[test]
    fn encode_into_appends_and_reports_len() {
        let p = sample(10);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"prefix");
        let n = p.encode_into(PackEncoding::Delta, &mut buf);
        assert_eq!(buf.len(), 6 + n);
        assert_eq!(EventPack::decode(&buf[6..]).unwrap(), p);
    }

    #[test]
    fn truncated_pack_rejected() {
        let p = sample(4);
        let enc = p.encode();
        assert!(EventPack::decode(&enc[..enc.len() - 1]).is_err());
        assert!(EventPack::decode(&enc[..PACK_HEADER_SIZE]).is_err());
        let delta = p.encode_with(PackEncoding::Delta);
        for cut in 0..delta.len() {
            assert!(EventPack::decode(&delta[..cut]).is_err());
        }
    }

    #[test]
    fn total_bytes_sums_events() {
        let p = sample(5);
        assert_eq!(p.total_event_bytes(), (0..5).map(|i| (i * i) as u64).sum());
    }
}
