//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! The delta event codec (pack wire version 2) stores almost-constant
//! fields — timestamps, ranks, tags — as varints of their per-pack deltas.
//! Encoding is the usual base-128 little-endian scheme: seven payload bits
//! per byte, high bit set on every byte but the last; a `u64` therefore
//! takes at most [`MAX_UVARINT_LEN`] bytes. Signed values go through
//! [`zigzag`] first so small negative deltas stay short.

use crate::codec::CodecError;
use bytes::BufMut;

/// Longest encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_UVARINT_LEN: usize = 10;

/// Appends `v` as a LEB128 varint.
#[inline]
pub fn put_uvarint(out: &mut impl BufMut, mut v: u64) {
    while v >= 0x80 {
        out.put_u8((v as u8) | 0x80);
        v >>= 7;
    }
    out.put_u8(v as u8);
}

/// Reads a LEB128 varint from the front of `*buf`, advancing it.
///
/// Fails with [`CodecError::Truncated`] when the slice ends inside a
/// varint and [`CodecError::VarintOverflow`] when the encoding spills past
/// 64 bits (more than 10 bytes, or set bits beyond bit 63).
#[inline]
pub fn get_uvarint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_UVARINT_LEN {
            return Err(CodecError::VarintOverflow);
        }
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only carry the single remaining bit of a u64.
        if shift == 63 && payload > 1 {
            return Err(CodecError::VarintOverflow);
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Ok(v);
        }
        shift += 7;
    }
    Err(CodecError::Truncated {
        need: buf.len() + 1,
        have: buf.len(),
    })
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small: 0, -1, 1, -2 → 0, 1, 2, 3.
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: u64) -> (u64, usize) {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, v);
        let len = buf.len();
        let mut s: &[u8] = &buf;
        let got = get_uvarint(&mut s).unwrap();
        assert!(s.is_empty());
        (got, len)
    }

    #[test]
    fn uvarint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let (got, len) = roundtrip(v);
            assert_eq!(got, v);
            assert!(len <= MAX_UVARINT_LEN);
        }
        assert_eq!(roundtrip(u64::MAX).1, MAX_UVARINT_LEN);
        assert_eq!(roundtrip(0).1, 1);
    }

    #[test]
    fn truncated_uvarint_detected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut s: &[u8] = &buf[..cut];
            assert!(matches!(
                get_uvarint(&mut s),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn overlong_uvarint_rejected() {
        // 11 continuation bytes can never be a u64.
        let mut s: &[u8] = &[0x80u8; 11][..];
        assert_eq!(get_uvarint(&mut s), Err(CodecError::VarintOverflow));
        // 10 bytes whose last byte carries more than one bit overflows too.
        let mut over = vec![0xFFu8; 9];
        over.push(0x02);
        let mut s: &[u8] = &over;
        assert_eq!(get_uvarint(&mut s), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
