//! Little-endian wire codec for events and packs.
//!
//! Layout (all little-endian):
//!
//! ```text
//! Event (48 bytes):
//!   0  u64 time_ns
//!   8  u64 duration_ns
//!  16  u64 bytes
//!  24  u16 kind          26 u16 _pad
//!  28  u32 rank
//!  32  i32 peer
//!  36  i32 tag
//!  40  u32 comm          44 u32 _pad
//!
//! PackHeader (24 bytes):
//!   0  u32 magic ("OPMR")
//!   4  u16 version        6 u16 app_id
//!   8  u32 rank
//!  12  u32 seq
//!  16  u32 count
//!  20  u32 _pad
//! ```

use crate::event::{Event, EventKind};
use crate::pack::{PackHeader, EVENT_WIRE_SIZE, PACK_HEADER_SIZE};
use bytes::{Buf, BufMut};

/// `"OPMR"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"OPMR");
/// Current wire version.
pub const VERSION: u16 = 1;

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    Truncated { need: usize, have: usize },
    BadMagic(u32),
    BadVersion(u16),
    BadKind(u16),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated buffer: need {need} bytes, have {have}")
            }
            CodecError::BadMagic(m) => write!(f, "bad pack magic {m:#x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported pack version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown event kind {k}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends one event to `out`.
pub fn encode_event(e: &Event, out: &mut impl BufMut) {
    out.put_u64_le(e.time_ns);
    out.put_u64_le(e.duration_ns);
    out.put_u64_le(e.bytes);
    out.put_u16_le(e.kind as u16);
    out.put_u16_le(0);
    out.put_u32_le(e.rank);
    out.put_i32_le(e.peer);
    out.put_i32_le(e.tag);
    out.put_u32_le(e.comm);
    out.put_u32_le(0);
}

/// Decodes one event from the front of `buf`.
pub fn decode_event(buf: &mut impl Buf) -> Result<Event, CodecError> {
    if buf.remaining() < EVENT_WIRE_SIZE {
        return Err(CodecError::Truncated {
            need: EVENT_WIRE_SIZE,
            have: buf.remaining(),
        });
    }
    let time_ns = buf.get_u64_le();
    let duration_ns = buf.get_u64_le();
    let bytes = buf.get_u64_le();
    let kind_raw = buf.get_u16_le();
    let _pad = buf.get_u16_le();
    let rank = buf.get_u32_le();
    let peer = buf.get_i32_le();
    let tag = buf.get_i32_le();
    let comm = buf.get_u32_le();
    let _pad2 = buf.get_u32_le();
    let kind = EventKind::from_u16(kind_raw).ok_or(CodecError::BadKind(kind_raw))?;
    Ok(Event {
        time_ns,
        duration_ns,
        kind,
        rank,
        peer,
        tag,
        comm,
        bytes,
    })
}

/// Appends a pack header to `out`.
pub fn encode_header(h: &PackHeader, out: &mut impl BufMut) {
    out.put_u32_le(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(h.app_id);
    out.put_u32_le(h.rank);
    out.put_u32_le(h.seq);
    out.put_u32_le(h.count);
    out.put_u32_le(0);
}

/// Decodes a pack header from the front of `buf`.
pub fn decode_header(buf: &mut impl Buf) -> Result<PackHeader, CodecError> {
    if buf.remaining() < PACK_HEADER_SIZE {
        return Err(CodecError::Truncated {
            need: PACK_HEADER_SIZE,
            have: buf.remaining(),
        });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let app_id = buf.get_u16_le();
    let rank = buf.get_u32_le();
    let seq = buf.get_u32_le();
    let count = buf.get_u32_le();
    let _pad = buf.get_u32_le();
    Ok(PackHeader {
        app_id,
        rank,
        seq,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn event_wire_size_is_exact() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Send, 1, 2, 3), &mut buf);
        assert_eq!(buf.len(), EVENT_WIRE_SIZE);
    }

    #[test]
    fn header_wire_size_is_exact() {
        let mut buf = BytesMut::new();
        encode_header(
            &PackHeader {
                app_id: 1,
                rank: 2,
                seq: 3,
                count: 4,
            },
            &mut buf,
        );
        assert_eq!(buf.len(), PACK_HEADER_SIZE);
    }

    #[test]
    fn event_roundtrip_all_fields() {
        let e = Event {
            time_ns: u64::MAX - 5,
            duration_ns: 123_456_789,
            kind: EventKind::Alltoall,
            rank: 8280,
            peer: -1,
            tag: i32::MIN,
            comm: 7,
            bytes: 1 << 40,
        };
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        let got = decode_event(&mut buf.freeze()).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn truncated_event_detected() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Recv, 0, 0, 0), &mut buf);
        let mut short = buf.freeze().slice(0..EVENT_WIRE_SIZE - 1);
        assert!(matches!(
            decode_event(&mut short),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xBAD_F00D);
        buf.extend_from_slice(&[0u8; PACK_HEADER_SIZE - 4]);
        assert!(matches!(
            decode_header(&mut buf.freeze()),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_kind_detected() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Send, 0, 0, 0), &mut buf);
        buf[24] = 0xFF;
        buf[25] = 0xFF;
        assert_eq!(
            decode_event(&mut buf.freeze()),
            Err(CodecError::BadKind(0xFFFF))
        );
    }
}
