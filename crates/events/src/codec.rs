//! Little-endian wire codec for events and packs.
//!
//! Layout (all little-endian):
//!
//! ```text
//! Event (48 bytes):
//!   0  u64 time_ns
//!   8  u64 duration_ns
//!  16  u64 bytes
//!  24  u16 kind          26 u16 _pad
//!  28  u32 rank
//!  32  i32 peer
//!  36  i32 tag
//!  40  u32 comm          44 u32 _pad
//!
//! PackHeader (24 bytes):
//!   0  u32 magic ("OPMR")
//!   4  u16 version        6 u16 app_id
//!   8  u32 rank
//!  12  u32 seq
//!  16  u32 count
//!  20  u32 _pad
//! ```

use crate::event::{Event, EventKind};
use crate::pack::{PackHeader, EVENT_WIRE_SIZE, PACK_HEADER_SIZE};
use crate::vint;
use bytes::{Buf, BufMut};

/// `"OPMR"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"OPMR");
/// Fixed-layout wire version (the legacy format old peers understand).
pub const VERSION: u16 = 1;
/// Delta/varint wire version (PR 9's batched compact encoding).
pub const VERSION_DELTA: u16 = 2;

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    Truncated {
        need: usize,
        have: usize,
    },
    BadMagic(u32),
    BadVersion(u16),
    BadKind(u16),
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A decoded value does not fit its event field.
    FieldOverflow(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated buffer: need {need} bytes, have {have}")
            }
            CodecError::BadMagic(m) => write!(f, "bad pack magic {m:#x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported pack version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown event kind {k}"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::FieldOverflow(field) => {
                write!(f, "decoded value does not fit event field `{field}`")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends one event to `out`.
pub fn encode_event(e: &Event, out: &mut impl BufMut) {
    out.put_u64_le(e.time_ns);
    out.put_u64_le(e.duration_ns);
    out.put_u64_le(e.bytes);
    out.put_u16_le(e.kind as u16);
    out.put_u16_le(0);
    out.put_u32_le(e.rank);
    out.put_i32_le(e.peer);
    out.put_i32_le(e.tag);
    out.put_u32_le(e.comm);
    out.put_u32_le(0);
}

/// Decodes one event from the front of `buf`.
pub fn decode_event(buf: &mut impl Buf) -> Result<Event, CodecError> {
    if buf.remaining() < EVENT_WIRE_SIZE {
        return Err(CodecError::Truncated {
            need: EVENT_WIRE_SIZE,
            have: buf.remaining(),
        });
    }
    let time_ns = buf.get_u64_le();
    let duration_ns = buf.get_u64_le();
    let bytes = buf.get_u64_le();
    let kind_raw = buf.get_u16_le();
    let _pad = buf.get_u16_le();
    let rank = buf.get_u32_le();
    let peer = buf.get_i32_le();
    let tag = buf.get_i32_le();
    let comm = buf.get_u32_le();
    let _pad2 = buf.get_u32_le();
    let kind = EventKind::from_u16(kind_raw).ok_or(CodecError::BadKind(kind_raw))?;
    Ok(Event {
        time_ns,
        duration_ns,
        kind,
        rank,
        peer,
        tag,
        comm,
        bytes,
    })
}

// ---------------------------------------------------------------------
// Delta/varint event codec (pack wire version 2).
//
// Per event, in field order, each a LEB128 varint (signed fields zigzag):
//   time_ns   zigzag(wrapping delta from the previous event's time_ns;
//             the first event deltas from 0)
//   duration  raw
//   bytes     raw
//   kind      raw (u16)
//   rank      zigzag(delta from the previous event's rank; the first
//             event deltas from the pack header's rank)
//   peer      zigzag
//   tag       zigzag
//   comm      raw (u32)
//
// Timestamps are monotone and ranks near-constant within a pack, so the
// two delta fields collapse to one or two bytes each in practice.
// ---------------------------------------------------------------------

/// Running per-pack state the delta codec threads between events.
#[derive(Debug, Clone, Copy)]
pub struct DeltaState {
    prev_time_ns: u64,
    prev_rank: u32,
}

impl DeltaState {
    /// Starts a pack: the first event's rank deltas against the header's.
    pub fn new(header_rank: u32) -> DeltaState {
        DeltaState {
            prev_time_ns: 0,
            prev_rank: header_rank,
        }
    }
}

/// Appends one delta/varint-coded event to `out`.
pub fn encode_event_delta(e: &Event, st: &mut DeltaState, out: &mut impl BufMut) {
    let dt = e.time_ns.wrapping_sub(st.prev_time_ns) as i64;
    st.prev_time_ns = e.time_ns;
    vint::put_uvarint(out, vint::zigzag(dt));
    vint::put_uvarint(out, e.duration_ns);
    vint::put_uvarint(out, e.bytes);
    vint::put_uvarint(out, e.kind as u16 as u64);
    let dr = e.rank as i64 - st.prev_rank as i64;
    st.prev_rank = e.rank;
    vint::put_uvarint(out, vint::zigzag(dr));
    vint::put_uvarint(out, vint::zigzag(e.peer as i64));
    vint::put_uvarint(out, vint::zigzag(e.tag as i64));
    vint::put_uvarint(out, e.comm as u64);
}

/// Decodes one delta/varint-coded event from the front of `*buf`.
pub fn decode_event_delta(buf: &mut &[u8], st: &mut DeltaState) -> Result<Event, CodecError> {
    let dt = vint::unzigzag(vint::get_uvarint(buf)?);
    let time_ns = st.prev_time_ns.wrapping_add(dt as u64);
    st.prev_time_ns = time_ns;
    let duration_ns = vint::get_uvarint(buf)?;
    let bytes = vint::get_uvarint(buf)?;
    let kind_raw = vint::get_uvarint(buf)?;
    let kind_raw = u16::try_from(kind_raw).map_err(|_| CodecError::FieldOverflow("kind"))?;
    let kind = EventKind::from_u16(kind_raw).ok_or(CodecError::BadKind(kind_raw))?;
    let dr = vint::unzigzag(vint::get_uvarint(buf)?);
    let rank_wide = st.prev_rank as i64 + dr;
    let rank = u32::try_from(rank_wide).map_err(|_| CodecError::FieldOverflow("rank"))?;
    st.prev_rank = rank;
    let peer = i32::try_from(vint::unzigzag(vint::get_uvarint(buf)?))
        .map_err(|_| CodecError::FieldOverflow("peer"))?;
    let tag = i32::try_from(vint::unzigzag(vint::get_uvarint(buf)?))
        .map_err(|_| CodecError::FieldOverflow("tag"))?;
    let comm =
        u32::try_from(vint::get_uvarint(buf)?).map_err(|_| CodecError::FieldOverflow("comm"))?;
    Ok(Event {
        time_ns,
        duration_ns,
        kind,
        rank,
        peer,
        tag,
        comm,
        bytes,
    })
}

/// Appends a pack header to `out` (fixed-layout wire version 1).
pub fn encode_header(h: &PackHeader, out: &mut impl BufMut) {
    encode_header_versioned(h, VERSION, out);
}

/// Appends a pack header carrying an explicit wire version.
pub fn encode_header_versioned(h: &PackHeader, version: u16, out: &mut impl BufMut) {
    out.put_u32_le(MAGIC);
    out.put_u16_le(version);
    out.put_u16_le(h.app_id);
    out.put_u32_le(h.rank);
    out.put_u32_le(h.seq);
    out.put_u32_le(h.count);
    out.put_u32_le(0);
}

/// Decodes a fixed-layout (version 1) pack header from the front of `buf`.
pub fn decode_header(buf: &mut impl Buf) -> Result<PackHeader, CodecError> {
    let (h, version) = decode_header_any(buf)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    Ok(h)
}

/// Decodes a pack header of any supported wire version, returning the
/// version so the caller can pick the matching event codec.
pub fn decode_header_any(buf: &mut impl Buf) -> Result<(PackHeader, u16), CodecError> {
    if buf.remaining() < PACK_HEADER_SIZE {
        return Err(CodecError::Truncated {
            need: PACK_HEADER_SIZE,
            have: buf.remaining(),
        });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != VERSION_DELTA {
        return Err(CodecError::BadVersion(version));
    }
    let app_id = buf.get_u16_le();
    let rank = buf.get_u32_le();
    let seq = buf.get_u32_le();
    let count = buf.get_u32_le();
    let _pad = buf.get_u32_le();
    Ok((
        PackHeader {
            app_id,
            rank,
            seq,
            count,
        },
        version,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn event_wire_size_is_exact() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Send, 1, 2, 3), &mut buf);
        assert_eq!(buf.len(), EVENT_WIRE_SIZE);
    }

    #[test]
    fn header_wire_size_is_exact() {
        let mut buf = BytesMut::new();
        encode_header(
            &PackHeader {
                app_id: 1,
                rank: 2,
                seq: 3,
                count: 4,
            },
            &mut buf,
        );
        assert_eq!(buf.len(), PACK_HEADER_SIZE);
    }

    #[test]
    fn event_roundtrip_all_fields() {
        let e = Event {
            time_ns: u64::MAX - 5,
            duration_ns: 123_456_789,
            kind: EventKind::Alltoall,
            rank: 8280,
            peer: -1,
            tag: i32::MIN,
            comm: 7,
            bytes: 1 << 40,
        };
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        let got = decode_event(&mut buf.freeze()).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn truncated_event_detected() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Recv, 0, 0, 0), &mut buf);
        let mut short = buf.freeze().slice(0..EVENT_WIRE_SIZE - 1);
        assert!(matches!(
            decode_event(&mut short),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xBAD_F00D);
        buf.extend_from_slice(&[0u8; PACK_HEADER_SIZE - 4]);
        assert!(matches!(
            decode_header(&mut buf.freeze()),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn delta_event_roundtrip_extremes() {
        let events = [
            Event {
                time_ns: u64::MAX,
                duration_ns: u64::MAX,
                kind: EventKind::Alltoall,
                rank: u32::MAX,
                peer: i32::MIN,
                tag: i32::MIN,
                comm: u32::MAX,
                bytes: u64::MAX,
            },
            Event {
                time_ns: 0,
                duration_ns: 0,
                kind: EventKind::Send,
                rank: 0,
                peer: i32::MAX,
                tag: i32::MAX,
                comm: 0,
                bytes: 0,
            },
            Event::basic(EventKind::Recv, 7, 1000, 9),
        ];
        let mut buf = BytesMut::new();
        let mut enc = DeltaState::new(42);
        for e in &events {
            let before = buf.len();
            encode_event_delta(e, &mut enc, &mut buf);
            assert!(buf.len() - before <= crate::pack::DELTA_EVENT_MAX_WIRE_SIZE);
        }
        let mut dec = DeltaState::new(42);
        let mut s: &[u8] = &buf;
        for e in &events {
            assert_eq!(decode_event_delta(&mut s, &mut dec).unwrap(), *e);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn delta_event_small_deltas_are_tiny() {
        let mut buf = BytesMut::new();
        let mut enc = DeltaState::new(3);
        let e = Event {
            time_ns: 1_000_000,
            duration_ns: 40,
            kind: EventKind::Send,
            rank: 3,
            peer: 4,
            tag: 1,
            comm: 0,
            bytes: 64,
        };
        encode_event_delta(&e, &mut enc, &mut buf);
        let first = buf.len();
        let e2 = Event {
            time_ns: 1_000_120,
            ..e
        };
        encode_event_delta(&e2, &mut enc, &mut buf);
        // Steady state: only the time delta costs more than one byte.
        assert!(
            buf.len() - first <= 10,
            "steady event took {} bytes",
            buf.len() - first
        );
    }

    #[test]
    fn delta_field_overflows_typed() {
        // rank delta pushing past u32::MAX.
        let mut buf = BytesMut::new();
        vint::put_uvarint(&mut buf, vint::zigzag(0)); // time
        vint::put_uvarint(&mut buf, 0); // duration
        vint::put_uvarint(&mut buf, 0); // bytes
        vint::put_uvarint(&mut buf, 0); // kind = Send
        vint::put_uvarint(&mut buf, vint::zigzag(u32::MAX as i64 + 1)); // rank delta
        let mut st = DeltaState::new(0);
        let mut s: &[u8] = &buf;
        assert_eq!(
            decode_event_delta(&mut s, &mut st),
            Err(CodecError::FieldOverflow("rank"))
        );

        // peer outside i32.
        let mut buf = BytesMut::new();
        for _ in 0..4 {
            vint::put_uvarint(&mut buf, 0);
        }
        vint::put_uvarint(&mut buf, vint::zigzag(0)); // rank delta
        vint::put_uvarint(&mut buf, vint::zigzag(i32::MAX as i64 + 1)); // peer
        let mut st = DeltaState::new(0);
        let mut s: &[u8] = &buf;
        assert_eq!(
            decode_event_delta(&mut s, &mut st),
            Err(CodecError::FieldOverflow("peer"))
        );
    }

    #[test]
    fn versioned_header_roundtrips_and_rejects() {
        let h = PackHeader {
            app_id: 1,
            rank: 2,
            seq: 3,
            count: 4,
        };
        let mut buf = BytesMut::new();
        encode_header_versioned(&h, VERSION_DELTA, &mut buf);
        let frozen = buf.freeze();
        // The strict v1 decoder refuses v2...
        assert_eq!(
            decode_header(&mut frozen.clone()),
            Err(CodecError::BadVersion(VERSION_DELTA))
        );
        // ...the version-dispatching one returns it.
        assert_eq!(
            decode_header_any(&mut frozen.clone()).unwrap(),
            (h, VERSION_DELTA)
        );
        // Unknown versions stay typed rejections.
        let mut buf = BytesMut::new();
        encode_header_versioned(&h, 9, &mut buf);
        assert_eq!(
            decode_header_any(&mut buf.freeze()),
            Err(CodecError::BadVersion(9))
        );
    }

    #[test]
    fn bad_kind_detected() {
        let mut buf = BytesMut::new();
        encode_event(&Event::basic(EventKind::Send, 0, 0, 0), &mut buf);
        buf[24] = 0xFF;
        buf[25] = 0xFF;
        assert_eq!(
            decode_event(&mut buf.freeze()),
            Err(CodecError::BadKind(0xFFFF))
        );
    }
}
