//! Pooled block buffers for the event hot path.
//!
//! Steady-state encoding must not allocate: the recorder, the stream
//! writer and the compressor all borrow scratch buffers from a
//! [`BufferPool`] and hand them back when the block has been shipped.
//! The pool is a plain LIFO of [`BytesMut`] under a mutex — checkout is
//! two pointer moves, far off the per-event path (one checkout per
//! *block*, i.e. per thousands of events) — with hit/miss/return counters
//! so tests (and the obs layer) can prove the steady state recycles
//! rather than allocates.

use bytes::BytesMut;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on buffers retained per pool; beyond this, returned
/// buffers are dropped (freed) instead of pooled.
const MAX_POOLED: usize = 64;

/// Pool usage counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the pool.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers handed back.
    pub returns: u64,
}

/// A LIFO free-list of reusable [`BytesMut`] block buffers.
pub struct BufferPool {
    free: Mutex<Vec<BytesMut>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    /// An empty pool.
    pub const fn new() -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
        }
    }

    /// Checks out an empty buffer with at least `min_capacity` bytes of
    /// capacity, recycling a pooled one when available.
    pub fn get(&self, min_capacity: usize) -> BytesMut {
        let popped = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            free.pop()
        };
        match popped {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::with_capacity(min_capacity)
            }
        }
    }

    /// Returns a buffer to the pool. Contents are discarded; buffers past
    /// the retention cap are freed.
    pub fn put(&self, mut buf: BytesMut) {
        self.returns.fetch_add(1, Ordering::Relaxed);
        buf.clear();
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Buffers currently sitting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Monotonic usage counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide block-buffer pool shared by recorders, stream
/// writers and compressors.
pub fn global_pool() -> &'static BufferPool {
    static POOL: OnceLock<BufferPool> = OnceLock::new();
    POOL.get_or_init(BufferPool::new)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn checkout_recycles() {
        let pool = BufferPool::new();
        let a = pool.get(1024);
        assert_eq!(pool.stats().misses, 1);
        pool.put(a);
        let b = pool.get(512);
        assert_eq!(pool.stats().hits, 1);
        assert!(b.capacity() >= 512);
        assert_eq!(pool.pooled(), 0);
        pool.put(b);
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn steady_state_never_misses() {
        let pool = BufferPool::new();
        // Warm-up allocates once; afterwards the same buffer cycles.
        for _ in 0..100 {
            let mut buf = pool.get(4096);
            buf.extend_from_slice(&[0u8; 4096]);
            pool.put(buf);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert_eq!(s.returns, 100);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_POOLED + 10).map(|_| pool.get(16)).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }
}
