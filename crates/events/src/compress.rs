//! Dependency-free LZ4-class block compression.
//!
//! The stream layer optionally compresses whole blocks before framing.
//! The format is the classic byte-oriented LZ77 token scheme (greedy
//! hash-chain matcher, 64 KiB window), prefixed with the raw length:
//!
//! ```text
//! [raw_len: uvarint] [sequence]*
//! sequence: [token: u8] [lit_ext: u8*] [literals] [offset: u16 LE] [match_ext: u8*]
//! ```
//!
//! The token's high nibble is the literal run length, the low nibble the
//! match length minus [`MIN_MATCH`]; a nibble of 15 is extended by
//! 255-valued continuation bytes. The final sequence carries literals only
//! (the input simply ends after them — no offset follows). Matches copy
//! `offset` bytes back inside the *decompressed* output, so `offset == 1`
//! run-length-encodes a repeated byte.
//!
//! The decompressor trusts nothing: declared length is capped by the
//! caller, every read is bounds-checked, offsets must point inside the
//! bytes already produced, and the output must land exactly on the
//! declared length — each failure is a distinct typed [`CompressError`].

use crate::vint;
use bytes::{BufMut, BytesMut};

/// Shortest encodable match; shorter repeats are cheaper as literals.
pub const MIN_MATCH: usize = 4;
/// Match window: offsets are 16-bit, so 64 KiB back at most.
pub const MAX_OFFSET: usize = u16::MAX as usize;

const HASH_BITS: u32 = 13;
const NIL: u32 = u32::MAX;

/// Per-block compression codec, negotiated at stream/session open.
///
/// Identifiers are wire-stable: `0` = none (the legacy uncompressed
/// layout), `1` = the LZ4-class codec in this module. Negotiation takes
/// the [`Compression::weakest`] of the two peers' advertised codecs, so a
/// compressed endpoint talking to a legacy peer degrades to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// No compression: blocks travel verbatim.
    #[default]
    None,
    /// LZ4-class per-block compression.
    Lz4,
}

impl Compression {
    /// Wire identifier advertised during stream/session negotiation.
    pub const fn id(self) -> u8 {
        match self {
            Compression::None => 0,
            Compression::Lz4 => 1,
        }
    }

    /// Parses a wire identifier; unknown ids are a typed rejection at the
    /// negotiation layer, never a fallback.
    pub const fn from_id(id: u8) -> Option<Compression> {
        match id {
            0 => Some(Compression::None),
            1 => Some(Compression::Lz4),
            _ => None,
        }
    }

    /// The codec a pair of peers settles on: the weaker of the two, so a
    /// legacy (`None`) peer always negotiates the session down.
    pub const fn weakest(self, other: Compression) -> Compression {
        if self.id() <= other.id() {
            self
        } else {
            other
        }
    }
}

impl std::fmt::Display for Compression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compression::None => write!(f, "none"),
            Compression::Lz4 => write!(f, "lz4"),
        }
    }
}

/// Decompression failures: every hostile or corrupt input maps to one of
/// these — the decompressor never panics and never over-allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended inside a token, literal run, offset or extension.
    Truncated,
    /// The declared raw length exceeds the caller's cap.
    DeclaredTooLarge { declared: u64, max: usize },
    /// A match reaches behind the start of the decompressed output.
    BadOffset { offset: usize, produced: usize },
    /// Output did not land exactly on the declared raw length.
    SizeMismatch { declared: usize, actual: usize },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed block truncated"),
            CompressError::DeclaredTooLarge { declared, max } => {
                write!(f, "declared raw length {declared} exceeds cap {max}")
            }
            CompressError::BadOffset { offset, produced } => {
                write!(
                    f,
                    "match offset {offset} with only {produced} bytes produced"
                )
            }
            CompressError::SizeMismatch { declared, actual } => {
                write!(f, "declared raw length {declared} but decoded {actual}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32_at(data: &[u8], i: usize) -> u32 {
    // Callers guarantee i + 4 <= data.len(); the checked constructor keeps
    // the hot path branch-free for the optimizer while staying safe.
    match data.get(i..i + 4) {
        Some(w) => u32::from_le_bytes([w[0], w[1], w[2], w[3]]),
        None => 0,
    }
}

fn put_nibble_ext(out: &mut impl BufMut, mut v: usize) {
    // The nibble held min(v, 15); emit the remainder in 255-chunks.
    if v < 15 {
        return;
    }
    v -= 15;
    while v >= 255 {
        out.put_u8(255);
        v -= 255;
    }
    out.put_u8(v as u8);
}

fn emit_sequence(out: &mut impl BufMut, literals: &[u8], m: Option<(u16, usize)>) {
    let lit = literals.len();
    let ml = m.map(|(_, len)| len - MIN_MATCH).unwrap_or(0);
    let token = ((lit.min(15) as u8) << 4) | (ml.min(15) as u8);
    out.put_u8(token);
    put_nibble_ext(out, lit);
    out.put_slice(literals);
    if let Some((offset, _)) = m {
        out.put_u16_le(offset);
        put_nibble_ext(out, ml);
    }
}

/// Reusable compressor: the 32 KiB hash table is allocated once and kept
/// across blocks, so steady-state compression allocates nothing.
pub struct Lz4Encoder {
    table: Vec<u32>,
}

impl Default for Lz4Encoder {
    fn default() -> Self {
        Lz4Encoder::new()
    }
}

impl Lz4Encoder {
    /// Allocates the (reused) match table.
    pub fn new() -> Lz4Encoder {
        Lz4Encoder {
            table: vec![NIL; 1 << HASH_BITS],
        }
    }

    /// Appends the compressed form of `input` to `out`.
    ///
    /// Worst case (incompressible input) the output is the raw length
    /// prefix plus `input.len()` literal bytes plus one token byte per 270
    /// literals — bounded by [`max_compressed_len`].
    pub fn compress(&mut self, input: &[u8], out: &mut impl BufMut) {
        vint::put_uvarint(out, input.len() as u64);
        let n = input.len();
        // Too short to ever contain a match worth encoding.
        if n < MIN_MATCH + 4 {
            if n > 0 {
                emit_sequence(out, input, None);
            }
            return;
        }
        self.table.fill(NIL);
        let mut anchor = 0usize;
        let mut ip = 0usize;
        // Stop matching 4 bytes early so every u32 probe is in bounds.
        let limit = n - 4;
        while ip < limit {
            let v = read_u32_at(input, ip);
            let h = hash4(v);
            let cand = self.table[h];
            self.table[h] = ip as u32;
            let cand = cand as usize;
            if cand != NIL as usize && ip - cand <= MAX_OFFSET && read_u32_at(input, cand) == v {
                let mut mlen = MIN_MATCH;
                while ip + mlen < n && input[cand + mlen] == input[ip + mlen] {
                    mlen += 1;
                }
                emit_sequence(out, &input[anchor..ip], Some(((ip - cand) as u16, mlen)));
                ip += mlen;
                anchor = ip;
            } else {
                ip += 1;
            }
        }
        if anchor < n {
            emit_sequence(out, &input[anchor..], None);
        }
    }
}

/// Upper bound on [`Lz4Encoder::compress`] output for `raw_len` input
/// bytes: length prefix + literals + one token per ≤270-literal run.
pub const fn max_compressed_len(raw_len: usize) -> usize {
    vint::MAX_UVARINT_LEN + raw_len + raw_len / 255 + 2
}

fn get_ext(input: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let mut v = 0usize;
    loop {
        let &b = input.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        v = v.saturating_add(b as usize);
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Decompresses `input` (as produced by [`Lz4Encoder::compress`]) onto the
/// end of `out`, returning the number of raw bytes appended. `max_raw`
/// caps the declared length before any allocation happens.
pub fn decompress_into(
    input: &[u8],
    max_raw: usize,
    out: &mut BytesMut,
) -> Result<usize, CompressError> {
    let mut p: &[u8] = input;
    let declared = vint::get_uvarint(&mut p).map_err(|_| CompressError::Truncated)?;
    if declared > max_raw as u64 {
        return Err(CompressError::DeclaredTooLarge {
            declared,
            max: max_raw,
        });
    }
    let declared = declared as usize;
    let base = out.len();
    out.reserve(declared);
    let mut pos = 0usize;
    while pos < p.len() {
        let token = p[pos];
        pos += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit = lit.saturating_add(get_ext(p, &mut pos)?);
        }
        let lit_end = pos.saturating_add(lit);
        if lit_end > p.len() {
            return Err(CompressError::Truncated);
        }
        if out.len() - base + lit > declared {
            return Err(CompressError::SizeMismatch {
                declared,
                actual: out.len() - base + lit,
            });
        }
        out.put_slice(&p[pos..lit_end]);
        pos = lit_end;
        if pos == p.len() {
            break; // final, literals-only sequence
        }
        let off_bytes = p.get(pos..pos + 2).ok_or(CompressError::Truncated)?;
        let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
        pos += 2;
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            mlen = mlen.saturating_add(get_ext(p, &mut pos)?);
        }
        mlen += MIN_MATCH;
        let produced = out.len() - base;
        if offset == 0 || offset > produced {
            return Err(CompressError::BadOffset { offset, produced });
        }
        if produced + mlen > declared {
            return Err(CompressError::SizeMismatch {
                declared,
                actual: produced + mlen,
            });
        }
        // Chunked back-copy: chunks never exceed the offset, so a chunk
        // never reads bytes it is itself writing (overlapping matches —
        // offset < length — replicate the pattern chunk by chunk).
        let mut remaining = mlen;
        let mut tmp = [0u8; 128];
        while remaining > 0 {
            let chunk = remaining.min(offset).min(tmp.len());
            let start = out.len() - offset;
            let src = out
                .get(start..start + chunk)
                .ok_or(CompressError::BadOffset {
                    offset,
                    produced: out.len() - base,
                })?;
            tmp[..chunk].copy_from_slice(src);
            out.put_slice(&tmp[..chunk]);
            remaining -= chunk;
        }
    }
    let actual = out.len() - base;
    if actual != declared {
        return Err(CompressError::SizeMismatch { declared, actual });
    }
    Ok(actual)
}

/// Convenience one-shot decompression into a fresh buffer.
pub fn decompress(input: &[u8], max_raw: usize) -> Result<BytesMut, CompressError> {
    let mut out = BytesMut::new();
    decompress_into(input, max_raw, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let mut enc = Lz4Encoder::new();
        let mut packed = BytesMut::new();
        enc.compress(data, &mut packed);
        assert!(packed.len() <= max_compressed_len(data.len()));
        let back = decompress(&packed, data.len()).unwrap();
        assert_eq!(&back[..], data);
        packed.len()
    }

    #[test]
    fn roundtrip_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 100_000]);
        roundtrip(b"abcdabcdabcdabcdabcdabcd");
        let mixed: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data = vec![7u8; 1 << 16];
        let packed = roundtrip(&data);
        assert!(packed * 100 < data.len(), "{packed} vs {}", data.len());
    }

    #[test]
    fn incompressible_input_bounded() {
        // A seeded xorshift stream: no 4-byte repeats within the window to
        // speak of, so output stays within the documented bound.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let mut enc = Lz4Encoder::new();
        let mut packed = BytesMut::new();
        enc.compress(&data, &mut packed);
        assert!(packed.len() <= max_compressed_len(data.len()));
        let back = decompress(&packed, data.len()).unwrap();
        assert_eq!(&back[..], &data[..]);
    }

    #[test]
    fn declared_too_large_rejected() {
        let mut enc = Lz4Encoder::new();
        let mut packed = BytesMut::new();
        enc.compress(&[1u8; 1000], &mut packed);
        assert!(matches!(
            decompress(&packed, 999),
            Err(CompressError::DeclaredTooLarge { .. })
        ));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let data: Vec<u8> = (0..2000u32).flat_map(|i| (i / 7).to_le_bytes()).collect();
        let mut enc = Lz4Encoder::new();
        let mut packed = BytesMut::new();
        enc.compress(&data, &mut packed);
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut], data.len()).is_err(),
                "cut at {cut} silently succeeded"
            );
        }
    }

    #[test]
    fn bad_offset_rejected() {
        // raw_len 8, then a token demanding a match before any output.
        let hostile = [8u8, 0x04, 1, 0, 0];
        assert!(matches!(
            decompress(&hostile, 64),
            Err(CompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn size_mismatch_rejected() {
        // Declares 3 raw bytes but carries 4 literals.
        let hostile = [3u8, 0x40, b'a', b'b', b'c', b'd'];
        assert!(matches!(
            decompress(&hostile, 64),
            Err(CompressError::SizeMismatch { .. })
        ));
        // Declares 10 but the stream ends after 2.
        let hostile = [10u8, 0x20, b'a', b'b'];
        assert!(matches!(
            decompress(&hostile, 64),
            Err(CompressError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn mutated_blocks_never_panic() {
        let data: Vec<u8> = (0..512u32).flat_map(|i| (i % 11).to_le_bytes()).collect();
        let mut enc = Lz4Encoder::new();
        let mut packed = BytesMut::new();
        enc.compress(&data, &mut packed);
        for i in 0..packed.len() {
            for bit in 0..8 {
                let mut bad = packed.to_vec();
                bad[i] ^= 1 << bit;
                // Either decodes to *something* length-checked or errors;
                // must never panic or exceed the cap.
                if let Ok(out) = decompress(&bad, data.len()) {
                    assert!(out.len() <= data.len());
                }
            }
        }
    }

    #[test]
    fn negotiation_is_weakest_codec() {
        use Compression::*;
        assert_eq!(Lz4.weakest(Lz4), Lz4);
        assert_eq!(Lz4.weakest(None), None);
        assert_eq!(None.weakest(Lz4), None);
        assert_eq!(Compression::from_id(0), Some(None));
        assert_eq!(Compression::from_id(1), Some(Lz4));
        assert_eq!(Compression::from_id(9), Option::None);
    }
}
