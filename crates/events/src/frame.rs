//! Length-prefixed framing for records travelling over block streams.
//!
//! VMPI streams deliver *blocks* whose boundaries depend on the writer's
//! flush pattern, not on record boundaries. Any record-oriented protocol
//! layered on top (reduction partial sets going up the TBON, serve-plane
//! requests and responses) therefore length-prefixes each record with
//! [`frame`] and reassembles per source with [`FrameBuf`]. One framing
//! implementation, shared by every stream protocol in the workspace.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Length-prefixes a payload for transport over a byte stream whose block
/// boundaries the encoding cannot rely on.
pub fn frame(payload: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    out.freeze()
}

/// Per-source reassembly buffer for [`frame`]d records.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: BytesMut,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends one received stream block.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Pops the next complete frame payload, if one has fully arrived.
    pub fn next_frame(&mut self) -> Option<Bytes> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if self.buf.len() < 4 + len {
            return None;
        }
        let mut record = self.buf.split_to(4 + len).freeze();
        record.advance(4);
        Some(record)
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn residual(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_under_ragged_chunking() {
        let records: Vec<Vec<u8>> = (0..6usize)
            .map(|i| (0..i * 7 + 1).map(|b| (b * 31 + i) as u8).collect())
            .collect();
        let mut wire = BytesMut::new();
        for r in &records {
            wire.put_slice(&frame(r));
        }
        for chunk_len in [1, 3, 13, 64, wire.len()] {
            let mut fb = FrameBuf::new();
            let mut got: Vec<Bytes> = Vec::new();
            for chunk in wire.chunks(chunk_len) {
                fb.push(chunk);
                while let Some(payload) = fb.next_frame() {
                    got.push(payload);
                }
            }
            assert_eq!(got.len(), records.len(), "chunk_len={chunk_len}");
            for (g, r) in got.iter().zip(&records) {
                assert_eq!(&g[..], &r[..]);
            }
            assert_eq!(fb.residual(), 0);
        }
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let f = frame(&[]);
        assert_eq!(f.len(), 4);
        let mut fb = FrameBuf::new();
        fb.push(&f);
        assert_eq!(fb.next_frame().unwrap().len(), 0);
        assert!(fb.next_frame().is_none());
    }
}
