//! Length-prefixed, checksummed framing for records travelling over
//! block streams.
//!
//! VMPI streams deliver *blocks* whose boundaries depend on the writer's
//! flush pattern, not on record boundaries. Any record-oriented protocol
//! layered on top (reduction partial sets going up the TBON, serve-plane
//! requests and responses) therefore length-prefixes each record with
//! [`frame`] and reassembles per source with [`FrameBuf`]. One framing
//! implementation, shared by every stream protocol in the workspace.
//!
//! # Wire format
//!
//! `[len: u32 LE][fnv1a32(payload): u32 LE][payload]`
//!
//! The checksum turns byte corruption into a typed
//! [`FrameError::Corrupt`] instead of a downstream decode failure (or,
//! worse, a silently wrong record). A length field above
//! [`MAX_FRAME_LEN`] is rejected as [`FrameError::Oversize`] *before* the
//! reassembly buffer would try to accumulate it, so a corrupted length
//! cannot make the reader buffer gigabytes waiting for a frame that will
//! never complete. Both errors poison the [`FrameBuf`]: framing has no
//! resynchronization marker, so after a corrupt header every later byte
//! offset is suspect and the stream must be torn down (the transport
//! layer underneath already retries/reorders, so a poisoned buffer means
//! real corruption, not loss).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Hard upper bound on a single frame payload. Big enough for any merged
/// partial set or snapshot response this workspace produces (full blocks
/// are ~1 MiB; snapshots of paper-scale runs are far smaller), small
/// enough to reject corrupt lengths immediately.
pub const MAX_FRAME_LEN: usize = 1 << 28;

const HDR: usize = 8;

/// Typed framing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length field exceeds [`MAX_FRAME_LEN`] — a corrupt or hostile
    /// header.
    Oversize { len: u64, max: usize },
    /// The payload failed its checksum.
    Corrupt { expected: u32, found: u32 },
    /// A payload handed to [`try_frame`] is too large to ever be read
    /// back (it would exceed [`MAX_FRAME_LEN`] on the wire).
    TooLarge { len: usize, max: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::Corrupt { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a, 32-bit: tiny, dependency-free, adequate for detecting the
/// random corruption the chaos harness injects (this is an integrity
/// check, not an authenticity one).
pub fn fnv1a32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Length-prefixes and checksums a payload for transport over a byte
/// stream whose block boundaries the encoding cannot rely on.
///
/// Returns [`FrameError::TooLarge`] when the payload exceeds
/// [`MAX_FRAME_LEN`] — a frame that big could never be read back. Use
/// this variant whenever the payload size is data-driven (merged partial
/// sets, snapshot responses).
pub fn try_frame(payload: &[u8]) -> Result<Bytes, FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: MAX_FRAME_LEN,
        });
    }
    let mut out = BytesMut::with_capacity(HDR + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(fnv1a32(payload));
    out.put_slice(payload);
    Ok(out.freeze())
}

/// Infallible framing for payloads whose size the caller bounds itself.
///
/// Panics if the payload exceeds [`MAX_FRAME_LEN`] — producing an
/// unreadable frame is a programming error, not a runtime condition.
/// Prefer [`try_frame`] wherever the payload size is data-driven.
pub fn frame(payload: &[u8]) -> Bytes {
    match try_frame(payload) {
        Ok(b) => b,
        Err(e) => panic!("{e}"), // PANIC-OK: documented contract — caller bounds the size
    }
}

/// Per-source reassembly buffer for [`frame`]d records.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: BytesMut,
    poisoned: Option<FrameError>,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends one received stream block.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Pops the next complete frame payload.
    ///
    /// * `Ok(Some(payload))` — a complete, checksum-verified frame;
    /// * `Ok(None)` — no complete frame buffered yet;
    /// * `Err(_)` — corrupt header or payload. The error is sticky:
    ///   every later call returns it again, because a framing stream has
    ///   no resync point after a bad header.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        let Some((len_bytes, rest)) = self.buf.split_first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(self.poison(FrameError::Oversize {
                len: len as u64,
                max: MAX_FRAME_LEN,
            }));
        }
        let Some((ck_bytes, body)) = rest.split_first_chunk::<4>() else {
            return Ok(None);
        };
        let expected = u32::from_le_bytes(*ck_bytes);
        let Some(payload) = body.get(..len) else {
            return Ok(None);
        };
        let found = fnv1a32(payload);
        if found != expected {
            return Err(self.poison(FrameError::Corrupt { expected, found }));
        }
        let mut record = self.buf.split_to(HDR + len).freeze();
        record.advance(HDR);
        Ok(Some(record))
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e);
        e
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn residual(&self) -> usize {
        self.buf.len()
    }

    /// The sticky error, if the buffer has seen one.
    pub fn poisoned(&self) -> Option<FrameError> {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_under_ragged_chunking() {
        let records: Vec<Vec<u8>> = (0..6usize)
            .map(|i| (0..i * 7 + 1).map(|b| (b * 31 + i) as u8).collect())
            .collect();
        let mut wire = BytesMut::new();
        for r in &records {
            wire.put_slice(&frame(r));
        }
        for chunk_len in [1, 3, 13, 64, wire.len()] {
            let mut fb = FrameBuf::new();
            let mut got: Vec<Bytes> = Vec::new();
            for chunk in wire.chunks(chunk_len) {
                fb.push(chunk);
                while let Some(payload) = fb.next_frame().unwrap() {
                    got.push(payload);
                }
            }
            assert_eq!(got.len(), records.len(), "chunk_len={chunk_len}");
            for (g, r) in got.iter().zip(&records) {
                assert_eq!(&g[..], &r[..]);
            }
            assert_eq!(fb.residual(), 0);
        }
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let f = frame(&[]);
        assert_eq!(f.len(), 8);
        let mut fb = FrameBuf::new();
        fb.push(&f);
        assert_eq!(fb.next_frame().unwrap().unwrap().len(), 0);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn payload_corruption_is_typed_and_sticky() {
        let mut wire = BytesMut::new();
        wire.put_slice(&frame(b"hello frame"));
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut fb = FrameBuf::new();
        fb.push(&wire);
        let err = fb.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::Corrupt { .. }));
        // Sticky: pushing a good frame afterwards cannot resurrect it.
        fb.push(&frame(b"good"));
        assert_eq!(fb.next_frame().unwrap_err(), err);
        assert_eq!(fb.poisoned(), Some(err));
    }

    #[test]
    fn oversize_length_is_rejected_before_buffering() {
        let mut wire = BytesMut::new();
        wire.put_u32_le(u32::MAX);
        wire.put_u32_le(0);
        let mut fb = FrameBuf::new();
        fb.push(&wire);
        assert!(matches!(
            fb.next_frame(),
            Err(FrameError::Oversize { len, .. }) if len == u32::MAX as u64
        ));
    }
}
