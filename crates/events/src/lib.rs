//! # opmr-events — performance event model and wire codec
//!
//! The paper streams *fine-grained events* — one record per intercepted MPI
//! or POSIX call — from instrumented programs to the analyzer, noting that
//! "our event representation structure is very simple as the C structure is
//! directly sent". This crate is that structure, made explicit:
//!
//! * [`Event`] — one fixed-size (48-byte) record describing a single call:
//!   start time, duration, kind, issuing rank, peer, tag, communicator and
//!   byte volume.
//! * [`EventKind`] — the intercepted call set (MPI point-to-point,
//!   collectives, request completion, POSIX I/O, plus markers).
//! * [`EventPack`] — the unit that travels through a VMPI stream: a small
//!   header (application id, rank, sequence number) followed by a batch of
//!   events, encoded with [`codec`].
//!
//! The codec is explicit little-endian rather than a struct memcpy so packs
//! are valid across any producer/consumer pair and truncation is detected.

pub mod codec;
pub mod compress;
pub mod event;
pub mod frame;
pub mod pack;
pub mod pool;
pub mod vint;

pub use compress::{
    decompress, decompress_into, max_compressed_len, CompressError, Compression, Lz4Encoder,
};
pub use event::{Event, EventKind};
pub use frame::{frame, try_frame, FrameBuf, FrameError, MAX_FRAME_LEN};
pub use pack::{
    EventPack, PackEncoding, PackHeader, DELTA_EVENT_MAX_WIRE_SIZE, EVENT_WIRE_SIZE,
    PACK_HEADER_SIZE,
};
pub use pool::{global_pool, BufferPool, PoolStats};
