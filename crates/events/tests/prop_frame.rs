//! Fuzz-style property tests for the checksummed framing layer: byte
//! mutations surface as typed [`FrameError`]s, truncation is never
//! silent, and arbitrary garbage never panics the reassembly buffer.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_events::{frame, FrameBuf, FrameError, MAX_FRAME_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_identity_under_ragged_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..2048), 1..8),
        chunk in 1usize..512,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for c in wire.chunks(chunk) {
            fb.push(c);
            while let Some(p) = fb.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(fb.residual(), 0);
    }

    #[test]
    fn single_byte_mutation_never_yields_a_wrong_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        idx in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut wire = frame(&payload).to_vec();
        let i = idx.index(wire.len());
        wire[i] ^= xor;
        let mut fb = FrameBuf::new();
        fb.push(&wire);
        match fb.next_frame() {
            // Typed detection: the buffer is poisoned and stays poisoned.
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    FrameError::Corrupt { .. } | FrameError::Oversize { .. }
                ));
                prop_assert_eq!(fb.poisoned(), Some(e));
                fb.push(&frame(b"later"));
                prop_assert_eq!(fb.next_frame().unwrap_err(), e);
            }
            // A mutated length can claim more bytes than arrived: the
            // buffer waits rather than inventing a short record.
            Ok(None) => prop_assert!(fb.residual() > 0),
            // The only acceptable success is the exact original payload
            // (never observed for a real mutation; asserting it makes any
            // silent corruption a test failure, not a silent pass).
            Ok(Some(p)) => prop_assert_eq!(p.to_vec(), payload),
        }
    }

    #[test]
    fn truncated_wire_is_never_a_silent_short_record(
        payload in proptest::collection::vec(any::<u8>(), 1..1024),
        cut in any::<proptest::sample::Index>(),
    ) {
        let wire = frame(&payload);
        // Every strict prefix must come back as "incomplete", never as a
        // shorter record.
        let cut = cut.index(wire.len() - 1) + 1;
        let mut fb = FrameBuf::new();
        fb.push(&wire[..cut]);
        prop_assert!(fb.next_frame().unwrap().is_none());
        prop_assert_eq!(fb.residual(), cut);
        // Delivering the rest completes the original record intact.
        fb.push(&wire[cut..]);
        prop_assert_eq!(fb.next_frame().unwrap().unwrap().to_vec(), payload);
    }

    #[test]
    fn garbage_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..257,
    ) {
        let mut fb = FrameBuf::new();
        let mut frames = 0usize;
        for c in junk.chunks(chunk) {
            fb.push(c);
            loop {
                match fb.next_frame() {
                    Ok(Some(_)) => frames += 1,
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
            if fb.poisoned().is_some() {
                break;
            }
        }
        // Bounded: garbage can decode at most its own length in frames.
        prop_assert!(frames <= junk.len() / 8 + 1);
    }
}

#[test]
fn large_payloads_roundtrip() {
    // > 1 MiB exercises the multi-block path the reduction overlay uses
    // for merged partial sets; 0 is the degenerate edge.
    for size in [0usize, 1, 1 << 20, (1 << 20) + (1 << 19) + 13] {
        let payload: Vec<u8> = (0..size).map(|i| (i * 131 + 7) as u8).collect();
        let wire = frame(&payload);
        assert_eq!(wire.len(), payload.len() + 8);
        let mut fb = FrameBuf::new();
        // Feed in 64 KiB chunks, as a stream reader would.
        for c in wire.chunks(64 * 1024) {
            fb.push(c);
        }
        let got = fb.next_frame().unwrap().unwrap();
        assert_eq!(got.len(), size);
        assert_eq!(&got[..], &payload[..]);
        assert_eq!(fb.residual(), 0);
    }
}

#[test]
fn corruption_mid_stream_preserves_earlier_frames() {
    // Frames decoded before the corruption point are delivered; the
    // corrupt one and everything after it are refused — truncation is
    // loud, not silent.
    let mut wire = Vec::new();
    for i in 0..5u8 {
        wire.extend_from_slice(&frame(&[i; 100]));
    }
    // Flip one payload byte inside the fourth frame.
    let off = 3 * 108 + 8 + 50;
    wire[off] ^= 0x01;
    let mut fb = FrameBuf::new();
    fb.push(&wire);
    let mut got = 0;
    let err = loop {
        match fb.next_frame() {
            Ok(Some(p)) => {
                assert_eq!(&p[..], &vec![got as u8; 100][..]);
                got += 1;
            }
            Ok(None) => panic!("should end in an error"),
            Err(e) => break e,
        }
    };
    assert_eq!(got, 3, "frames before the corruption must survive");
    assert!(matches!(err, FrameError::Corrupt { .. }));
    let _ = MAX_FRAME_LEN;
}
