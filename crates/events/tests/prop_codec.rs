//! Property tests: the wire codec is a lossless bijection on valid packs,
//! and every hostile derivative of a valid encoding — truncated, mutated,
//! mis-flagged, mis-sized — decodes to a *typed* error, never a panic.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_events::vint::put_uvarint;
use opmr_events::{decompress, Event, EventKind, EventPack, Lz4Encoder, PackEncoding};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0..EventKind::ALL.len()).prop_map(|i| EventKind::ALL[i])
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_kind(),
        any::<u32>(),
        any::<i32>(),
        any::<i32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |(time_ns, duration_ns, kind, rank, peer, tag, comm, bytes)| Event {
                time_ns,
                duration_ns,
                kind,
                rank,
                peer,
                tag,
                comm,
                bytes,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pack_roundtrip(
        app_id in any::<u16>(),
        rank in any::<u32>(),
        seq in any::<u32>(),
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        let pack = EventPack::new(app_id, rank, seq, events);
        let decoded = EventPack::decode(&pack.encode()).unwrap();
        prop_assert_eq!(decoded, pack);
    }

    #[test]
    fn every_truncation_is_detected(
        events in proptest::collection::vec(arb_event(), 1..20),
        cut in any::<proptest::sample::Index>(),
    ) {
        let pack = EventPack::new(1, 2, 3, events);
        let enc = pack.encode();
        let cut_at = cut.index(enc.len().max(2) - 1); // strictly shorter
        prop_assert!(EventPack::decode(&enc[..cut_at]).is_err());
    }

    #[test]
    fn wire_size_is_linear(n in 0usize..500) {
        let pack = EventPack::new(0, 0, 0,
            (0..n).map(|i| Event::basic(EventKind::Send, 0, i as u64, 1)).collect());
        prop_assert_eq!(pack.encode().len(),
            opmr_events::PACK_HEADER_SIZE + n * opmr_events::EVENT_WIRE_SIZE);
    }

    // -- delta/varint path ---------------------------------------------

    #[test]
    fn delta_pack_roundtrip(
        app_id in any::<u16>(),
        rank in any::<u32>(),
        seq in any::<u32>(),
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        let pack = EventPack::new(app_id, rank, seq, events);
        let decoded = EventPack::decode(&pack.encode_with(PackEncoding::Delta)).unwrap();
        prop_assert_eq!(decoded, pack);
    }

    #[test]
    fn every_delta_truncation_is_detected(
        events in proptest::collection::vec(arb_event(), 1..20),
        cut in any::<proptest::sample::Index>(),
    ) {
        let pack = EventPack::new(1, 2, 3, events);
        let enc = pack.encode_with(PackEncoding::Delta);
        let cut_at = cut.index(enc.len().max(2) - 1); // strictly shorter
        prop_assert!(EventPack::decode(&enc[..cut_at]).is_err());
    }

    /// Any single byte mutation of a delta pack either still decodes (to
    /// *some* pack — the mutation hit payload bits) or fails typed.
    /// Either way: no panic, no unbounded allocation.
    #[test]
    fn delta_mutation_never_panics(
        events in proptest::collection::vec(arb_event(), 1..20),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let pack = EventPack::new(1, 2, 3, events);
        let mut enc = pack.encode_with(PackEncoding::Delta).to_vec();
        let at = pos.index(enc.len());
        enc[at] ^= 1 << bit;
        if let Ok(p) = EventPack::decode(&enc) {
            prop_assert!(p.events.len() <= enc.len(), "decoded more events than bytes");
        }
    }

    // -- compressed path -----------------------------------------------

    #[test]
    fn compress_roundtrip_is_identity(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut enc = Lz4Encoder::new();
        let mut z = Vec::new();
        enc.compress(&data, &mut z);
        let back = decompress(&z, data.len().max(1)).unwrap();
        prop_assert_eq!(&back[..], &data[..]);
    }

    /// `decode(decompress(compress(enc))) == decode(enc)`: the compressed
    /// and uncompressed representations of one pack agree byte-for-byte
    /// after inflate, so the two wire paths cannot diverge.
    #[test]
    fn compressed_and_plain_decodes_agree(
        events in proptest::collection::vec(arb_event(), 0..50),
        delta in any::<bool>(),
    ) {
        let encoding = if delta { PackEncoding::Delta } else { PackEncoding::Fixed };
        let pack = EventPack::new(7, 1, 0, events);
        let plain = pack.encode_with(encoding);
        let mut z = Vec::new();
        Lz4Encoder::new().compress(&plain, &mut z);
        let inflated = decompress(&z, plain.len()).unwrap();
        prop_assert_eq!(&inflated[..], &plain[..], "inflate must be bit-exact");
        prop_assert_eq!(
            EventPack::decode(&inflated).unwrap(),
            EventPack::decode(&plain).unwrap()
        );
    }

    /// Any single byte mutation of a compressed block decompresses to a
    /// typed `CompressError` or to bounded output — never a panic, never
    /// more bytes than the block declared.
    #[test]
    fn compressed_mutation_never_panics(
        events in proptest::collection::vec(arb_event(), 1..30),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let plain = EventPack::new(7, 1, 0, events).encode_with(PackEncoding::Delta);
        let mut z = Vec::new();
        Lz4Encoder::new().compress(&plain, &mut z);
        let at = pos.index(z.len());
        z[at] ^= 1 << bit;
        if let Ok(out) = decompress(&z, plain.len()) {
            prop_assert!(out.len() <= plain.len(), "inflate exceeded the declared cap");
        }
    }

    /// Tampering with the declared raw length (keeping the sequence bytes
    /// intact) is always a typed error: `SizeMismatch` when the declared
    /// and produced lengths diverge, `DeclaredTooLarge` when it blows the
    /// cap, `Truncated`/`BadOffset` when the shifted declared length makes
    /// the stream inconsistent.
    #[test]
    fn declared_size_mismatch_is_typed(
        events in proptest::collection::vec(arb_event(), 1..30),
        skew in prop_oneof![1u64..1000, 1_000_000u64..u64::MAX / 2],
        grow in any::<bool>(),
    ) {
        let plain = EventPack::new(7, 1, 0, events).encode_with(PackEncoding::Delta);
        let mut z = Vec::new();
        Lz4Encoder::new().compress(&plain, &mut z);
        // Split the block into [raw_len uvarint][sequences] and re-head
        // it with a lying declared length.
        let mut tail: &[u8] = &z;
        let declared = opmr_events::vint::get_uvarint(&mut tail).unwrap();
        let lied = if grow { declared.saturating_add(skew) } else { declared.saturating_sub(skew.min(declared)) };
        // skew >= 1 and declared >= PACK_HEADER_SIZE, so the lie is real.
        prop_assert!(lied != declared);
        let mut forged = Vec::with_capacity(z.len());
        put_uvarint(&mut forged, lied);
        forged.extend_from_slice(tail);
        prop_assert!(decompress(&forged, plain.len()).is_err(),
            "a lying declared size must never decode cleanly");
    }

    /// "Flag flipped off": compressed bytes handed to the plain pack
    /// decoder. The pack magic makes this a typed error (or, in the
    /// astronomically unlikely case the compressed stream forms a valid
    /// pack, a bounded decode) — never a panic.
    #[test]
    fn compressed_bytes_as_plain_pack_never_panic(
        events in proptest::collection::vec(arb_event(), 1..30),
    ) {
        let plain = EventPack::new(7, 1, 0, events).encode_with(PackEncoding::Delta);
        let mut z = Vec::new();
        Lz4Encoder::new().compress(&plain, &mut z);
        let _ = EventPack::decode(&z); // typed result either way
    }

    /// "Flag flipped on": plain bytes handed to the decompressor must be
    /// a typed error or bounded output, never a panic. (The stream layer
    /// counts this as a protocol violation; this pins the codec's own
    /// safety.)
    #[test]
    fn plain_bytes_as_compressed_never_panic(
        events in proptest::collection::vec(arb_event(), 1..30),
        delta in any::<bool>(),
    ) {
        let encoding = if delta { PackEncoding::Delta } else { PackEncoding::Fixed };
        let plain = EventPack::new(7, 1, 0, events).encode_with(encoding);
        if let Ok(out) = decompress(&plain, 1 << 20) {
            prop_assert!(out.len() <= 1 << 20);
        }
    }
}
