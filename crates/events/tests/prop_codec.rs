//! Property tests: the wire codec is a lossless bijection on valid packs.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_events::{Event, EventKind, EventPack};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0..EventKind::ALL.len()).prop_map(|i| EventKind::ALL[i])
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_kind(),
        any::<u32>(),
        any::<i32>(),
        any::<i32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |(time_ns, duration_ns, kind, rank, peer, tag, comm, bytes)| Event {
                time_ns,
                duration_ns,
                kind,
                rank,
                peer,
                tag,
                comm,
                bytes,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pack_roundtrip(
        app_id in any::<u16>(),
        rank in any::<u32>(),
        seq in any::<u32>(),
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        let pack = EventPack::new(app_id, rank, seq, events);
        let decoded = EventPack::decode(&pack.encode()).unwrap();
        prop_assert_eq!(decoded, pack);
    }

    #[test]
    fn every_truncation_is_detected(
        events in proptest::collection::vec(arb_event(), 1..20),
        cut in any::<proptest::sample::Index>(),
    ) {
        let pack = EventPack::new(1, 2, 3, events);
        let enc = pack.encode();
        let cut_at = cut.index(enc.len().max(2) - 1); // strictly shorter
        prop_assert!(EventPack::decode(&enc[..cut_at]).is_err());
    }

    #[test]
    fn wire_size_is_linear(n in 0usize..500) {
        let pack = EventPack::new(0, 0, 0,
            (0..n).map(|i| Event::basic(EventKind::Send, 0, i as u64, 1)).collect());
        prop_assert_eq!(pack.encode().len(),
            opmr_events::PACK_HEADER_SIZE + n * opmr_events::EVENT_WIRE_SIZE);
    }
}
